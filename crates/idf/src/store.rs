//! The persistent incremental verdict store (`--cache-dir`).
//!
//! One JSONL file (`verdicts.jsonl`) maps method names to the
//! [`Fingerprint`] they were last verified under and the resulting
//! [`Verdict`]. Only *definite* verdicts are persisted — `Verified`
//! (with [`VerifyStats::normalized`] statistics) and `Failed` — never
//! `Unknown` or `CrashedInternal`: an indefinite answer must be retried
//! on the next run, not replayed from disk.
//!
//! The format is zero-dependency (read back with
//! [`daenerys_obs::parse_json`]) and deliberately forgiving: corrupt or
//! unrecognized lines are skipped on load, later lines win over earlier
//! ones for the same method, and saving rewrites the file compacted
//! through a temp-file rename.

use crate::diag::FailureReport;
use crate::exec::{Obligation, Verdict, VerifyStats};
use crate::fingerprint::Fingerprint;
use crate::smt::Answer;
use daenerys_obs::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One stored method verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct StoredVerdict {
    /// The fingerprint the verdict was computed under.
    pub fingerprint: Fingerprint,
    /// The verdict (`Verified` with normalized stats, or `Failed`).
    pub verdict: Verdict,
}

/// The persistent verdict store backing `--cache-dir`.
#[derive(Clone, PartialEq, Debug)]
pub struct VerdictStore {
    path: PathBuf,
    entries: BTreeMap<String, StoredVerdict>,
    /// Undecodable lines skipped during the last [`VerdictStore::open`]
    /// (surfaced as the `store.corrupt_lines` obs counter and in the
    /// daemon's metrics snapshot). A truncated final line — the
    /// signature of a crash mid-append — counts here too, but is
    /// additionally flagged by `truncated_tail`.
    corrupt_lines: usize,
    /// True when the file's final line was cut off mid-write (no
    /// trailing newline and undecodable): the expected wreckage of a
    /// SIGKILL between `write` and completion, worth a warning but
    /// never grounds to poison the rest of the store.
    truncated_tail: bool,
}

impl VerdictStore {
    /// The store file name within the cache directory.
    pub const FILE_NAME: &'static str = "verdicts.jsonl";

    /// Opens (or initializes) the store under `dir`. Missing files and
    /// unreadable/corrupt lines load as absent entries — a damaged
    /// store costs re-verification, never a wrong verdict.
    pub fn open(dir: &Path) -> VerdictStore {
        let path = dir.join(Self::FILE_NAME);
        let mut entries = BTreeMap::new();
        let mut corrupt_lines = 0;
        let mut truncated_tail = false;
        if let Ok(text) = fs::read_to_string(&path) {
            let complete_tail = text.is_empty() || text.ends_with('\n');
            let last = text.lines().count().saturating_sub(1);
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_any_line(line) {
                    Some(Line::Put(name, stored)) => {
                        entries.insert(name, stored);
                    }
                    Some(Line::Evict(name)) => {
                        entries.remove(&name);
                    }
                    None => {
                        corrupt_lines += 1;
                        // A final line with no newline that fails to
                        // decode is a crash mid-append: skip it with a
                        // counted warning instead of treating the
                        // store as damaged.
                        if i == last && !complete_tail {
                            truncated_tail = true;
                        }
                    }
                }
            }
        }
        VerdictStore {
            path,
            entries,
            corrupt_lines,
            truncated_tail,
        }
    }

    /// Undecodable lines skipped by the last [`VerdictStore::open`].
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt_lines
    }

    /// True when the file ended in a line cut off mid-write (crash
    /// mid-append) that was skipped on load.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// The stored verdict for `method`, iff it was recorded under
    /// exactly this fingerprint.
    pub fn lookup(&self, method: &str, fingerprint: Fingerprint) -> Option<&Verdict> {
        let stored = self.entries.get(method)?;
        (stored.fingerprint == fingerprint).then_some(&stored.verdict)
    }

    /// Records a verdict. Definite verdicts (`Verified`/`Failed`)
    /// replace the method's entry and return `true`; `Unknown` and
    /// `CrashedInternal` *remove* any stale entry (its fingerprint can
    /// no longer be trusted to describe the outcome) and return
    /// `false`.
    pub fn record(&mut self, method: &str, fingerprint: Fingerprint, verdict: &Verdict) -> bool {
        match verdict {
            Verdict::Verified(stats) => {
                self.entries.insert(
                    method.to_string(),
                    StoredVerdict {
                        fingerprint,
                        verdict: Verdict::Verified(stats.normalized()),
                    },
                );
                true
            }
            Verdict::Failed { .. } => {
                self.entries.insert(
                    method.to_string(),
                    StoredVerdict {
                        fingerprint,
                        verdict: verdict.clone(),
                    },
                );
                true
            }
            Verdict::Unknown { .. } | Verdict::CrashedInternal { .. } => {
                self.entries.remove(method);
                false
            }
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a verdict (exactly as [`VerdictStore::record`]) *and*
    /// appends the change to the store file immediately, flushed, so a
    /// SIGKILL'd process loses at most the verdict currently being
    /// written. Definite verdicts append their entry line; indefinite
    /// verdicts append an evict tombstone (`"verdict":"evict"`) that
    /// [`VerdictStore::open`] replays last-wins. [`VerdictStore::save`]
    /// still compacts the file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or appending
    /// to the file; the in-memory entry is updated regardless.
    pub fn record_durable(
        &mut self,
        method: &str,
        fingerprint: Fingerprint,
        verdict: &Verdict,
    ) -> io::Result<bool> {
        let definite = self.record(method, fingerprint, verdict);
        let mut line = String::new();
        if definite {
            let stored = self
                .entries
                .get(method)
                .expect("record returned true, entry present");
            encode_line(&mut line, method, stored);
        } else {
            let _ = write!(
                line,
                "{{\"method\":\"{}\",\"verdict\":\"evict\"}}",
                esc(method)
            );
        }
        line.push('\n');
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        io::Write::write_all(&mut file, line.as_bytes())?;
        io::Write::flush(&mut file)?;
        Ok(definite)
    }

    /// Writes the store back to disk, compacted (one line per method),
    /// atomically via a temp-file rename.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or writing the
    /// file.
    pub fn save(&self) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        for (name, stored) in &self.entries {
            encode_line(&mut out, name, stored);
            out.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.path)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn answer_name(a: Answer) -> &'static str {
    match a {
        Answer::Valid => "valid",
        Answer::Invalid => "invalid",
        Answer::Unknown => "unknown",
    }
}

fn parse_answer(s: &str) -> Option<Answer> {
    match s {
        "valid" => Some(Answer::Valid),
        "invalid" => Some(Answer::Invalid),
        "unknown" => Some(Answer::Unknown),
        _ => None,
    }
}

/// The `(key, usize)` stat fields, in serialization order (wall time
/// and thread count are normalized away before persisting).
const STAT_KEYS: [&str; 17] = [
    "obligations",
    "solver_queries",
    "solver_branches",
    "solver_conflicts",
    "solver_restarts",
    "solver_propagations",
    "theory_props",
    "cache_hits",
    "cache_misses",
    "learned_clauses",
    "interned_terms",
    "symbols",
    "witnesses",
    "rebinds",
    "stability_skips",
    "states",
    "budget_exhausted",
];

fn stat_values(s: &VerifyStats) -> [usize; 17] {
    [
        s.obligations,
        s.solver_queries,
        s.solver_branches,
        s.solver_conflicts,
        s.solver_restarts,
        s.solver_propagations,
        s.theory_props,
        s.cache_hits,
        s.cache_misses,
        s.learned_clauses,
        s.interned_terms,
        s.symbols,
        s.witnesses,
        s.rebinds,
        s.stability_skips,
        s.states,
        s.budget_exhausted,
    ]
}

fn encode_stats(out: &mut String, s: &VerifyStats) {
    out.push('{');
    for (i, (key, v)) in STAT_KEYS.iter().zip(stat_values(s)).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", key, v);
    }
    out.push('}');
}

fn decode_stats(obj: &BTreeMap<String, Json>) -> Option<VerifyStats> {
    let get = |key: &str| -> Option<usize> {
        let n = obj.get(key)?.as_num()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as usize)
    };
    let mut s = VerifyStats {
        obligations: get("obligations")?,
        solver_queries: get("solver_queries")?,
        solver_branches: get("solver_branches")?,
        solver_conflicts: get("solver_conflicts")?,
        solver_restarts: get("solver_restarts")?,
        solver_propagations: get("solver_propagations")?,
        theory_props: get("theory_props")?,
        cache_hits: get("cache_hits")?,
        cache_misses: get("cache_misses")?,
        learned_clauses: get("learned_clauses")?,
        interned_terms: get("interned_terms")?,
        symbols: get("symbols")?,
        witnesses: get("witnesses")?,
        rebinds: get("rebinds")?,
        stability_skips: get("stability_skips")?,
        states: get("states")?,
        budget_exhausted: get("budget_exhausted")?,
        ..VerifyStats::default()
    };
    s.wall_nanos = 0;
    s.threads = 0;
    Some(s)
}

fn encode_strings(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", esc(s));
    }
    out.push(']');
}

fn decode_strings(json: &Json) -> Option<Vec<String>> {
    json.as_arr()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect()
}

fn encode_line(out: &mut String, name: &str, stored: &StoredVerdict) {
    let _ = write!(
        out,
        "{{\"method\":\"{}\",\"fp\":\"{}\",",
        esc(name),
        stored.fingerprint
    );
    match &stored.verdict {
        Verdict::Verified(stats) => {
            out.push_str("\"verdict\":\"verified\",\"stats\":");
            encode_stats(out, stats);
        }
        Verdict::Failed { failures, report } => {
            out.push_str("\"verdict\":\"failed\",\"failures\":[");
            for (i, o) in failures.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"description\":\"{}\",\"outcome\":\"{}\"}}",
                    esc(&o.description),
                    answer_name(o.outcome)
                );
            }
            let _ = write!(
                out,
                "],\"report\":{{\"first_failure\":\"{}\",\"chunks\":",
                esc(&report.first_failure)
            );
            encode_strings(out, &report.chunks);
            out.push_str(",\"path_condition\":");
            encode_strings(out, &report.path_condition);
            out.push_str(",\"hot_queries\":[");
            for (i, q) in report.hot_queries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"description\":\"{}\",\"fuel\":{},\"cache_hit\":{},\"learned\":{},\
                     \"pc_hash\":\"{:016x}\",\"answer\":\"{}\"}}",
                    esc(&q.description),
                    q.fuel,
                    q.cache_hit,
                    q.learned,
                    q.pc_hash,
                    answer_name(q.answer)
                );
            }
            out.push_str("]}");
        }
        // `record` never admits these; encode defensively as a line
        // `decode_line` will reject.
        Verdict::Unknown { .. } | Verdict::CrashedInternal { .. } => {
            out.push_str("\"verdict\":\"unpersistable\"");
        }
    }
    out.push('}');
}

/// One decoded store line: an entry upsert or an evict tombstone
/// (appended by [`VerdictStore::record_durable`] for indefinite
/// verdicts).
enum Line {
    Put(String, StoredVerdict),
    Evict(String),
}

fn decode_any_line(line: &str) -> Option<Line> {
    let json = parse_json(line).ok()?;
    let obj = json.as_obj()?;
    if obj.get("verdict")?.as_str()? == "evict" {
        return Some(Line::Evict(obj.get("method")?.as_str()?.to_string()));
    }
    let (name, stored) = decode_line(line)?;
    Some(Line::Put(name, stored))
}

fn decode_line(line: &str) -> Option<(String, StoredVerdict)> {
    let json = parse_json(line).ok()?;
    let obj = json.as_obj()?;
    let name = obj.get("method")?.as_str()?.to_string();
    let fingerprint = Fingerprint::parse(obj.get("fp")?.as_str()?)?;
    let verdict = match obj.get("verdict")?.as_str()? {
        "verified" => Verdict::Verified(decode_stats(obj.get("stats")?.as_obj()?)?),
        "failed" => {
            let failures = obj
                .get("failures")?
                .as_arr()?
                .iter()
                .map(|f| {
                    let f = f.as_obj()?;
                    Some(Obligation {
                        description: f.get("description")?.as_str()?.to_string(),
                        outcome: parse_answer(f.get("outcome")?.as_str()?)?,
                    })
                })
                .collect::<Option<Vec<Obligation>>>()?;
            let r = obj.get("report")?.as_obj()?;
            let hot_queries = r
                .get("hot_queries")?
                .as_arr()?
                .iter()
                .map(|q| {
                    let q = q.as_obj()?;
                    Some(crate::diag::QueryCost {
                        description: q.get("description")?.as_str()?.to_string(),
                        fuel: q.get("fuel")?.as_num()? as u64,
                        cache_hit: matches!(q.get("cache_hit")?, Json::Bool(true)),
                        learned: q.get("learned")?.as_num()? as u64,
                        pc_hash: u64::from_str_radix(q.get("pc_hash")?.as_str()?, 16).ok()?,
                        answer: parse_answer(q.get("answer")?.as_str()?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Verdict::Failed {
                failures,
                report: FailureReport {
                    method: name.clone(),
                    first_failure: r.get("first_failure")?.as_str()?.to_string(),
                    chunks: decode_strings(r.get("chunks")?)?,
                    path_condition: decode_strings(r.get("path_condition")?)?,
                    hot_queries,
                },
            }
        }
        _ => return None,
    };
    Some((
        name,
        StoredVerdict {
            fingerprint,
            verdict,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::QueryCost;
    use crate::exec::UnknownReason;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint { hi: n, lo: !n }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("daenerys-store-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_failed() -> Verdict {
        Verdict::Failed {
            failures: vec![Obligation {
                description: "postcondition: \"tricky\\path\"\n".to_string(),
                outcome: Answer::Invalid,
            }],
            report: FailureReport {
                // Matches the key the test stores the verdict under:
                // `decode_line` rebuilds `report.method` from the
                // entry's method name rather than persisting it twice.
                method: "bad".to_string(),
                first_failure: "[Invalid] postcondition".to_string(),
                chunks: vec!["acc(c.val, 1) ↦ $v0".to_string()],
                path_condition: vec!["0 < $n".to_string()],
                hot_queries: vec![QueryCost {
                    description: "postcondition".to_string(),
                    fuel: 3,
                    cache_hit: false,
                    learned: 1,
                    pc_hash: u64::MAX,
                    answer: Answer::Invalid,
                }],
            },
        }
    }

    #[test]
    fn roundtrips_verified_and_failed() {
        let dir = temp_dir("roundtrip");
        let mut store = VerdictStore::open(&dir);
        let stats = VerifyStats {
            obligations: 2,
            solver_queries: 5,
            learned_clauses: 1,
            wall_nanos: 999,
            threads: 4,
            ..VerifyStats::default()
        };
        assert!(store.record("ok", fp(1), &Verdict::Verified(stats.clone())));
        assert!(store.record("bad", fp(2), &sample_failed()));
        store.save().unwrap();

        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(
            reloaded.lookup("ok", fp(1)),
            Some(&Verdict::Verified(stats.normalized())),
            "stats are persisted normalized"
        );
        assert_eq!(reloaded.lookup("bad", fp(2)), Some(&sample_failed()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_misses() {
        let dir = temp_dir("mismatch");
        let mut store = VerdictStore::open(&dir);
        store.record("m", fp(1), &Verdict::Verified(VerifyStats::default()));
        assert!(store.lookup("m", fp(1)).is_some());
        assert!(store.lookup("m", fp(9)).is_none());
        assert!(store.lookup("other", fp(1)).is_none());
    }

    #[test]
    fn indefinite_verdicts_are_never_persisted_and_evict() {
        let dir = temp_dir("indefinite");
        let mut store = VerdictStore::open(&dir);
        store.record("m", fp(1), &Verdict::Verified(VerifyStats::default()));
        assert!(!store.record(
            "m",
            fp(1),
            &Verdict::Unknown {
                reason: UnknownReason::OutOfFragment {
                    detail: "x".to_string()
                },
                failures: Vec::new(),
                report: FailureReport::default(),
            },
        ));
        assert!(
            store.lookup("m", fp(1)).is_none(),
            "an indefinite outcome evicts the stale definite entry"
        );
        assert!(!store.record(
            "m",
            fp(1),
            &Verdict::CrashedInternal {
                message: "boom".to_string()
            },
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn corrupt_lines_are_tolerated() {
        let dir = temp_dir("corrupt");
        let mut store = VerdictStore::open(&dir);
        store.record("keep", fp(7), &Verdict::Verified(VerifyStats::default()));
        store.save().unwrap();
        let path = dir.join(VerdictStore::FILE_NAME);
        let mut text = fs::read_to_string(&path).unwrap();
        text.insert_str(0, "not json at all\n{\"method\":\"half\"\n\n");
        text.push_str("{\"method\":\"x\",\"fp\":\"zz\",\"verdict\":\"verified\"}\n");
        fs::write(&path, text).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.lookup("keep", fp(7)).is_some());
        assert_eq!(reloaded.corrupt_lines(), 3);
        assert!(
            !reloaded.truncated_tail(),
            "file ends in a newline, so the tail is complete"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_skipped_and_counted() {
        let dir = temp_dir("truncated");
        let mut store = VerdictStore::open(&dir);
        store.record("keep", fp(7), &Verdict::Verified(VerifyStats::default()));
        store.save().unwrap();
        let path = dir.join(VerdictStore::FILE_NAME);
        let mut text = fs::read_to_string(&path).unwrap();
        // A crash mid-append: the final line is cut off with no newline.
        text.push_str("{\"method\":\"half\",\"fp\":\"dead");
        fs::write(&path, text).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert!(reloaded.lookup("keep", fp(7)).is_some());
        assert_eq!(reloaded.corrupt_lines(), 1);
        assert!(reloaded.truncated_tail());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_appends_survive_reopen_without_save() {
        let dir = temp_dir("durable");
        let mut store = VerdictStore::open(&dir);
        assert!(store
            .record_durable("ok", fp(1), &Verdict::Verified(VerifyStats::default()))
            .unwrap());
        assert!(store
            .record_durable("bad", fp(2), &sample_failed())
            .unwrap());
        drop(store); // no save(): the appends alone must persist
        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.lookup("ok", fp(1)).is_some());
        assert_eq!(reloaded.lookup("bad", fp(2)), Some(&sample_failed()));
        assert_eq!(reloaded.corrupt_lines(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_evict_tombstones_replay_last_wins() {
        let dir = temp_dir("tombstone");
        let mut store = VerdictStore::open(&dir);
        store
            .record_durable("m", fp(1), &Verdict::Verified(VerifyStats::default()))
            .unwrap();
        assert!(!store
            .record_durable(
                "m",
                fp(1),
                &Verdict::CrashedInternal {
                    message: "boom".to_string(),
                },
            )
            .unwrap());
        drop(store);
        let reloaded = VerdictStore::open(&dir);
        assert!(
            reloaded.lookup("m", fp(1)).is_none(),
            "the appended tombstone evicts the earlier entry on replay"
        );
        assert_eq!(
            reloaded.corrupt_lines(),
            0,
            "a tombstone is a decodable line, not corruption"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_lines_win() {
        let dir = temp_dir("lastwins");
        fs::create_dir_all(&dir).unwrap();
        let mut text = String::new();
        encode_line(
            &mut text,
            "m",
            &StoredVerdict {
                fingerprint: fp(1),
                verdict: Verdict::Verified(VerifyStats::default()),
            },
        );
        text.push('\n');
        encode_line(
            &mut text,
            "m",
            &StoredVerdict {
                fingerprint: fp(2),
                verdict: Verdict::Verified(VerifyStats::default()),
            },
        );
        text.push('\n');
        fs::write(dir.join(VerdictStore::FILE_NAME), text).unwrap();
        let store = VerdictStore::open(&dir);
        assert!(store.lookup("m", fp(1)).is_none());
        assert!(store.lookup("m", fp(2)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
