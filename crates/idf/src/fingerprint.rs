//! Semantic fingerprints for incremental verification.
//!
//! A method's verdict is a pure function of (a) its own text — body and
//! contract, (b) the *contracts* of the methods it calls directly
//! (calls are verified against specs, never inlined, so callee bodies
//! are irrelevant), (c) the program's field declarations, and (d) the
//! answer-affecting [`VerifierConfig`]
//! knobs: backend, budget, the faults aimed at the method,
//! `retry_unknown`, `simplify`, and `learn`. The [`Fingerprint`] hashes
//! exactly those inputs, so a stored verdict may be reused iff the
//! fingerprint matches: editing one method's body invalidates that
//! method; editing a *spec* additionally invalidates the direct
//! callers; performance-only knobs (`threads`, `cache`, tracing,
//! `cache_dir` itself) are deliberately excluded.

use crate::ast::{Method, Program, Stmt};
use crate::diag::splitmix64;
use crate::exec::{Backend, VerifierConfig};
use std::fmt;

/// A 128-bit semantic fingerprint (two independently seeded 64-bit
/// FNV-1a/splitmix rolling hashes, so an accidental collision must
/// defeat both streams at once).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint {
    /// First hash stream.
    pub hi: u64,
    /// Second (differently seeded) hash stream.
    pub lo: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const SEED_HI: u64 = 0xcbf2_9ce4_8422_2325;
const SEED_LO: u64 = 0x6c62_272e_07bb_0142;

struct Hasher {
    hi: u64,
    lo: u64,
}

impl Hasher {
    fn new() -> Hasher {
        Hasher {
            hi: SEED_HI,
            lo: SEED_LO,
        }
    }

    fn write(&mut self, text: &str) {
        for &b in text.as_bytes() {
            self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lo = (self.lo ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
        }
        // A field separator that no text byte can produce, so
        // ("ab", "c") and ("a", "bc") hash differently.
        self.hi = self.hi.wrapping_mul(FNV_PRIME) ^ 0xff;
        self.lo = self.lo.wrapping_mul(FNV_PRIME) ^ 0xfe;
    }

    fn finish(self) -> Fingerprint {
        Fingerprint {
            hi: splitmix64(self.hi),
            lo: splitmix64(self.lo ^ 0x9e37_79b9),
        }
    }
}

/// The names of the methods `method`'s body calls directly, sorted and
/// deduplicated (the call graph edge set that makes caller verdicts
/// spec-dependent).
pub fn direct_callees(method: &Method) -> Vec<String> {
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Call(_, callee, _) => out.push(callee.clone()),
                Stmt::If(_, t, e) => {
                    walk(t, out);
                    walk(e, out);
                }
                Stmt::While(_, _, body) => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    if let Some(body) = &method.body {
        walk(body, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The canonical, *normalized* interface of a method: its signature and
/// contract pretty-printed from the AST with the body dropped. Parsing
/// already discards whitespace and comments, so two spec texts that
/// differ only in formatting normalize to the same string — callers are
/// invalidated by what a spec *means*, never by how it was typed.
pub fn normalized_interface(method: &Method) -> String {
    Method {
        body: None,
        ..method.clone()
    }
    .to_string()
}

/// Fingerprint of a method's [`normalized_interface`] alone — the value
/// the dependency graph ([`crate::depgraph`]) persists per node so a
/// later run can tell *which* specs changed (and dirty their transitive
/// callers) without rehashing caller bodies.
pub fn interface_fingerprint(method: &Method) -> Fingerprint {
    let mut h = Hasher::new();
    h.write("interface");
    h.write(&normalized_interface(method));
    h.finish()
}

/// The canonical text of the configuration knobs that can change
/// `method`'s verdict. Cost-only knobs (`threads`, `cache`, tracing,
/// `cache_dir`, `explain_stability`) are excluded: they are property-tested to be
/// answer-transparent, so a verdict cached under one setting is valid
/// under any other.
pub fn config_text(backend: Backend, config: &VerifierConfig, method: &str) -> String {
    let faults: Vec<String> = config
        .faults
        .for_method(method)
        .map(|k| format!("{:?}", k))
        .collect();
    format!(
        "backend={:?};budget={:?};faults={:?};retry_unknown={};simplify={};learn={};deny_unstable={};solver={:?}",
        backend,
        config.budget,
        faults,
        config.retry_unknown,
        config.simplify,
        config.learn,
        config.deny_unstable,
        config.solver
    )
}

/// Fingerprint of the whole answer-affecting configuration for a run
/// (every knob in [`config_text`], with the full fault plan instead of
/// one method's slice). Two daemon tenants whose configs agree here can
/// share one verdict-store read side; two that disagree must not
/// thrash each other's entries.
pub fn config_fingerprint(backend: Backend, config: &VerifierConfig) -> Fingerprint {
    let mut h = Hasher::new();
    h.write("config");
    h.write(&config_text(backend, config, ""));
    h.write("faults");
    h.write(&format!("{:?}", config.faults));
    h.finish()
}

/// Computes `method`'s semantic fingerprint within `program`.
///
/// A callee with no declaration in `program` is hashed by name with an
/// explicit "missing" marker, so *adding* the declaration later changes
/// the fingerprint.
pub fn method_fingerprint(
    program: &Program,
    method: &Method,
    backend: Backend,
    config: &VerifierConfig,
) -> Fingerprint {
    let mut h = Hasher::new();
    h.write("method");
    h.write(&method.to_string());
    h.write("fields");
    for (name, ty) in &program.fields {
        h.write(&format!("{}:{}", name, ty));
    }
    h.write("callees");
    for callee in direct_callees(method) {
        match program.method(&callee) {
            Some(m) => {
                // The callee's *normalized interface*: its signature
                // and contract pretty-printed from the AST, never its
                // body (calls are verified against specs) and never the
                // raw source text (formatting-only spec edits must not
                // invalidate callers).
                h.write(&normalized_interface(m));
            }
            None => h.write(&format!("missing:{}", callee)),
        }
    }
    h.write("config");
    h.write(&config_text(backend, config, &method.name));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SRC: &str = "field val: Int
         method get(c: Ref) returns (r: Int)
           requires acc(c.val, 1/2)
           ensures acc(c.val, 1/2) && r == c.val
         { r := c.val }
         method double(c: Ref) returns (r: Int)
           requires acc(c.val, 1/2)
           ensures acc(c.val, 1/2)
         { var t: Int := 0; call t := get(c); r := t + t }
         method free(n: Int) returns (r: Int)
           requires n >= 0
           ensures r >= 0
         { r := n }";

    fn fp(src: &str, name: &str, config: &VerifierConfig) -> Fingerprint {
        let p = parse_program(src).unwrap();
        let m = p.method(name).unwrap();
        method_fingerprint(&p, m, Backend::Destabilized, config)
    }

    #[test]
    fn callee_extraction_is_sorted_and_deduped() {
        let p = parse_program(SRC).unwrap();
        assert_eq!(
            direct_callees(p.method("double").unwrap()),
            vec!["get".to_string()]
        );
        assert!(direct_callees(p.method("get").unwrap()).is_empty());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let cfg = VerifierConfig::default();
        let a = fp(SRC, "double", &cfg);
        assert_eq!(a, fp(SRC, "double", &cfg), "same inputs, same fingerprint");
        assert_ne!(a, fp(SRC, "get", &cfg), "different methods differ");
        assert_eq!(a.to_string().len(), 32);
        assert_eq!(Fingerprint::parse(&a.to_string()), Some(a));
        assert_eq!(Fingerprint::parse("zz"), None);
    }

    #[test]
    fn body_edit_invalidates_only_that_method() {
        let cfg = VerifierConfig::default();
        let edited = SRC.replace("{ r := n }", "{ r := n + 0 }");
        assert_ne!(fp(SRC, "free", &cfg), fp(&edited, "free", &cfg));
        assert_eq!(fp(SRC, "get", &cfg), fp(&edited, "get", &cfg));
        assert_eq!(fp(SRC, "double", &cfg), fp(&edited, "double", &cfg));
    }

    #[test]
    fn callee_spec_edit_invalidates_the_caller() {
        let cfg = VerifierConfig::default();
        // Strengthen get's postcondition: double (its caller) must be
        // re-verified; free (unrelated) must not.
        let edited = SRC.replace("r == c.val", "r == c.val && r >= 0");
        assert_ne!(fp(SRC, "get", &cfg), fp(&edited, "get", &cfg));
        assert_ne!(fp(SRC, "double", &cfg), fp(&edited, "double", &cfg));
        assert_eq!(fp(SRC, "free", &cfg), fp(&edited, "free", &cfg));
        // A callee *body* edit does not touch the caller.
        let body_only = SRC.replace("{ r := c.val }", "{ r := c.val + 0 }");
        assert_eq!(fp(SRC, "double", &cfg), fp(&body_only, "double", &cfg));
    }

    #[test]
    fn formatting_only_spec_edits_do_not_invalidate_anyone() {
        let cfg = VerifierConfig::default();
        // Same program with gratuitous whitespace and comments inside
        // the specs: parses to the same AST, so every fingerprint —
        // interface and full — is identical.
        let noisy = SRC
            .replace(
                "requires acc(c.val, 1/2)",
                "requires /* half */ acc( c.val ,\n 1/2 ) // read share",
            )
            .replace("ensures r >= 0", "ensures\n// comment\n   r  >=  0");
        let p = parse_program(SRC).unwrap();
        let q = parse_program(&noisy).unwrap();
        for name in ["get", "double", "free"] {
            assert_eq!(
                normalized_interface(p.method(name).unwrap()),
                normalized_interface(q.method(name).unwrap()),
                "normalized interface of {} ignores formatting",
                name
            );
            assert_eq!(
                interface_fingerprint(p.method(name).unwrap()),
                interface_fingerprint(q.method(name).unwrap()),
            );
            assert_eq!(fp(SRC, name, &cfg), fp(&noisy, name, &cfg));
        }
    }

    #[test]
    fn interface_fingerprint_tracks_specs_not_bodies() {
        let spec_edit = SRC.replace("r == c.val", "r == c.val && r >= 0");
        let body_edit = SRC.replace("{ r := c.val }", "{ r := c.val + 0 }");
        let p = parse_program(SRC).unwrap();
        let s = parse_program(&spec_edit).unwrap();
        let b = parse_program(&body_edit).unwrap();
        assert_ne!(
            interface_fingerprint(p.method("get").unwrap()),
            interface_fingerprint(s.method("get").unwrap()),
            "a contract edit changes the interface fingerprint"
        );
        assert_eq!(
            interface_fingerprint(p.method("get").unwrap()),
            interface_fingerprint(b.method("get").unwrap()),
            "a body edit leaves the interface fingerprint alone"
        );
    }

    #[test]
    fn config_fingerprint_covers_answer_affecting_knobs_only() {
        let base = VerifierConfig::default();
        let a = config_fingerprint(Backend::Destabilized, &base);
        assert_eq!(a, config_fingerprint(Backend::Destabilized, &base));
        assert_ne!(a, config_fingerprint(Backend::StableBaseline, &base));
        assert_ne!(
            a,
            config_fingerprint(
                Backend::Destabilized,
                &VerifierConfig {
                    budget: crate::budget::Budget::unlimited().with_solver_fuel(7),
                    ..base.clone()
                }
            )
        );
        assert_eq!(
            a,
            config_fingerprint(
                Backend::Destabilized,
                &VerifierConfig {
                    threads: 8,
                    cache: false,
                    store_format: Some(crate::store::StoreFormat::Jsonl),
                    ..base.clone()
                }
            ),
            "cost-only knobs do not split the shared store"
        );
    }

    #[test]
    fn answer_affecting_knobs_are_in_the_fingerprint() {
        let base = VerifierConfig::default();
        let a = fp(SRC, "get", &base);
        for cfg in [
            VerifierConfig {
                simplify: false,
                ..base.clone()
            },
            VerifierConfig {
                learn: false,
                ..base.clone()
            },
            VerifierConfig {
                retry_unknown: false,
                ..base.clone()
            },
            VerifierConfig {
                budget: crate::budget::Budget::unlimited().with_solver_fuel(7),
                ..base.clone()
            },
            VerifierConfig {
                deny_unstable: true,
                ..base.clone()
            },
            VerifierConfig {
                solver: crate::smt::SolverCore::Dpll,
                ..base.clone()
            },
        ] {
            assert_ne!(a, fp(SRC, "get", &cfg));
        }
        // Cost-only knobs leave it unchanged.
        for cfg in [
            VerifierConfig {
                explain_stability: true,
                ..base.clone()
            },
            VerifierConfig {
                threads: 8,
                ..base.clone()
            },
            VerifierConfig {
                cache: false,
                ..base.clone()
            },
            VerifierConfig {
                cache_dir: Some(std::path::PathBuf::from("/tmp/x")),
                ..base.clone()
            },
        ] {
            assert_eq!(a, fp(SRC, "get", &cfg));
        }
    }
}
