//! Translation of IDF assertions into the destabilized base logic.
//!
//! This is the semantic bridge the paper builds: the assertion language
//! of an automated IDF verifier *elaborates directly* into Daenerys
//! propositions — `acc(x.f, q)` becomes a fractional points-to, a
//! heap-dependent boolean expression becomes a pure assertion over heap
//! reads, and `perm(x.f) ⋈ q` becomes permission introspection. In
//! stable Iris no such direct translation exists (heap reads would have
//! to become existential witnesses).
//!
//! The translation is *concrete*: it is defined relative to an
//! environment mapping IDF variables to runtime values (objects =
//! field-cell tuples), which is exactly the shape under which the
//! dynamic oracle of [`crate::compile`] operates. The integration suite
//! uses it to check that method contracts, read as Daenerys assertions,
//! hold in the monitored worlds of executed programs.

use crate::ast::{Assertion, Expr, Op, Program};
use crate::compile::{ConcreteObj, ConcreteVal};
use daenerys_algebra::DFrac;
use daenerys_core::{Assert, Term};
use daenerys_heaplang::Loc;
use std::collections::BTreeMap;
use std::fmt;

/// A translation failure (constructs with no concrete counterpart).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TranslateError(pub String);

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

fn err<T>(m: impl Into<String>) -> Result<T, TranslateError> {
    Err(TranslateError(m.into()))
}

/// The concrete environment the translation is relative to.
pub type TEnv = BTreeMap<String, ConcreteVal>;

/// Resolves the cell location of `recv.field` in the environment.
fn field_loc(prog: &Program, env: &TEnv, recv: &Expr, field: &str) -> Result<Loc, TranslateError> {
    let obj = match eval_ref(env, recv)? {
        ConcreteVal::Obj(o) => o,
        v => return err(format!("receiver {} is not an object ({:?})", recv, v)),
    };
    let idx = prog
        .fields
        .iter()
        .position(|(f, _)| f == field)
        .ok_or_else(|| TranslateError(format!("unknown field {}", field)))?;
    Ok(obj.cells[idx])
}

/// Evaluates a reference-typed expression in the environment (only
/// variables denote objects in the concrete fragment).
fn eval_ref(env: &TEnv, e: &Expr) -> Result<ConcreteVal, TranslateError> {
    match e {
        Expr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| TranslateError(format!("unbound variable {}", x))),
        _ => err(format!("unsupported reference expression {}", e)),
    }
}

/// Translates an IDF expression to a logic [`Term`].
///
/// Field reads become heap reads `!ℓ` of the resolved cell — the
/// destabilized translation. `old(…)` has no in-formula counterpart (the
/// logic's triples relate two worlds); callers substitute pre-state
/// values first via [`strip_old`].
///
/// # Errors
///
/// Returns [`TranslateError`] for `old`, `perm` outside comparisons, or
/// unresolvable receivers.
pub fn translate_expr(prog: &Program, env: &TEnv, e: &Expr) -> Result<Term, TranslateError> {
    Ok(match e {
        Expr::Int(n) => Term::int(*n),
        Expr::Bool(b) => Term::bool(*b),
        Expr::Null => return err("null has no term translation"),
        Expr::Var(x) => match env.get(x) {
            Some(ConcreteVal::Int(n)) => Term::int(*n),
            Some(ConcreteVal::Bool(b)) => Term::bool(*b),
            Some(ConcreteVal::Obj(_)) => {
                return err(format!("object variable {} used as a value", x))
            }
            None => return err(format!("unbound variable {}", x)),
        },
        Expr::Field(recv, f, _) => {
            let l = field_loc(prog, env, recv, f)?;
            Term::read(Term::loc(l))
        }
        Expr::Old(..) => return err("old(…) must be substituted before translation"),
        Expr::Perm(..) => return err("perm(…) translates at the assertion level"),
        Expr::Bin(op, a, b) => {
            let ta = translate_expr(prog, env, a)?;
            let tb = translate_expr(prog, env, b)?;
            match op {
                Op::Add => Term::add(ta, tb),
                Op::Sub => Term::sub(ta, tb),
                Op::Mul => Term::mul(ta, tb),
                Op::Div => return err("division has no term translation"),
                Op::Eq => Term::eq(ta, tb),
                Op::Ne => Term::Not(Box::new(Term::eq(ta, tb))),
                Op::Lt => Term::lt(ta, tb),
                Op::Le => Term::le(ta, tb),
                Op::Gt => Term::lt(tb, ta),
                Op::Ge => Term::le(tb, ta),
                Op::And => Term::And(Box::new(ta), Box::new(tb)),
                Op::Or => Term::Or(Box::new(ta), Box::new(tb)),
            }
        }
        Expr::Not(a) => Term::Not(Box::new(translate_expr(prog, env, a)?)),
        Expr::Neg(a) => Term::sub(Term::int(0), translate_expr(prog, env, a)?),
        Expr::Cond(..) => return err("conditional expressions: translate per branch"),
    })
}

/// [`translate_assertion`] wrapped in a `translate` span on
/// `collector` — the traced entry point for phase attribution.
///
/// # Errors
///
/// Same as [`translate_assertion`].
pub fn translate_assertion_traced(
    prog: &Program,
    env: &TEnv,
    a: &Assertion,
    collector: &mut daenerys_obs::TraceCollector,
) -> Result<Assert, TranslateError> {
    let span = collector.span_start("translate");
    let out = translate_assertion(prog, env, a);
    collector.span_end(span);
    out
}

/// Translates an IDF assertion to a Daenerys [`Assert`].
///
/// * `acc(x.f, q)` ⇒ `ℓ ↦{q} !ℓ`-style ownership: since the chunk value
///   is unknown at translation time, ownership is rendered as
///   `∃-free` permission introspection plus well-definedness:
///   `perm(ℓ) ≥ q ∧ wd(!ℓ)` — which over monitored worlds coincides
///   with holding the chunk;
/// * heap-dependent booleans ⇒ `⌜translated term⌝`;
/// * `perm(e.f) ⋈ q` comparisons ⇒ [`Assert::PermGe`]/[`Assert::PermEq`]
///   forms where expressible;
/// * `&&` ⇒ `∧` (IDF conjunction separates permissions, but over
///   *translated introspective* ownership the conjunctive reading is the
///   faithful one — see DESIGN.md §4.5 on self-framing being
///   conjunctive).
///
/// # Errors
///
/// Propagates [`TranslateError`] from expression translation.
pub fn translate_assertion(
    prog: &Program,
    env: &TEnv,
    a: &Assertion,
) -> Result<Assert, TranslateError> {
    Ok(match a {
        Assertion::Expr(e) => {
            if let Some(p) = translate_perm_comparison(prog, env, e)? {
                p
            } else {
                Assert::Pure(translate_expr(prog, env, e)?)
            }
        }
        Assertion::Acc(recv, field, q) => {
            let l = field_loc(prog, env, recv, field)?;
            Assert::and(
                Assert::PermGe(Term::loc(l), *q),
                Assert::WellDef(Term::read(Term::loc(l))),
            )
        }
        Assertion::And(p, q) => Assert::and(
            translate_assertion(prog, env, p)?,
            translate_assertion(prog, env, q)?,
        ),
        Assertion::Implies(c, body) => Assert::impl_(
            Assert::Pure(translate_expr(prog, env, c)?),
            translate_assertion(prog, env, body)?,
        ),
    })
}

/// Recognizes `perm(e.f) ⋈ fraction` and translates it to introspection.
fn translate_perm_comparison(
    prog: &Program,
    env: &TEnv,
    e: &Expr,
) -> Result<Option<Assert>, TranslateError> {
    let Expr::Bin(op, a, b) = e else {
        return Ok(None);
    };
    let (perm, lit, flipped) = match (&**a, &**b) {
        (Expr::Perm(r, f, _), rhs) => ((r, f), rhs, false),
        (lhs, Expr::Perm(r, f, _)) => ((r, f), lhs, true),
        _ => return Ok(None),
    };
    let q = match crate::ast::fraction_literal(lit) {
        Some(q) => q,
        None => return Ok(None),
    };
    let l = field_loc(prog, env, perm.0, perm.1)?;
    let lt = Term::loc(l);
    // Only the ≥ / = forms have direct counterparts; others are
    // expressed via negation where possible.
    Ok(Some(match (op, flipped) {
        (Op::Ge, false) | (Op::Le, true) => Assert::PermGe(lt, q),
        (Op::Eq, _) => Assert::PermEq(lt, q),
        (Op::Gt, false) | (Op::Lt, true) => {
            // perm > q ⇔ ¬(perm = q) ∧ perm ≥ q.
            Assert::and(
                Assert::impl_(Assert::PermEq(lt.clone(), q), Assert::falsity()),
                Assert::PermGe(lt, q),
            )
        }
        (Op::Lt, false) | (Op::Gt, true) => {
            // perm < q ⇔ ¬(perm ≥ q).
            Assert::impl_(Assert::PermGe(lt, q), Assert::falsity())
        }
        (Op::Le, false) | (Op::Ge, true) => {
            // perm ≤ q ⇔ ¬(perm > q) ⇔ perm ≥ q → perm = q.
            Assert::impl_(Assert::PermGe(lt.clone(), q), Assert::PermEq(lt, q))
        }
        _ => return Ok(None),
    }))
}

/// Substitutes `old(e)` subexpressions with their concrete pre-state
/// values, leaving everything else for [`translate_assertion`].
///
/// # Errors
///
/// Returns [`TranslateError`] when a pre-state value cannot be computed.
pub fn strip_old(
    prog: &Program,
    env: &TEnv,
    old_heap: &daenerys_heaplang::Heap,
    a: &Assertion,
) -> Result<Assertion, TranslateError> {
    Ok(match a {
        Assertion::Expr(e) => Assertion::Expr(strip_old_expr(prog, env, old_heap, e)?),
        Assertion::Acc(r, f, q) => Assertion::Acc(r.clone(), f.clone(), *q),
        Assertion::And(p, q) => Assertion::and(
            strip_old(prog, env, old_heap, p)?,
            strip_old(prog, env, old_heap, q)?,
        ),
        Assertion::Implies(c, b) => Assertion::Implies(
            strip_old_expr(prog, env, old_heap, c)?,
            Box::new(strip_old(prog, env, old_heap, b)?),
        ),
    })
}

fn strip_old_expr(
    prog: &Program,
    env: &TEnv,
    old_heap: &daenerys_heaplang::Heap,
    e: &Expr,
) -> Result<Expr, TranslateError> {
    Ok(match e {
        Expr::Old(inner, _) => {
            let v = crate::compile::eval_spec(prog, inner, env, old_heap, old_heap)
                .map_err(|e| TranslateError(e.0))?;
            match v {
                ConcreteVal::Int(n) => Expr::Int(n),
                ConcreteVal::Bool(b) => Expr::Bool(b),
                ConcreteVal::Obj(_) => return err("old(…) of an object"),
            }
        }
        Expr::Field(r, f, at) => Expr::Field(
            Box::new(strip_old_expr(prog, env, old_heap, r)?),
            f.clone(),
            *at,
        ),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(strip_old_expr(prog, env, old_heap, a)?),
            Box::new(strip_old_expr(prog, env, old_heap, b)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(strip_old_expr(prog, env, old_heap, a)?)),
        Expr::Neg(a) => Expr::Neg(Box::new(strip_old_expr(prog, env, old_heap, a)?)),
        Expr::Cond(c, t, el) => Expr::Cond(
            Box::new(strip_old_expr(prog, env, old_heap, c)?),
            Box::new(strip_old_expr(prog, env, old_heap, t)?),
            Box::new(strip_old_expr(prog, env, old_heap, el)?),
        ),
        _ => e.clone(),
    })
}

/// Convenience: builds the environment and world pieces for checking a
/// translated contract against a monitored execution.
pub fn env_of(args: &[(&str, ConcreteVal)]) -> TEnv {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// Returns the object bound to `x` in the environment.
///
/// # Errors
///
/// Returns a [`TranslateError`] when the variable is unbound or not an
/// object.
pub fn obj_of(env: &TEnv, x: &str) -> Result<ConcreteObj, TranslateError> {
    match env.get(x) {
        Some(ConcreteVal::Obj(o)) => Ok(o.clone()),
        Some(other) => Err(TranslateError(format!(
            "variable {} is not an object: {:?}",
            x, other
        ))),
        None => Err(TranslateError(format!("variable {} is unbound", x))),
    }
}

/// The owned resource corresponding to holding `acc` at full permission
/// on every cell of the given objects (what a caller transfers to a
/// method with a full-permission precondition).
pub fn full_ownership(heap: &daenerys_heaplang::Heap, objs: &[&ConcreteObj]) -> daenerys_core::Res {
    use daenerys_algebra::Ra;
    let mut res = daenerys_core::Res::empty();
    for o in objs {
        for l in &o.cells {
            if let Some(v) = heap.get(*l) {
                res = res.op(&daenerys_core::Res::points_to(*l, DFrac::FULL, v.clone()));
            }
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::alloc_object;
    use crate::parser::parse_program;
    use daenerys_core::{holds, Env, EvalCtx, UniverseSpec, World};
    use daenerys_heaplang::Heap;

    fn setup() -> (Program, Heap, TEnv) {
        let prog = parse_program(
            "field val: Int
             method m(c: Ref) requires acc(c.val) ensures acc(c.val) { }",
        )
        .unwrap();
        let mut heap = Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[7]);
        let env = env_of(&[("c", ConcreteVal::Obj(obj))]);
        (prog, heap, env)
    }

    #[test]
    fn field_reads_become_heap_reads() {
        let (prog, _, env) = setup();
        let e = Expr::bin(Op::Eq, Expr::field(Expr::var("c"), "val"), Expr::Int(7));
        let t = translate_expr(&prog, &env, &e).unwrap();
        assert_eq!(t, Term::eq(Term::read(Term::loc(Loc(0))), Term::int(7)));
    }

    #[test]
    fn acc_becomes_introspection_plus_welldef() {
        let (prog, _, env) = setup();
        let a = Assertion::acc(Expr::var("c"), "val");
        let p = translate_assertion(&prog, &env, &a).unwrap();
        match p {
            Assert::And(l, r) => {
                assert!(matches!(*l, Assert::PermGe(..)));
                assert!(matches!(*r, Assert::WellDef(_)));
            }
            other => panic!("unexpected {}", other),
        }
    }

    #[test]
    fn translated_contract_holds_in_owned_world() {
        let (prog, heap, env) = setup();
        // Pre: acc(c.val) && c.val == 7, translated, must hold in the
        // world where we own the cell with value 7.
        let pre = Assertion::and(
            Assertion::acc(Expr::var("c"), "val"),
            Assertion::Expr(Expr::bin(
                Op::Eq,
                Expr::field(Expr::var("c"), "val"),
                Expr::Int(7),
            )),
        );
        let p = translate_assertion(&prog, &env, &pre).unwrap();
        let obj = obj_of(&env, "c").unwrap();
        let own = full_ownership(&heap, &[&obj]);
        let uni = UniverseSpec::tiny().build();
        let ctx = EvalCtx::new(&uni);
        assert!(holds(&p, &World::solo(own), &Env::new(), 1, &ctx));

        // And it fails without ownership (the introspection part).
        assert!(!holds(
            &p,
            &World::new(daenerys_core::Res::empty(), full_ownership(&heap, &[&obj])).unwrap(),
            &Env::new(),
            1,
            &ctx
        ));
    }

    #[test]
    fn perm_comparisons_translate_to_introspection() {
        let (prog, _, env) = setup();
        let ge = parse_perm(&prog, &env, Op::Ge);
        assert!(matches!(ge, Assert::PermGe(..)));
        let eq = parse_perm(&prog, &env, Op::Eq);
        assert!(matches!(eq, Assert::PermEq(..)));
    }

    fn parse_perm(prog: &Program, env: &TEnv, op: Op) -> Assert {
        let e = Expr::Bin(
            op,
            Box::new(Expr::Perm(
                Box::new(Expr::var("c")),
                "val".into(),
                crate::ast::Span::NONE,
            )),
            Box::new(Expr::Bin(
                Op::Div,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Int(2)),
            )),
        );
        translate_assertion(prog, env, &Assertion::Expr(e)).unwrap()
    }

    #[test]
    fn strip_old_substitutes_prestate_values() {
        let (prog, heap, env) = setup();
        let a = Assertion::Expr(Expr::bin(
            Op::Eq,
            Expr::field(Expr::var("c"), "val"),
            Expr::Old(
                Box::new(Expr::field(Expr::var("c"), "val")),
                crate::ast::Span::NONE,
            ),
        ));
        let stripped = strip_old(&prog, &env, &heap, &a).unwrap();
        match stripped {
            Assertion::Expr(Expr::Bin(Op::Eq, _, rhs)) => {
                assert_eq!(*rhs, Expr::Int(7));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn untranslatable_constructs_are_reported() {
        let (prog, _, env) = setup();
        assert!(translate_expr(&prog, &env, &Expr::Null).is_err());
        assert!(translate_expr(
            &prog,
            &env,
            &Expr::Old(Box::new(Expr::Int(1)), crate::ast::Span::NONE)
        )
        .is_err());
        assert!(translate_expr(&prog, &env, &Expr::var("zz")).is_err());
    }
}
