//! Adequacy validation of every WP rule schema (the program-logic half
//! of experiment T2): each rule's instances are executed under the
//! permission monitor over all heap models of their preconditions.

use daenerys_algebra::{DFrac, Q};
use daenerys_core::{Assert, Term, UniverseSpec};
use daenerys_heaplang::{Expr, Loc, Val};
use daenerys_proglog::rules::*;
use daenerys_proglog::{validate, ForkPolicy, TripleProof};

fn assert_adequate(tp: &TripleProof, policy: ForkPolicy) {
    let uni = UniverseSpec::tiny().build();
    let report = validate(tp.triple(), &uni, 10_000, policy);
    assert!(
        report.ok(),
        "rule {} produced an inadequate triple {}:\n{:?}",
        tp.rule(),
        tp.triple(),
        report.failures
    );
    assert!(report.models > 0, "rule {} never exercised", tp.rule());
}

#[test]
fn axiom_rules_are_adequate() {
    let l = Loc(0);
    for v in [Val::int(0), Val::int(1)] {
        assert_adequate(&wp_alloc(v.clone(), "x"), ForkPolicy::Forbid);
        for dq in [DFrac::own(Q::HALF), DFrac::FULL, DFrac::discarded()] {
            assert_adequate(&wp_load(l, dq, v.clone(), "x").unwrap(), ForkPolicy::Forbid);
            assert_adequate(
                &wp_load_hd(l, dq, v.clone(), "x").unwrap(),
                ForkPolicy::Forbid,
            );
        }
        assert_adequate(
            &wp_store(l, v.clone(), Val::int(1), "x"),
            ForkPolicy::Forbid,
        );
        assert_adequate(
            &wp_store_hd(l, v.clone(), Val::int(0), "x"),
            ForkPolicy::Forbid,
        );
        assert_adequate(
            &wp_cas_suc(l, v.clone(), Val::int(1), "x").unwrap(),
            ForkPolicy::Forbid,
        );
    }
    assert_adequate(
        &wp_cas_fail(l, Val::int(0), Val::int(1), Val::int(1), "x").unwrap(),
        ForkPolicy::Forbid,
    );
    assert_adequate(&wp_faa(l, 0, 1, "x"), ForkPolicy::Forbid);
    assert_adequate(&wp_faa(l, 1, -1, "x"), ForkPolicy::Forbid);
    assert_adequate(
        &wp_value(Val::int(1), "x", Assert::eq(Term::var("x"), Term::int(1))),
        ForkPolicy::Forbid,
    );
}

#[test]
fn framed_rules_are_adequate() {
    // Frame a *stable* assertion over a store — survives execution.
    let tp = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
    let stable_frames = [
        Assert::PermGe(Term::loc(Loc(0)), Q::ZERO),
        Assert::truth(),
        Assert::Emp,
    ];
    for r in stable_frames {
        let framed = wp_frame(&tp, r).unwrap();
        assert_adequate(&framed, ForkPolicy::Forbid);
    }
}

/// The destabilized counterpoint: framing an *unstable* heap-dependent
/// fact over a program that writes the location yields an inadequate
/// triple — and the monitor-based validator proves it by counterexample.
#[test]
fn unstable_frame_would_be_inadequate() {
    use daenerys_proglog::Triple;
    // Hand-write the triple wp_frame refuses to build:
    // {l ↦ 0 ∗ ⌜!l = 0⌝} l <- 1 {x. (⌜x=()⌝ ∧ l ↦ 1) ∗ ⌜!l = 0⌝}.
    let l = Term::loc(Loc(0));
    let read0 = Assert::read_eq(l.clone(), Term::int(0));
    let t = Triple::new(
        Assert::sep(Assert::points_to(l.clone(), Term::int(0)), read0.clone()),
        Expr::store(Expr::Val(Val::loc(Loc(0))), Expr::int(1)),
        "x",
        Assert::sep(Assert::points_to(l, Term::int(1)), read0),
    );
    let uni = UniverseSpec::tiny().build();
    let report = validate(&t, &uni, 1000, ForkPolicy::Forbid);
    assert!(report.models > 0);
    assert!(
        !report.ok(),
        "the unstable frame should be refuted by execution"
    );
}

#[test]
fn let_chains_are_adequate() {
    // {emp} let l = ref 0 in l <- 1 {x. ⌜x = ()⌝}.
    // The allocator deterministically yields the next fresh location;
    // models of emp have heaps built from the tiny universe (1 cell max),
    // so the fresh location is 0 or 1. Provide continuations for both.
    let alloc = wp_alloc(Val::int(0), "l");
    let e2 = Expr::store(Expr::var("l"), Expr::int(1));
    let unit_post = Assert::eq(Term::var("y"), Term::Lit(Val::unit()));
    let mut conts = Vec::new();
    for lv in [Loc(0), Loc(1)] {
        let store = wp_store(lv, Val::int(0), Val::int(1), "y");
        // Weaken the store post to the shared final post via consequence.
        let weaken = daenerys_core::proof::and_elim_l(
            Assert::eq(Term::var("y"), Term::Lit(Val::unit())),
            Assert::points_to(Term::loc(lv), Term::int(1)),
        );
        let pre_refl = daenerys_core::proof::refl(store.triple().pre.clone());
        let weakened = wp_consequence(&pre_refl, &store, &weaken).unwrap();
        conts.push((Val::loc(lv), weakened));
    }
    // All continuations must share the post; and_elim_l gives exactly
    // `⌜y = ()⌝` in both cases.
    assert_eq!(conts[0].1.triple().post, unit_post);
    let seq = wp_let(&alloc, "l", e2, &conts).unwrap();
    assert_adequate(&seq, ForkPolicy::Forbid);
}

#[test]
fn fork_rule_is_adequate() {
    let child = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
    let forked = wp_fork(&child);
    assert_adequate(&forked, ForkPolicy::GiveAll);
}

#[test]
fn consequence_with_kernel_entailments() {
    // Strengthen the pre of a load using the core kernel: full ⊢ full.
    let tp = wp_load(Loc(0), DFrac::FULL, Val::int(1), "x").unwrap();
    let pre = daenerys_core::proof::refl(tp.triple().pre.clone());
    let post = daenerys_core::proof::and_elim_l(
        Assert::eq(Term::var("x"), Term::int(1)),
        Assert::points_to(Term::loc(Loc(0)), Term::int(1)),
    );
    let weakened = wp_consequence(&pre, &tp, &post).unwrap();
    assert_adequate(&weakened, ForkPolicy::Forbid);
}

#[test]
fn fork_rule_is_adequate_under_all_interleavings() {
    use daenerys_proglog::validate_exhaustive;
    let child = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
    let forked = wp_fork(&child);
    let uni = UniverseSpec::tiny().build();
    let report = validate_exhaustive(forked.triple(), &uni, 64, ForkPolicy::GiveAll);
    assert!(report.models > 0);
    assert!(report.ok(), "{:?}", report.failures);
}

#[test]
fn exhaustive_validation_refutes_schedule_dependent_posts() {
    use daenerys_heaplang::parse;
    use daenerys_proglog::{validate_exhaustive, Triple};
    // {l ↦ 0} fork (l <- 1); !l {x. ⌜x = 0⌝} — true round-robin-first,
    // false on the schedule that runs the child before the load.
    let prog = parse("fork (l <- 1); !l")
        .unwrap()
        .subst("l", &Val::loc(Loc(0)));
    let t = Triple::new(
        Assert::points_to(Term::loc(Loc(0)), Term::int(0)),
        prog,
        "x",
        Assert::eq(Term::var("x"), Term::int(0)),
    );
    let uni = UniverseSpec::tiny().build();
    let report = validate_exhaustive(&t, &uni, 64, ForkPolicy::GiveAll);
    assert!(report.models > 0);
    assert!(!report.ok(), "schedule-dependent post must be refuted");
}

#[test]
fn exhaustive_validation_is_thread_count_invariant() {
    use daenerys_heaplang::parse;
    use daenerys_proglog::{validate_exhaustive_with, Triple};
    // A triple with genuine schedule-dependent failures, so the failure
    // list itself (not just ok()) must agree across fan-out widths.
    let prog = parse("fork (l <- 1); !l")
        .unwrap()
        .subst("l", &Val::loc(Loc(0)));
    let t = Triple::new(
        Assert::points_to(Term::loc(Loc(0)), Term::int(0)),
        prog,
        "x",
        Assert::eq(Term::var("x"), Term::int(0)),
    );
    let uni = UniverseSpec::tiny().build();
    let one = validate_exhaustive_with(&t, &uni, 64, ForkPolicy::GiveAll, 1);
    let two = validate_exhaustive_with(&t, &uni, 64, ForkPolicy::GiveAll, 2);
    let eight = validate_exhaustive_with(&t, &uni, 64, ForkPolicy::GiveAll, 8);
    assert!(one.models > 0 && !one.ok());
    assert_eq!(one.models, two.models);
    assert_eq!(one.failures, two.failures);
    assert_eq!(one.models, eight.models);
    assert_eq!(one.failures, eight.failures);
}
