//! Adequacy as a runtime oracle.
//!
//! The paper's adequacy theorem: a closed proof of `{P} e {x. Q}`
//! guarantees that executing `e` from any state satisfying `P` is safe
//! (no stuck states, every access covered by permissions) and ends in a
//! state satisfying `Q`. We validate exactly this, executably: enumerate
//! the heap models of `P` inside a finite universe, run `e` under the
//! permission monitor, and check `Q` in the final world.

use crate::monitor::{MonMachine, Violation};
use crate::triple::Triple;
use daenerys_core::{holds, Env, EvalCtx, World, WorldUniverse};
use daenerys_heaplang::{Heap, Val};

/// How fork hands resources to children during validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForkPolicy {
    /// The child receives the parent's entire resource (matches the
    /// `wp-fork` rule, whose conclusion keeps nothing).
    GiveAll,
    /// Forks are not expected; encountering one is a violation.
    Forbid,
}

/// The outcome of validating one triple against one universe.
#[derive(Clone, Debug)]
pub struct AdequacyReport {
    /// Number of pre-models executed.
    pub models: usize,
    /// Human-readable descriptions of failures (empty = adequate).
    pub failures: Vec<String>,
}

impl AdequacyReport {
    /// Whether every model executed safely and satisfied the post.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Builds the physical heap corresponding to a world's total resource.
pub fn heap_of_world(w: &World) -> Heap {
    let mut h = Heap::new();
    let total = w.total();
    for (l, (_, ag)) in total.heap.iter() {
        if let Some(v) = ag.get() {
            h.insert(*l, v.clone());
        }
    }
    h
}

/// Validates `{P} e {x. Q}` by monitored execution over every model of
/// `P` in the universe.
///
/// For each world `(own, frame)` with `P(own, frame)`:
///
/// 1. materialize the physical heap of `own ⋅ frame`;
/// 2. run `e` under the permission monitor with resource `own`
///    (round-robin over forked threads);
/// 3. on completion, check `Q[result/x]` in the final world, where the
///    frame additionally absorbs the resources of finished children.
pub fn validate(
    t: &Triple,
    uni: &WorldUniverse,
    fuel: usize,
    fork_policy: ForkPolicy,
) -> AdequacyReport {
    let ctx = EvalCtx::new(uni);
    let env = Env::new();
    let mut models = 0;
    let mut failures = Vec::new();

    for w in uni.worlds() {
        if !holds(&t.pre, &w, &env, 2, &ctx) {
            continue;
        }
        models += 1;
        let heap = heap_of_world(&w);
        let mut machine = MonMachine::new(t.expr.clone(), w.own.clone(), heap);
        let result = run_with_policy(&mut machine, fuel, fork_policy);
        match result {
            Err(v) => failures.push(format!("model own={:?} frame={:?}: {}", w.own, w.frame, v)),
            Ok(()) => {
                let value: Val = match machine.main_result() {
                    Some(v) => v.clone(),
                    None => {
                        failures.push(format!("model own={:?}: main thread did not finish", w.own));
                        continue;
                    }
                };
                // Children's left-over resources rejoin the environment.
                let mut frame = w.frame.clone();
                for extra in machine.threads.iter().skip(1) {
                    frame = daenerys_algebra::Ra::op(&frame, &extra.own);
                }
                let final_world = World {
                    own: machine.main_own().clone(),
                    frame,
                };
                let post = t.post.subst(&t.binder, &value);
                if !holds(&post, &final_world, &env, 2, &ctx) {
                    failures.push(format!(
                        "model own={:?}: post {} failed at result {} (final own {:?})",
                        w.own, post, value, final_world.own
                    ));
                }
            }
        }
    }

    AdequacyReport { models, failures }
}

/// Fixed schedule-prefix fan-out for parallel exhaustive validation.
/// Each model's schedule tree is expanded breadth-first to (at least)
/// this many prefixes *before* workers are assigned, so the partition
/// unit — and therefore the report — is independent of thread count.
const PREFIX_TARGET: usize = 64;

/// Validates a triple under **every interleaving** (depth-bounded DFS
/// over scheduler choices) instead of round-robin only. Use for
/// concurrent triples where the schedule matters.
///
/// Schedule exploration fans out across one worker thread per available
/// CPU; see [`validate_exhaustive_with`] for an explicit width.
pub fn validate_exhaustive(
    t: &Triple,
    uni: &WorldUniverse,
    depth: usize,
    fork_policy: ForkPolicy,
) -> AdequacyReport {
    validate_exhaustive_with(t, uni, depth, fork_policy, 0)
}

/// As [`validate_exhaustive`], with an explicit worker-thread count
/// (`0` = one per available CPU).
///
/// Per model, the schedule tree is first expanded breadth-first into a
/// frontier of schedule prefixes (at least `PREFIX_TARGET` when the
/// tree is that wide); the prefixes are then partitioned round-robin
/// across the workers and each explored to completion. The frontier and
/// the merge order do not depend on `threads`, so the report is
/// identical for every width.
pub fn validate_exhaustive_with(
    t: &Triple,
    uni: &WorldUniverse,
    depth: usize,
    fork_policy: ForkPolicy,
    threads: usize,
) -> AdequacyReport {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    let ctx = EvalCtx::new(uni);
    let env = Env::new();
    let mut models = 0;
    let mut failures = Vec::new();

    for w in uni.worlds() {
        if !holds(&t.pre, &w, &env, 2, &ctx) {
            continue;
        }
        models += 1;
        let heap = heap_of_world(&w);
        let initial = MonMachine::new(t.expr.clone(), w.own.clone(), heap);

        // Expand breadth-first to the prefix frontier. Terminal and
        // over-depth prefixes are settled right here, in expansion
        // order.
        let mut frontier: Vec<(MonMachine, usize)> = vec![(initial, 0)];
        while frontier.len() < PREFIX_TARGET {
            let mut next_frontier = Vec::new();
            let mut expanded = false;
            for (m, d) in frontier {
                let runnable = m.runnable();
                if runnable.is_empty() {
                    check_schedule_terminal(t, &w, &m, &env, &ctx, &mut failures);
                    continue;
                }
                if d >= depth {
                    failures.push(format!("model own={:?}: depth bound hit", w.own));
                    continue;
                }
                expanded = true;
                for i in runnable {
                    let mut child = m.clone();
                    if fork_policy == ForkPolicy::GiveAll {
                        let own = child.threads[i].own.clone();
                        child.fork_resources.clear();
                        child.fork_resources.push_back(own);
                    }
                    match child.step_thread(i) {
                        Ok(()) => next_frontier.push((child, d + 1)),
                        Err(v) => failures.push(format!("model own={:?}: {}", w.own, v)),
                    }
                }
            }
            frontier = next_frontier;
            if !expanded {
                break;
            }
        }

        // Explore each prefix to completion; merge failures in frontier
        // order so the outcome is schedule- and thread-count-stable.
        let width = threads.min(frontier.len()).max(1);
        let per_prefix: Vec<Vec<String>> = if width <= 1 {
            frontier
                .into_iter()
                .map(|e| explore_prefix(t, &w, e, depth, fork_policy, &env, &ctx))
                .collect()
        } else {
            let frontier_ref = &frontier;
            let (w_ref, env_ref, ctx_ref) = (&w, &env, &ctx);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..width)
                    .map(|k| {
                        scope.spawn(move || {
                            frontier_ref
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| i % width == k)
                                .map(|(i, e)| {
                                    let f = explore_prefix(
                                        t,
                                        w_ref,
                                        e.clone(),
                                        depth,
                                        fork_policy,
                                        env_ref,
                                        ctx_ref,
                                    );
                                    (i, f)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut slots: Vec<Vec<String>> = vec![Vec::new(); frontier_ref.len()];
                for h in handles {
                    for (i, f) in h.join().expect("adequacy worker panicked") {
                        slots[i] = f;
                    }
                }
                slots
            })
        };
        for f in per_prefix {
            failures.extend(f);
        }
    }
    AdequacyReport { models, failures }
}

/// Depth-first completion of one schedule prefix.
fn explore_prefix(
    t: &Triple,
    w: &World,
    entry: (MonMachine, usize),
    depth: usize,
    fork_policy: ForkPolicy,
    env: &Env,
    ctx: &EvalCtx<'_>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut stack = vec![entry];
    while let Some((m, d)) = stack.pop() {
        let runnable = m.runnable();
        if runnable.is_empty() {
            check_schedule_terminal(t, w, &m, env, ctx, &mut failures);
            continue;
        }
        if d >= depth {
            failures.push(format!("model own={:?}: depth bound hit", w.own));
            continue;
        }
        for i in runnable {
            let mut next = m.clone();
            if fork_policy == ForkPolicy::GiveAll {
                let own = next.threads[i].own.clone();
                next.fork_resources.clear();
                next.fork_resources.push_back(own);
            }
            if let Err(v) = next.step_thread(i) {
                failures.push(format!("model own={:?}: {}", w.own, v));
                continue;
            }
            stack.push((next, d + 1));
        }
    }
    failures
}

/// Checks the postcondition in a terminal machine state.
fn check_schedule_terminal(
    t: &Triple,
    w: &World,
    m: &MonMachine,
    env: &Env,
    ctx: &EvalCtx<'_>,
    failures: &mut Vec<String>,
) {
    let Some(value) = m.main_result().cloned() else {
        failures.push(format!("model own={:?}: no main result", w.own));
        return;
    };
    let mut frame = w.frame.clone();
    for extra in m.threads.iter().skip(1) {
        frame = daenerys_algebra::Ra::op(&frame, &extra.own);
    }
    let final_world = World {
        own: m.main_own().clone(),
        frame,
    };
    let post = t.post.subst(&t.binder, &value);
    if !holds(&post, &final_world, env, 2, ctx) {
        failures.push(format!(
            "model own={:?}: post fails on some schedule (result {})",
            w.own, value
        ));
    }
}

fn run_with_policy(
    machine: &mut MonMachine,
    fuel: usize,
    policy: ForkPolicy,
) -> Result<(), Violation> {
    for _ in 0..fuel {
        let runnable = machine.runnable();
        if runnable.is_empty() {
            return Ok(());
        }
        for i in runnable {
            // Refresh the fork schedule so a GiveAll fork hands over the
            // forking thread's current resource.
            if policy == ForkPolicy::GiveAll {
                let own = machine.threads[i].own.clone();
                machine.fork_resources.clear();
                machine.fork_resources.push_back(own);
            }
            machine.step_thread(i)?;
        }
    }
    if machine.runnable().is_empty() {
        Ok(())
    } else {
        Err(Violation::Stuck("out of fuel".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::*;
    use daenerys_core::{Assert, Term, UniverseSpec};
    use daenerys_heaplang::{Expr, Loc};

    fn uni() -> WorldUniverse {
        UniverseSpec::tiny().build()
    }

    #[test]
    fn store_triple_is_adequate() {
        let tp = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
        let report = validate(tp.triple(), &uni(), 1000, ForkPolicy::Forbid);
        assert!(report.models > 0);
        assert!(report.ok(), "{:?}", report.failures);
    }

    #[test]
    fn bogus_triple_is_caught() {
        // {emp} l <- 1 {x. ⊤} — writing without permission.
        let t = Triple::new(
            Assert::Emp,
            Expr::store(Expr::Val(Val::loc(Loc(0))), Expr::int(1)),
            "x",
            Assert::truth(),
        );
        let report = validate(&t, &uni(), 1000, ForkPolicy::Forbid);
        assert!(report.models > 0);
        assert!(!report.ok());
    }

    #[test]
    fn wrong_post_is_caught() {
        // {l ↦ 0} l <- 1 {x. l ↦ 2} — lies about the final value.
        let t = Triple::new(
            Assert::points_to(Term::loc(Loc(0)), Term::int(0)),
            Expr::store(Expr::Val(Val::loc(Loc(0))), Expr::int(1)),
            "x",
            Assert::points_to(Term::loc(Loc(0)), Term::int(2)),
        );
        let report = validate(&t, &uni(), 1000, ForkPolicy::Forbid);
        assert!(report.models > 0 && !report.ok());
    }
}
