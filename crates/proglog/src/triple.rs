//! Hoare triples of the destabilized program logic.

use daenerys_core::Assert;
use daenerys_heaplang::Expr;
use std::fmt;

/// A Hoare triple `{pre} expr {binder. post}`.
///
/// `post` may mention the result through the logic variable `binder`,
/// and — this being the destabilized logic — may use heap-dependent
/// expressions and permission introspection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Triple {
    /// The precondition.
    pub pre: Assert,
    /// The program.
    pub expr: Expr,
    /// The result binder.
    pub binder: String,
    /// The postcondition (mentions `binder`).
    pub post: Assert,
}

impl Triple {
    /// Creates a triple.
    pub fn new(pre: Assert, expr: Expr, binder: &str, post: Assert) -> Triple {
        Triple {
            pre,
            expr,
            binder: binder.to_string(),
            post,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{ {} }} {} {{ {}. {} }}",
            self.pre, self.expr, self.binder, self.post
        )
    }
}

/// A certified triple: only constructible through the rules in
/// [`crate::rules`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TripleProof {
    triple: Triple,
    rule: &'static str,
    steps: usize,
}

impl TripleProof {
    pub(crate) fn make(triple: Triple, rule: &'static str, steps: usize) -> TripleProof {
        TripleProof {
            triple,
            rule,
            steps,
        }
    }

    /// The certified triple statement.
    pub fn triple(&self) -> &Triple {
        &self.triple
    }

    /// The outermost rule used.
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// Number of rule applications in the derivation.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl fmt::Display for TripleProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}   [{} rule(s)]", self.triple, self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_core::Term;

    #[test]
    fn display_mentions_all_parts() {
        let t = Triple::new(
            Assert::Emp,
            Expr::int(1),
            "v",
            Assert::eq(Term::var("v"), Term::int(1)),
        );
        let s = t.to_string();
        assert!(s.contains("emp") && s.contains("v"));
    }
}
