//! The weakest-precondition rule kernel.
//!
//! Triples are certified through the constructors below; each checks its
//! syntactic side conditions, and the adequacy harness
//! ([`crate::adequacy`]) validates every rule schema by monitored
//! execution over heap models — the executable substitute for the
//! paper's adequacy theorem.
//!
//! The destabilized fingerprints:
//!
//! * the **frame rule** ([`wp_frame`]) carries a stability side
//!   condition — framing an unstable assertion over a program that
//!   interferes with it is unsound, so only syntactically stable frames
//!   are accepted;
//! * the heap axioms offer *heap-dependent postconditions*
//!   ([`wp_load_hd`], [`wp_store_hd`]) in which the postcondition
//!   speaks about `!l` directly, IDF-style.

use crate::triple::{Triple, TripleProof};
use daenerys_core::proof::{Entails, ProofError};
use daenerys_core::{syntactically_stable, Assert, Term};
use daenerys_heaplang::{pure_step, Expr, Loc, Val};

fn reject<T>(rule: &'static str, message: impl Into<String>) -> Result<T, ProofError> {
    Err(ProofError {
        rule,
        message: message.into(),
    })
}

/// `{Q[v/x]} v {x. Q}` — the value rule.
pub fn wp_value(v: Val, binder: &str, post: Assert) -> TripleProof {
    let pre = post.subst(binder, &v);
    TripleProof::make(Triple::new(pre, Expr::Val(v), binder, post), "wp-value", 1)
}

/// Pure step: if `e` pure-steps to the verified program, the triple
/// transfers to `e`.
///
/// # Errors
///
/// Rejects when `e` does not pure-step to the premise's program.
pub fn wp_pure(premise: &TripleProof, e: Expr) -> Result<TripleProof, ProofError> {
    match pure_step(&e) {
        Some(e2) if e2 == premise.triple().expr => Ok(TripleProof::make(
            Triple::new(
                premise.triple().pre.clone(),
                e,
                &premise.triple().binder,
                premise.triple().post.clone(),
            ),
            "wp-pure",
            premise.steps() + 1,
        )),
        Some(e2) => reject(
            "wp-pure",
            format!(
                "expression steps to {}, premise is about {}",
                e2,
                premise.triple().expr
            ),
        ),
        None => reject("wp-pure", "expression does not pure-step"),
    }
}

/// Iterated [`wp_pure`]: runs as many pure steps as possible (at most
/// `fuel`).
///
/// # Errors
///
/// Rejects when the pure normal form differs from the premise's program.
pub fn wp_pure_steps(
    premise: &TripleProof,
    e: Expr,
    fuel: usize,
) -> Result<TripleProof, ProofError> {
    let mut frontier = vec![e.clone()];
    let mut cur = e;
    for _ in 0..fuel {
        match pure_step(&cur) {
            Some(next) => {
                cur = next.clone();
                frontier.push(next);
            }
            None => break,
        }
    }
    if !frontier.contains(&premise.triple().expr) {
        return reject(
            "wp-pure-steps",
            format!(
                "no pure-step prefix reaches the premise program {}",
                premise.triple().expr
            ),
        );
    }
    Ok(TripleProof::make(
        Triple::new(
            premise.triple().pre.clone(),
            frontier[0].clone(),
            &premise.triple().binder,
            premise.triple().post.clone(),
        ),
        "wp-pure-steps",
        premise.steps() + 1,
    ))
}

/// **The destabilized frame rule**: from `{P} e {x. Q}`, conclude
/// `{P ∗ R} e {x. Q ∗ R}` — only for *syntactically stable* `R`.
///
/// # Errors
///
/// Rejects unstable frames (e.g. naked heap-dependent facts), which the
/// program's own steps could invalidate.
pub fn wp_frame(premise: &TripleProof, r: Assert) -> Result<TripleProof, ProofError> {
    if !syntactically_stable(&r) {
        return reject(
            "wp-frame",
            format!("frame {} is not syntactically stable", r),
        );
    }
    let t = premise.triple();
    Ok(TripleProof::make(
        Triple::new(
            Assert::sep(t.pre.clone(), r.clone()),
            t.expr.clone(),
            &t.binder,
            Assert::sep(t.post.clone(), r),
        ),
        "wp-frame",
        premise.steps() + 1,
    ))
}

/// The rule of consequence: from `P' ⊢ P`, `{P} e {x. Q}` and `Q ⊢ Q'`,
/// conclude `{P'} e {x. Q'}`. The entailments come from the
/// `daenerys-core` kernel.
///
/// # Errors
///
/// Rejects when the entailments do not connect to the triple.
pub fn wp_consequence(
    pre_ent: &Entails,
    premise: &TripleProof,
    post_ent: &Entails,
) -> Result<TripleProof, ProofError> {
    let t = premise.triple();
    if pre_ent.rhs() != &t.pre {
        return reject("wp-consequence", "precondition entailment mismatch");
    }
    if post_ent.lhs() != &t.post {
        return reject("wp-consequence", "postcondition entailment mismatch");
    }
    Ok(TripleProof::make(
        Triple::new(
            pre_ent.lhs().clone(),
            t.expr.clone(),
            &t.binder,
            post_ent.rhs().clone(),
        ),
        "wp-consequence",
        premise.steps() + pre_ent.steps() + post_ent.steps() + 1,
    ))
}

/// Allocation: `{emp} ref v {x. x ↦ v}`.
pub fn wp_alloc(v: Val, binder: &str) -> TripleProof {
    let post = Assert::points_to(Term::var(binder), Term::Lit(v.clone()));
    TripleProof::make(
        Triple::new(pre_emp(), Expr::alloc(Expr::Val(v)), binder, post),
        "wp-alloc",
        1,
    )
}

fn pre_emp() -> Assert {
    Assert::Emp
}

/// Load: `{l ↦{dq} v} !l {x. ⌜x = v⌝ ∧ l ↦{dq} v}`.
///
/// # Errors
///
/// Rejects unreadable permissions.
pub fn wp_load(
    l: Loc,
    dq: daenerys_algebra::DFrac,
    v: Val,
    binder: &str,
) -> Result<TripleProof, ProofError> {
    if !dq.allows_read() {
        return reject("wp-load", "permission does not allow reading");
    }
    let pt = Assert::PointsTo(Term::loc(l), dq, Term::Lit(v.clone()));
    let post = Assert::and(Assert::eq(Term::var(binder), Term::Lit(v)), pt.clone());
    Ok(TripleProof::make(
        Triple::new(pt, Expr::load(Expr::Val(Val::loc(l))), binder, post),
        "wp-load",
        1,
    ))
}

/// Heap-dependent load: `{l ↦{dq} v} !l {x. ⌜x = !l⌝ ∧ l ↦{dq} v}` — the
/// postcondition reads the heap directly, IDF-style.
///
/// # Errors
///
/// Rejects unreadable permissions.
pub fn wp_load_hd(
    l: Loc,
    dq: daenerys_algebra::DFrac,
    v: Val,
    binder: &str,
) -> Result<TripleProof, ProofError> {
    if !dq.allows_read() {
        return reject("wp-load-hd", "permission does not allow reading");
    }
    let pt = Assert::PointsTo(Term::loc(l), dq, Term::Lit(v));
    let post = Assert::and(
        Assert::eq(Term::var(binder), Term::read(Term::loc(l))),
        pt.clone(),
    );
    Ok(TripleProof::make(
        Triple::new(pt, Expr::load(Expr::Val(Val::loc(l))), binder, post),
        "wp-load-hd",
        1,
    ))
}

/// Store: `{l ↦ v} l <- w {x. ⌜x = ()⌝ ∧ l ↦ w}`.
pub fn wp_store(l: Loc, v: Val, w: Val, binder: &str) -> TripleProof {
    let pre = Assert::points_to(Term::loc(l), Term::Lit(v));
    let post = Assert::and(
        Assert::eq(Term::var(binder), Term::Lit(Val::unit())),
        Assert::points_to(Term::loc(l), Term::Lit(w.clone())),
    );
    TripleProof::make(
        Triple::new(
            pre,
            Expr::store(Expr::Val(Val::loc(l)), Expr::Val(w)),
            binder,
            post,
        ),
        "wp-store",
        1,
    )
}

/// Heap-dependent store: `{l ↦ v} l <- w {x. ⌜!l = w⌝ ∧ l ↦ w}`.
pub fn wp_store_hd(l: Loc, v: Val, w: Val, binder: &str) -> TripleProof {
    let pre = Assert::points_to(Term::loc(l), Term::Lit(v));
    let post = Assert::and(
        Assert::eq(Term::read(Term::loc(l)), Term::Lit(w.clone())),
        Assert::points_to(Term::loc(l), Term::Lit(w.clone())),
    );
    TripleProof::make(
        Triple::new(
            pre,
            Expr::store(Expr::Val(Val::loc(l)), Expr::Val(w)),
            binder,
            post,
        ),
        "wp-store-hd",
        1,
    )
}

/// Successful CAS: `{l ↦ v} cas(l, v, w) {x. ⌜x = true⌝ ∧ l ↦ w}`.
///
/// # Errors
///
/// Rejects non-comparable expected values.
pub fn wp_cas_suc(l: Loc, v: Val, w: Val, binder: &str) -> Result<TripleProof, ProofError> {
    if !v.is_comparable() {
        return reject("wp-cas-suc", "expected value is not comparable");
    }
    let pre = Assert::points_to(Term::loc(l), Term::Lit(v.clone()));
    let post = Assert::and(
        Assert::eq(Term::var(binder), Term::Lit(Val::bool(true))),
        Assert::points_to(Term::loc(l), Term::Lit(w.clone())),
    );
    Ok(TripleProof::make(
        Triple::new(
            pre,
            Expr::cas(Expr::Val(Val::loc(l)), Expr::Val(v), Expr::Val(w)),
            binder,
            post,
        ),
        "wp-cas-suc",
        1,
    ))
}

/// Failing CAS: `{l ↦ v} cas(l, v', w) {x. ⌜x = false⌝ ∧ l ↦ v}` for
/// `v ≠ v'`.
///
/// # Errors
///
/// Rejects equal or non-comparable values.
pub fn wp_cas_fail(
    l: Loc,
    v: Val,
    expected: Val,
    w: Val,
    binder: &str,
) -> Result<TripleProof, ProofError> {
    if !expected.is_comparable() || !v.is_comparable() {
        return reject("wp-cas-fail", "values are not comparable");
    }
    if v == expected {
        return reject("wp-cas-fail", "values are equal; the CAS would succeed");
    }
    let pre = Assert::points_to(Term::loc(l), Term::Lit(v.clone()));
    let post = Assert::and(
        Assert::eq(Term::var(binder), Term::Lit(Val::bool(false))),
        pre.clone(),
    );
    Ok(TripleProof::make(
        Triple::new(
            pre,
            Expr::cas(Expr::Val(Val::loc(l)), Expr::Val(expected), Expr::Val(w)),
            binder,
            post,
        ),
        "wp-cas-fail",
        1,
    ))
}

/// Fetch-and-add: `{l ↦ n} faa(l, d) {x. ⌜x = n⌝ ∧ l ↦ (n + d)}`.
pub fn wp_faa(l: Loc, n: i64, d: i64, binder: &str) -> TripleProof {
    let pre = Assert::points_to(Term::loc(l), Term::int(n));
    let post = Assert::and(
        Assert::eq(Term::var(binder), Term::int(n)),
        Assert::points_to(Term::loc(l), Term::int(n.wrapping_add(d))),
    );
    TripleProof::make(
        Triple::new(
            pre,
            Expr::faa(Expr::Val(Val::loc(l)), Expr::Val(Val::int(d))),
            binder,
            post,
        ),
        "wp-faa",
        1,
    )
}

/// Sequencing: from `{P} e1 {x. Q}` and a continuation triple
/// `{Q[v/x]} e2[v/x] {y. R}` for each value `v` in the *declared result
/// domain*, conclude `{P} let x = e1 in e2 {y. R}`.
///
/// The declared domain must cover every value `e1` can produce; this is
/// what the adequacy harness checks dynamically.
///
/// # Errors
///
/// Rejects when a continuation premise does not match its instance.
pub fn wp_let(
    premise: &TripleProof,
    x: &str,
    e2: Expr,
    continuations: &[(Val, TripleProof)],
) -> Result<TripleProof, ProofError> {
    let t1 = premise.triple();
    let mut steps = premise.steps() + 1;
    let (result_binder, final_post) = match continuations.first() {
        Some((_, k)) => (k.triple().binder.clone(), k.triple().post.clone()),
        None => return reject("wp-let", "at least one continuation required"),
    };
    for (v, k) in continuations {
        let kt = k.triple();
        if kt.pre != t1.post.subst(&t1.binder, v) {
            return reject(
                "wp-let",
                format!("continuation precondition for {} mismatch", v),
            );
        }
        if kt.expr != e2.subst(x, v) {
            return reject("wp-let", format!("continuation program for {} mismatch", v));
        }
        if kt.binder != result_binder || kt.post != final_post {
            return reject("wp-let", "continuations disagree on the postcondition");
        }
        steps += k.steps();
    }
    Ok(TripleProof::make(
        Triple::new(
            t1.pre.clone(),
            Expr::let_(x, t1.expr.clone(), e2),
            &result_binder,
            final_post,
        ),
        "wp-let",
        steps,
    ))
}

/// Fork: from a child triple `{P} e {_. ⊤}`, conclude
/// `{P} fork e {x. ⌜x = ()⌝}` — the child takes `P` with it.
pub fn wp_fork(child: &TripleProof) -> TripleProof {
    let t = child.triple();
    TripleProof::make(
        Triple::new(
            t.pre.clone(),
            Expr::fork(t.expr.clone()),
            "x",
            Assert::eq(Term::var("x"), Term::Lit(Val::unit())),
        ),
        "wp-fork",
        child.steps() + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_algebra::{DFrac, Q};

    #[test]
    fn value_rule_substitutes() {
        let post = Assert::eq(Term::var("x"), Term::int(5));
        let tp = wp_value(Val::int(5), "x", post);
        assert_eq!(tp.triple().pre, Assert::eq(Term::int(5), Term::int(5)));
    }

    #[test]
    fn frame_rule_rejects_unstable() {
        let tp = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
        let stable = Assert::points_to(Term::loc(Loc(1)), Term::int(7));
        assert!(wp_frame(&tp, stable).is_ok());
        let unstable = Assert::read_eq(Term::loc(Loc(1)), Term::int(7));
        assert!(wp_frame(&tp, unstable).is_err());
    }

    #[test]
    fn pure_rule_checks_reduction() {
        let v = wp_value(Val::int(1), "x", Assert::truth());
        // A single beta step: the function is already a closure value.
        let id = Val::Rec {
            f: daenerys_heaplang::Binder::Anon,
            x: daenerys_heaplang::Binder::from("y"),
            body: Box::new(Expr::var("y")),
        };
        let e = Expr::app(Expr::Val(id.clone()), Expr::int(1));
        assert!(wp_pure(&v, e).is_ok());
        let wrong = Expr::app(Expr::Val(id), Expr::int(2));
        assert!(wp_pure(&v, wrong).is_err());
        // Multi-step chains go through wp_pure_steps (fun-literals first
        // reduce to closure values).
        let chain = Expr::app(Expr::lam("y", Expr::var("y")), Expr::int(1));
        assert!(wp_pure(&v, chain.clone()).is_err());
        assert!(wp_pure_steps(&v, chain, 16).is_ok());
    }

    #[test]
    fn cas_rules_check_comparability() {
        assert!(wp_cas_suc(Loc(0), Val::int(0), Val::int(1), "x").is_ok());
        let pair = Val::Pair(Box::new(Val::int(0)), Box::new(Val::int(0)));
        assert!(wp_cas_suc(Loc(0), pair, Val::int(1), "x").is_err());
        assert!(wp_cas_fail(Loc(0), Val::int(0), Val::int(0), Val::int(1), "x").is_err());
        assert!(wp_cas_fail(Loc(0), Val::int(0), Val::int(5), Val::int(1), "x").is_ok());
    }

    #[test]
    fn load_requires_read_permission() {
        assert!(wp_load(Loc(0), DFrac::own(Q::HALF), Val::int(1), "x").is_ok());
        assert!(wp_load(Loc(0), DFrac::own(Q::ZERO), Val::int(1), "x").is_err());
    }

    #[test]
    fn let_rule_checks_continuations() {
        // {emp} ref 1 {l. l ↦ 1}, then store through it.
        let alloc = wp_alloc(Val::int(1), "l");
        // Continuations for every location the universe can produce are
        // impossible to enumerate; for the kernel check one suffices per
        // declared value.
        let l0 = Val::loc(Loc(0));
        let k = wp_store(Loc(0), Val::int(1), Val::int(2), "y");
        let e2 = Expr::store(Expr::var("l"), Expr::int(2));
        let seq = wp_let(&alloc, "l", e2.clone(), &[(l0, k)]).unwrap();
        assert_eq!(seq.rule(), "wp-let");
        // A mismatched continuation is rejected.
        let bad = wp_store(Loc(1), Val::int(1), Val::int(2), "y");
        assert!(wp_let(&alloc, "l", e2, &[(Val::loc(Loc(0)), bad)]).is_err());
    }

    #[test]
    fn fork_rule_shape() {
        let child = wp_store(Loc(0), Val::int(0), Val::int(1), "x");
        let f = wp_fork(&child);
        assert!(matches!(f.triple().expr, Expr::Fork(_)));
        assert_eq!(f.triple().pre, child.triple().pre);
    }
}
