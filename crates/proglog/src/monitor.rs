//! Permission-monitored execution.
//!
//! The adequacy theorem of a separation logic says a verified program
//! only touches memory it owns. Our executable substitute *enforces*
//! that claim at runtime: a [`MonMachine`] runs HeapLang threads while
//! tracking each thread's owned resource ([`Res`]) and flags any heap
//! access not covered by permission:
//!
//! * loads need readable permission (a positive fraction or a discarded
//!   witness);
//! * stores, `cas` and `faa` need the full, undiscarded fraction;
//! * allocation mints a fresh fully-owned chunk;
//! * `fork` transfers an explicitly scheduled resource to the child.
//!
//! A verified triple whose monitored run raises a violation is unsound —
//! this is the oracle the adequacy test suite uses.

use daenerys_algebra::{DFrac, Ra};
use daenerys_core::Res;
use daenerys_heaplang::{step, Expr, Heap, Loc, StepError, StepKind, Val};
use std::collections::VecDeque;
use std::fmt;

/// A permission violation discovered during monitored execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A read without readable permission.
    UnreadableLoad(Loc),
    /// A write (store/cas/faa) without the full permission.
    UnwritableStore(Loc),
    /// A fork occurred but no child resource was scheduled.
    MissingForkResource,
    /// The scheduled child resource is not part of the parent's.
    ForkResourceNotOwned,
    /// A thread got stuck (runtime error).
    Stuck(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnreadableLoad(l) => write!(f, "load of {} without permission", l),
            Violation::UnwritableStore(l) => {
                write!(f, "write to {} without full permission", l)
            }
            Violation::MissingForkResource => write!(f, "fork without a scheduled resource"),
            Violation::ForkResourceNotOwned => {
                write!(f, "fork resource not owned by the parent")
            }
            Violation::Stuck(m) => write!(f, "stuck: {}", m),
        }
    }
}

impl std::error::Error for Violation {}

/// One monitored thread: expression plus owned resource.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MonThread {
    /// The thread's remaining program.
    pub expr: Expr,
    /// The resource the thread currently owns.
    pub own: Res,
}

/// A permission-monitored machine.
#[derive(Clone, Debug)]
pub struct MonMachine {
    /// All threads (index 0 is main).
    pub threads: Vec<MonThread>,
    /// The physical heap.
    pub heap: Heap,
    /// Resources scheduled for the next forks, in order.
    pub fork_resources: VecDeque<Res>,
}

/// Locations an expression's *next step* will access, classified.
fn next_heap_access(e: &Expr) -> Option<(Loc, bool)> {
    // Returns (loc, is_write) when the next redex is a heap access on a
    // location value. Mirrors the evaluation order of `step`.
    fn val_loc(e: &Expr) -> Option<Loc> {
        e.as_val().and_then(Val::as_loc)
    }
    match e {
        Expr::Load(inner) if inner.as_val().is_some() => val_loc(inner).map(|l| (l, false)),
        Expr::Store(l, v) if l.as_val().is_some() && v.as_val().is_some() => {
            val_loc(l).map(|l| (l, true))
        }
        Expr::Cas(l, a, b)
            if l.as_val().is_some() && a.as_val().is_some() && b.as_val().is_some() =>
        {
            val_loc(l).map(|l| (l, true))
        }
        Expr::Faa(l, v) if l.as_val().is_some() && v.as_val().is_some() => {
            val_loc(l).map(|l| (l, true))
        }
        // Descend into the active position, in evaluation order.
        Expr::App(f, a) => {
            if f.as_val().is_none() {
                next_heap_access(f)
            } else {
                next_heap_access(a)
            }
        }
        Expr::Let(_, e1, _) => next_heap_access(e1),
        Expr::UnOp(_, e1)
        | Expr::Fst(e1)
        | Expr::Snd(e1)
        | Expr::InjL(e1)
        | Expr::InjR(e1)
        | Expr::Alloc(e1)
        | Expr::Load(e1) => next_heap_access(e1),
        Expr::BinOp(_, a, b) | Expr::Pair(a, b) | Expr::Store(a, b) | Expr::Faa(a, b) => {
            if a.as_val().is_none() {
                next_heap_access(a)
            } else {
                next_heap_access(b)
            }
        }
        Expr::If(c, _, _) => next_heap_access(c),
        Expr::Case(s, ..) => next_heap_access(s),
        Expr::Cas(a, b, c) => {
            if a.as_val().is_none() {
                next_heap_access(a)
            } else if b.as_val().is_none() {
                next_heap_access(b)
            } else {
                next_heap_access(c)
            }
        }
        _ => None,
    }
}

impl MonMachine {
    /// Creates a monitored machine for a single main thread.
    pub fn new(expr: Expr, own: Res, heap: Heap) -> MonMachine {
        MonMachine {
            threads: vec![MonThread { expr, own }],
            heap,
            fork_resources: VecDeque::new(),
        }
    }

    /// Schedules resources to hand to forked children, in fork order.
    pub fn with_fork_resources(mut self, rs: impl IntoIterator<Item = Res>) -> MonMachine {
        self.fork_resources = rs.into_iter().collect();
        self
    }

    /// Indices of running threads.
    pub fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&i| self.threads[i].expr.as_val().is_none())
            .collect()
    }

    /// Steps thread `i`, enforcing permissions.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] when the step would exceed the thread's
    /// permissions or the thread is stuck.
    pub fn step_thread(&mut self, i: usize) -> Result<(), Violation> {
        let own = self.threads[i].own.clone();
        // Pre-check the imminent heap access against the thread's own.
        if let Some((l, is_write)) = next_heap_access(&self.threads[i].expr) {
            if is_write {
                if !matches!(own.heap.get(&l), Some((dq, _)) if dq.allows_write()) {
                    return Err(Violation::UnwritableStore(l));
                }
            } else if !own.reads_at(l) {
                return Err(Violation::UnreadableLoad(l));
            }
        }
        let expr = self.threads[i].expr.clone();
        let keys_before: Vec<Loc> = self.heap.iter().map(|(l, _)| *l).collect();
        match step(&expr, &mut self.heap) {
            Ok(out) => {
                // Track ownership effects.
                match out.kind {
                    StepKind::Heap => {
                        self.sync_ownership(i, &expr, &keys_before);
                    }
                    StepKind::Fork => {
                        let child_own = match self.fork_resources.pop_front() {
                            Some(r) => r,
                            None => return Err(Violation::MissingForkResource),
                        };
                        if !child_own.included_in(&self.threads[i].own) {
                            return Err(Violation::ForkResourceNotOwned);
                        }
                        let parent_own = subtract(&self.threads[i].own, &child_own)
                            .ok_or(Violation::ForkResourceNotOwned)?;
                        self.threads[i].own = parent_own;
                        for forked in &out.forked {
                            self.threads.push(MonThread {
                                expr: forked.clone(),
                                own: child_own.clone(),
                            });
                        }
                    }
                    StepKind::Pure => {}
                }
                self.threads[i].expr = out.expr;
                Ok(())
            }
            Err(StepError::IsValue) => Ok(()),
            Err(StepError::Stuck(m)) => Err(Violation::Stuck(m)),
        }
    }

    /// After a heap step, reconcile the stepping thread's owned chunks
    /// with the physical heap (new allocations become fully owned; the
    /// written value updates the owned agreement).
    fn sync_ownership(&mut self, i: usize, before: &Expr, keys_before: &[Loc]) {
        // Allocation: fresh locations become fully owned by the
        // allocating thread.
        let fresh: Vec<Loc> = self
            .heap
            .iter()
            .map(|(l, _)| *l)
            .filter(|l| !keys_before.contains(l))
            .collect();
        for l in fresh {
            let v = self.heap.get(l).cloned().expect("fresh loc present");
            self.threads[i].own = self.threads[i].own.op(&Res::points_to(l, DFrac::FULL, v));
        }
        // Write: refresh the agreed value of the touched location.
        if let Some((l, true)) = next_heap_access(before) {
            if let Some(v) = self.heap.get(l).cloned() {
                let mut own = self.threads[i].own.clone();
                if let Some((dq, _)) = own.heap.get(&l).cloned() {
                    own.heap.insert(l, (dq, daenerys_algebra::Agree::new(v)));
                }
                self.threads[i].own = own;
            }
        }
    }

    /// Runs all threads round-robin to completion.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Violation`]; `Stuck` wraps fuel exhaustion.
    pub fn run(&mut self, fuel: usize) -> Result<(), Violation> {
        for _ in 0..fuel {
            let runnable = self.runnable();
            if runnable.is_empty() {
                return Ok(());
            }
            for i in runnable {
                self.step_thread(i)?;
            }
        }
        if self.runnable().is_empty() {
            Ok(())
        } else {
            Err(Violation::Stuck("out of fuel".into()))
        }
    }

    /// The main thread's result value, if finished.
    pub fn main_result(&self) -> Option<&Val> {
        self.threads[0].expr.as_val()
    }

    /// The main thread's final owned resource.
    pub fn main_own(&self) -> &Res {
        &self.threads[0].own
    }
}

/// Computes `whole ⊖ part` for resources where every `part` chunk is
/// included in `whole` (heap cells by fraction subtraction, ghost cells
/// by exact match removal or counter subtraction). Returns `None` when
/// the subtraction is not expressible.
pub fn subtract(whole: &Res, part: &Res) -> Option<Res> {
    let mut out = whole.clone();
    for (l, (dq_p, ag_p)) in part.heap.iter() {
        let (dq_w, ag_w) = out.heap.get(l)?.clone();
        if ag_w != *ag_p {
            return None;
        }
        let remaining = dfrac_sub(dq_w, *dq_p)?;
        match remaining {
            None => {
                out.heap.remove(l);
            }
            Some(dq) => {
                out.heap.insert(*l, (dq, ag_w));
            }
        }
    }
    for (g, v_p) in part.ghost.iter() {
        let v_w = out.ghost.get(g)?.clone();
        if v_w == *v_p {
            out.ghost.remove(g);
        } else {
            let rem = ghost_sub(&v_w, v_p)?;
            out.ghost.insert(*g, rem);
        }
    }
    Some(out)
}

/// `a ⊖ b` on discardable fractions; `Ok(None)` means nothing remains.
#[allow(clippy::option_option)]
fn dfrac_sub(a: DFrac, b: DFrac) -> Option<Option<DFrac>> {
    use DFrac::*;
    match (a, b) {
        (x, y) if x == y => Some(None),
        (Own(x), Own(y)) if y < x => Some(Some(Own(x - y))),
        (Both(x), Own(y)) if y < x => Some(Some(Both(x - y))),
        (Both(x), Own(y)) if y == x => Some(Some(Discarded)),
        (Both(x), Discarded) => Some(Some(Own(x))),
        (Both(x), Both(y)) if y < x => Some(Some(Own(x - y))),
        // Discarded is duplicable: subtracting it can leave it.
        (Discarded, Discarded) => Some(None),
        _ => None,
    }
}

fn ghost_sub(
    a: &daenerys_core::GhostVal,
    b: &daenerys_core::GhostVal,
) -> Option<daenerys_core::GhostVal> {
    use daenerys_core::GhostVal::*;
    match (a, b) {
        (Frac(x), Frac(y)) if y.amount() < x.amount() => {
            Some(Frac(daenerys_algebra::Frac::new(x.amount() - y.amount())))
        }
        (AuthNat(x), AuthNat(y)) => {
            // Subtract fragments; the authority may not be split off.
            if y.authority().is_some() {
                return None;
            }
            let fx = x.fragment().0;
            let fy = y.fragment().0;
            if fy > fx {
                return None;
            }
            match x.authority() {
                Some(a) => Some(AuthNat(daenerys_algebra::Auth::both(
                    *a,
                    daenerys_algebra::SumNat(fx - fy),
                ))),
                None => Some(AuthNat(daenerys_algebra::Auth::frag(
                    daenerys_algebra::SumNat(fx - fy),
                ))),
            }
        }
        // Duplicable elements subtract to themselves.
        (AgreeVal(x), AgreeVal(y)) if x == y => Some(AgreeVal(x.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_algebra::Q;
    use daenerys_heaplang::parse;

    fn full(l: u64, v: i64) -> Res {
        Res::points_to(Loc(l), DFrac::FULL, Val::int(v))
    }

    fn heap_with(cells: &[(u64, i64)]) -> Heap {
        let mut h = Heap::new();
        for (_, v) in cells {
            h.alloc(Val::int(*v));
        }
        h
    }

    #[test]
    fn owned_write_succeeds() {
        let prog = parse("l <- !l + 1").unwrap().subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(prog, full(0, 5), heap_with(&[(0, 5)]));
        m.run(1000).unwrap();
        assert_eq!(m.heap.get(Loc(0)), Some(&Val::int(6)));
        // Ownership followed the write.
        assert_eq!(m.main_own().value_at(Loc(0)), Some(&Val::int(6)));
    }

    #[test]
    fn unowned_read_is_flagged() {
        let prog = parse("!l").unwrap().subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(prog, Res::empty(), heap_with(&[(0, 5)]));
        assert_eq!(m.run(1000), Err(Violation::UnreadableLoad(Loc(0))));
    }

    #[test]
    fn half_permission_reads_but_does_not_write() {
        let half = Res::points_to(Loc(0), DFrac::own(Q::HALF), Val::int(5));
        let read = parse("!l").unwrap().subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(read, half.clone(), heap_with(&[(0, 5)]));
        m.run(1000).unwrap();
        assert_eq!(m.main_result(), Some(&Val::int(5)));

        let write = parse("l <- 9").unwrap().subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(write, half, heap_with(&[(0, 5)]));
        assert_eq!(m.run(1000), Err(Violation::UnwritableStore(Loc(0))));
    }

    #[test]
    fn allocation_mints_ownership() {
        let prog = parse("let l = ref 7 in l <- !l + 1; !l").unwrap();
        let mut m = MonMachine::new(prog, Res::empty(), Heap::new());
        m.run(1000).unwrap();
        assert_eq!(m.main_result(), Some(&Val::int(8)));
        assert_eq!(m.main_own().perm_at(Loc(0)), Q::ONE);
    }

    #[test]
    fn fork_transfers_resources() {
        let prog = parse("fork (l <- 1); ()")
            .unwrap()
            .subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(prog, full(0, 0), heap_with(&[(0, 0)]))
            .with_fork_resources([full(0, 0)]);
        m.run(1000).unwrap();
        assert_eq!(m.heap.get(Loc(0)), Some(&Val::int(1)));
        // Parent gave the chunk away.
        assert_eq!(m.main_own().perm_at(Loc(0)), Q::ZERO);
    }

    #[test]
    fn fork_without_resources_is_flagged() {
        let prog = parse("fork (l <- 1); ()")
            .unwrap()
            .subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(prog, full(0, 0), heap_with(&[(0, 0)]));
        assert_eq!(m.run(1000), Err(Violation::MissingForkResource));
    }

    #[test]
    fn fork_cannot_steal() {
        let prog = parse("fork (l <- 1); ()")
            .unwrap()
            .subst("l", &Val::loc(Loc(0)));
        let mut m = MonMachine::new(prog, Res::empty(), heap_with(&[(0, 0)]))
            .with_fork_resources([full(0, 0)]);
        assert_eq!(m.run(1000), Err(Violation::ForkResourceNotOwned));
    }

    #[test]
    fn subtract_fractions() {
        let whole = Res::points_to(Loc(0), DFrac::FULL, Val::int(1));
        let half = Res::points_to(Loc(0), DFrac::own(Q::HALF), Val::int(1));
        let rest = subtract(&whole, &half).unwrap();
        assert_eq!(rest.perm_at(Loc(0)), Q::HALF);
        assert_eq!(subtract(&whole, &whole).unwrap(), Res::empty());
        assert!(subtract(&half, &whole).is_none());
    }
}
