//! # `daenerys-proglog` — the program logic over HeapLang
//!
//! Hoare triples in the destabilized logic, validated by *monitored
//! execution*: the adequacy theorem of the paper becomes a runtime
//! oracle that checks every heap access of a verified program against
//! the permissions its proof claimed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adequacy;
pub mod monitor;
pub mod rules;
pub mod triple;

pub use adequacy::{
    heap_of_world, validate, validate_exhaustive, validate_exhaustive_with, AdequacyReport,
    ForkPolicy,
};
pub use monitor::{subtract, MonMachine, MonThread, Violation};
pub use triple::{Triple, TripleProof};
