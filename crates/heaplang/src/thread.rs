//! Thread-pool configurations: the interleaving semantics of HeapLang.
//!
//! A [`Machine`] is a pool of thread expressions plus a shared heap.
//! Thread 0 is the main thread; its value is the result of the program.

use crate::step::{step, Heap, StepError, StepKind};
use crate::syntax::{Expr, Val};

/// The status of one thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ThreadStatus {
    /// Still reducible.
    Running,
    /// Terminated with a value.
    Done(Val),
    /// Irrecoverably stuck (runtime error); payload is the reason.
    Stuck(String),
}

/// A machine configuration: all threads plus the shared heap.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Machine {
    /// Thread expressions, in spawn order. Index 0 is the main thread.
    threads: Vec<Expr>,
    /// Cached status per thread.
    status: Vec<ThreadStatus>,
    /// The shared heap.
    pub heap: Heap,
}

impl Machine {
    /// Creates a machine with a single main thread.
    pub fn new(main: Expr) -> Machine {
        let status = vec![status_of(&main)];
        Machine {
            threads: vec![main],
            status,
            heap: Heap::new(),
        }
    }

    /// Creates a machine with a main thread and a pre-populated heap.
    pub fn with_heap(main: Expr, heap: Heap) -> Machine {
        let status = vec![status_of(&main)];
        Machine {
            threads: vec![main],
            status,
            heap,
        }
    }

    /// Number of threads (running or not).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The status of thread `i`.
    pub fn status(&self, i: usize) -> &ThreadStatus {
        &self.status[i]
    }

    /// The current expression of thread `i`.
    pub fn thread(&self, i: usize) -> &Expr {
        &self.threads[i]
    }

    /// Indices of threads that can still step.
    pub fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&i| self.status[i] == ThreadStatus::Running)
            .collect()
    }

    /// Whether no thread can step (all done or stuck).
    pub fn is_terminal(&self) -> bool {
        self.runnable().is_empty()
    }

    /// The main thread's final value, if it terminated.
    pub fn main_result(&self) -> Option<&Val> {
        match &self.status[0] {
            ThreadStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Whether any thread is stuck.
    pub fn any_stuck(&self) -> bool {
        self.status
            .iter()
            .any(|s| matches!(s, ThreadStatus::Stuck(_)))
    }

    /// Steps thread `i` once. Forked threads are appended to the pool.
    ///
    /// Returns the kind of step taken, or `None` if the thread could not
    /// step (it was already done or became stuck; the status records
    /// which).
    pub fn step_thread(&mut self, i: usize) -> Option<StepKind> {
        if self.status[i] != ThreadStatus::Running {
            return None;
        }
        match step(&self.threads[i].clone(), &mut self.heap) {
            Ok(out) => {
                self.threads[i] = out.expr;
                self.status[i] = status_of(&self.threads[i]);
                for forked in out.forked {
                    self.status.push(status_of(&forked));
                    self.threads.push(forked);
                }
                Some(out.kind)
            }
            Err(StepError::IsValue) => {
                // Unreachable given the Running status, but harmless.
                self.status[i] = status_of(&self.threads[i]);
                None
            }
            Err(StepError::Stuck(why)) => {
                self.status[i] = ThreadStatus::Stuck(why);
                None
            }
        }
    }
}

fn status_of(e: &Expr) -> ThreadStatus {
    match e.as_val() {
        Some(v) => ThreadStatus::Done(v.clone()),
        None => ThreadStatus::Running,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::BinOp;

    #[test]
    fn single_thread_runs_to_value() {
        let mut m = Machine::new(Expr::binop(BinOp::Add, Expr::int(1), Expr::int(2)));
        while !m.is_terminal() {
            m.step_thread(0);
        }
        assert_eq!(m.main_result(), Some(&Val::int(3)));
    }

    #[test]
    fn fork_grows_pool() {
        let prog = Expr::seq(
            Expr::fork(Expr::binop(BinOp::Add, Expr::int(1), Expr::int(1))),
            Expr::int(0),
        );
        let mut m = Machine::new(prog);
        while !m.is_terminal() {
            let r = m.runnable();
            m.step_thread(r[0]);
        }
        assert_eq!(m.thread_count(), 2);
        assert_eq!(m.main_result(), Some(&Val::int(0)));
        assert_eq!(m.status(1), &ThreadStatus::Done(Val::int(2)));
    }

    #[test]
    fn stuck_thread_recorded() {
        let mut m = Machine::new(Expr::app(Expr::int(1), Expr::int(2)));
        assert_eq!(m.step_thread(0), None);
        assert!(m.any_stuck());
        assert!(m.is_terminal());
        assert_eq!(m.main_result(), None);
    }

    #[test]
    fn shared_heap_between_threads() {
        // l := ref 0; fork (l <- 1); wait by spinning is racy — instead
        // just check the forked thread can see the location.
        let prog = Expr::let_(
            "l",
            Expr::alloc(Expr::int(0)),
            Expr::seq(
                Expr::fork(Expr::store(Expr::var("l"), Expr::int(1))),
                Expr::load(Expr::var("l")),
            ),
        );
        let mut m = Machine::new(prog);
        // Run main to completion first, then the forked thread.
        while m.status(0) == &ThreadStatus::Running {
            m.step_thread(0);
        }
        assert_eq!(m.main_result(), Some(&Val::int(0)));
        while !m.is_terminal() {
            let r = m.runnable();
            m.step_thread(r[0]);
        }
        // Forked write landed in the shared heap.
        let l = crate::syntax::Loc(0);
        assert_eq!(m.heap.get(l), Some(&Val::int(1)));
    }
}
