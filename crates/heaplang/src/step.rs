//! Small-step operational semantics of HeapLang.
//!
//! A single thread steps by locating the leftmost-innermost redex
//! (evaluation is left-to-right, call-by-value) and reducing it. Steps
//! are classified as pure, heap-accessing, or fork — the program logic
//! in `daenerys-proglog` keys its rules on this classification.

use crate::syntax::{BinOp, Binder, Expr, Lit, Loc, UnOp, Val};
use std::collections::BTreeMap;
use std::fmt;

/// The physical heap: a finite map from locations to values plus an
/// allocation counter.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Heap {
    cells: BTreeMap<Loc, Val>,
    next: u64,
}

impl Heap {
    /// The empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates a fresh cell holding `v` and returns its location.
    pub fn alloc(&mut self, v: Val) -> Loc {
        let l = Loc(self.next);
        self.next += 1;
        self.cells.insert(l, v);
        l
    }

    /// Reads a cell.
    pub fn get(&self, l: Loc) -> Option<&Val> {
        self.cells.get(&l)
    }

    /// Overwrites an existing cell; returns `false` if absent.
    pub fn set(&mut self, l: Loc, v: Val) -> bool {
        match self.cells.get_mut(&l) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Whether the location is allocated.
    pub fn contains(&self, l: Loc) -> bool {
        self.cells.contains_key(&l)
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over cells in location order.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, &Val)> {
        self.cells.iter()
    }

    /// Inserts a cell at a *specific* location, bumping the allocation
    /// counter past it. Intended for test harnesses and verifiers that
    /// need to materialize a heap model; programs should allocate
    /// through `ref`.
    pub fn insert(&mut self, l: Loc, v: Val) {
        self.next = self.next.max(l.0 + 1);
        self.cells.insert(l, v);
    }
}

/// Classification of a reduction step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// Deterministic, heap-independent (beta, let, if, projections, …).
    Pure,
    /// Allocates, reads, or writes the heap.
    Heap,
    /// Spawns a thread.
    Fork,
}

/// The result of one successful step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepOutcome {
    /// The reduced expression.
    pub expr: Expr,
    /// Threads forked by this step (at most one).
    pub forked: Vec<Expr>,
    /// What kind of step it was.
    pub kind: StepKind,
}

impl StepOutcome {
    fn pure(expr: Expr) -> StepOutcome {
        StepOutcome {
            expr,
            forked: Vec::new(),
            kind: StepKind::Pure,
        }
    }

    fn heap(expr: Expr) -> StepOutcome {
        StepOutcome {
            expr,
            forked: Vec::new(),
            kind: StepKind::Heap,
        }
    }
}

/// Why an expression failed to step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepError {
    /// The expression is already a value.
    IsValue,
    /// The expression is stuck (a runtime type error, unbound variable,
    /// invalid heap access, …). The payload describes the reason.
    Stuck(String),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::IsValue => write!(f, "expression is a value"),
            StepError::Stuck(why) => write!(f, "stuck: {}", why),
        }
    }
}

impl std::error::Error for StepError {}

fn stuck<T>(why: impl Into<String>) -> Result<T, StepError> {
    Err(StepError::Stuck(why.into()))
}

fn eval_unop(op: UnOp, v: &Val) -> Result<Val, StepError> {
    match (op, v) {
        (UnOp::Neg, Val::Lit(Lit::Int(n))) => Ok(Val::int(-n)),
        (UnOp::Not, Val::Lit(Lit::Bool(b))) => Ok(Val::bool(!b)),
        _ => stuck(format!("unary operator {:?} applied to {:?}", op, v)),
    }
}

fn eval_binop(op: BinOp, a: &Val, b: &Val) -> Result<Val, StepError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Rem | Lt | Le | Gt | Ge => {
            let (x, y) = match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => (x, y),
                _ => return stuck(format!("integer operator {:?} on {:?}, {:?}", op, a, b)),
            };
            Ok(match op {
                Add => Val::int(x.wrapping_add(y)),
                Sub => Val::int(x.wrapping_sub(y)),
                Mul => Val::int(x.wrapping_mul(y)),
                Div => {
                    if y == 0 {
                        return stuck("division by zero");
                    }
                    Val::int(x.wrapping_div(y))
                }
                Rem => {
                    if y == 0 {
                        return stuck("remainder by zero");
                    }
                    Val::int(x.wrapping_rem(y))
                }
                Lt => Val::bool(x < y),
                Le => Val::bool(x <= y),
                Gt => Val::bool(x > y),
                Ge => Val::bool(x >= y),
                _ => unreachable!(),
            })
        }
        Eq | Ne => {
            if !a.is_comparable() || !b.is_comparable() {
                return stuck("equality on non-comparable values");
            }
            let eq = a == b;
            Ok(Val::bool(if op == Eq { eq } else { !eq }))
        }
        And | Or => match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok(Val::bool(if op == And { x && y } else { x || y })),
            _ => stuck("boolean operator on non-booleans"),
        },
    }
}

/// Performs one small step of `e` against `heap`.
///
/// # Errors
///
/// Returns [`StepError::IsValue`] if `e` is a value and
/// [`StepError::Stuck`] if the redex is a runtime type error, an access
/// to an unallocated location, or an unbound variable.
pub fn step(e: &Expr, heap: &mut Heap) -> Result<StepOutcome, StepError> {
    // Helper: step a subexpression and rebuild the context.
    macro_rules! ctx {
        ($sub:expr, $rebuild:expr) => {{
            let out = step($sub, heap)?;
            let rebuilt = $rebuild(out.expr);
            return Ok(StepOutcome {
                expr: rebuilt,
                forked: out.forked,
                kind: out.kind,
            });
        }};
    }

    match e {
        Expr::Val(_) => Err(StepError::IsValue),
        Expr::Var(x) => stuck(format!("unbound variable {}", x)),

        Expr::Rec { f, x, body } => Ok(StepOutcome::pure(Expr::Val(Val::Rec {
            f: f.clone(),
            x: x.clone(),
            body: body.clone(),
        }))),

        Expr::App(f, a) => {
            if f.as_val().is_none() {
                ctx!(f, |e2| Expr::App(Box::new(e2), a.clone()));
            }
            if a.as_val().is_none() {
                ctx!(a, |e2| Expr::App(f.clone(), Box::new(e2)));
            }
            let fv = f.as_val().unwrap();
            let av = a.as_val().unwrap();
            match fv {
                Val::Rec { f: fb, x: xb, body } => {
                    let body1 = body.subst_binder(xb, av);
                    // Tie the recursive knot: substitute the closure for f.
                    let clo = Val::Rec {
                        f: fb.clone(),
                        x: xb.clone(),
                        body: body.clone(),
                    };
                    let body2 = match fb {
                        Binder::Anon => body1,
                        Binder::Named(name) => body1.subst(name, &clo),
                    };
                    Ok(StepOutcome::pure(body2))
                }
                _ => stuck(format!("applied non-function {:?}", fv)),
            }
        }

        Expr::Let(b, e1, e2) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Let(b.clone(), Box::new(n), e2.clone()));
            }
            let v = e1.as_val().unwrap();
            Ok(StepOutcome::pure(e2.subst_binder(b, v)))
        }

        Expr::UnOp(op, e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::UnOp(*op, Box::new(n)));
            }
            Ok(StepOutcome::pure(Expr::Val(eval_unop(
                *op,
                e1.as_val().unwrap(),
            )?)))
        }

        Expr::BinOp(op, a, b) => {
            if a.as_val().is_none() {
                ctx!(a, |n| Expr::BinOp(*op, Box::new(n), b.clone()));
            }
            if b.as_val().is_none() {
                ctx!(b, |n| Expr::BinOp(*op, a.clone(), Box::new(n)));
            }
            Ok(StepOutcome::pure(Expr::Val(eval_binop(
                *op,
                a.as_val().unwrap(),
                b.as_val().unwrap(),
            )?)))
        }

        Expr::If(c, t, f) => {
            if c.as_val().is_none() {
                ctx!(c, |n| Expr::If(Box::new(n), t.clone(), f.clone()));
            }
            match c.as_val().unwrap().as_bool() {
                Some(true) => Ok(StepOutcome::pure((**t).clone())),
                Some(false) => Ok(StepOutcome::pure((**f).clone())),
                None => stuck("if on non-boolean"),
            }
        }

        Expr::Pair(a, b) => {
            if a.as_val().is_none() {
                ctx!(a, |n| Expr::Pair(Box::new(n), b.clone()));
            }
            if b.as_val().is_none() {
                ctx!(b, |n| Expr::Pair(a.clone(), Box::new(n)));
            }
            Ok(StepOutcome::pure(Expr::Val(Val::Pair(
                Box::new(a.as_val().unwrap().clone()),
                Box::new(b.as_val().unwrap().clone()),
            ))))
        }

        Expr::Fst(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Fst(Box::new(n)));
            }
            match e1.as_val().unwrap() {
                Val::Pair(a, _) => Ok(StepOutcome::pure(Expr::Val((**a).clone()))),
                v => stuck(format!("fst of non-pair {:?}", v)),
            }
        }

        Expr::Snd(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Snd(Box::new(n)));
            }
            match e1.as_val().unwrap() {
                Val::Pair(_, b) => Ok(StepOutcome::pure(Expr::Val((**b).clone()))),
                v => stuck(format!("snd of non-pair {:?}", v)),
            }
        }

        Expr::InjL(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::InjL(Box::new(n)));
            }
            Ok(StepOutcome::pure(Expr::Val(Val::InjL(Box::new(
                e1.as_val().unwrap().clone(),
            )))))
        }

        Expr::InjR(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::InjR(Box::new(n)));
            }
            Ok(StepOutcome::pure(Expr::Val(Val::InjR(Box::new(
                e1.as_val().unwrap().clone(),
            )))))
        }

        Expr::Case(s, bl, el, br, er) => {
            if s.as_val().is_none() {
                ctx!(s, |n| Expr::Case(
                    Box::new(n),
                    bl.clone(),
                    el.clone(),
                    br.clone(),
                    er.clone()
                ));
            }
            match s.as_val().unwrap() {
                Val::InjL(v) => Ok(StepOutcome::pure(el.subst_binder(bl, v))),
                Val::InjR(v) => Ok(StepOutcome::pure(er.subst_binder(br, v))),
                v => stuck(format!("case on non-sum {:?}", v)),
            }
        }

        Expr::Alloc(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Alloc(Box::new(n)));
            }
            let l = heap.alloc(e1.as_val().unwrap().clone());
            Ok(StepOutcome::heap(Expr::Val(Val::loc(l))))
        }

        Expr::Load(e1) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Load(Box::new(n)));
            }
            match e1.as_val().unwrap().as_loc() {
                Some(l) => match heap.get(l) {
                    Some(v) => Ok(StepOutcome::heap(Expr::Val(v.clone()))),
                    None => stuck(format!("load from unallocated {}", l)),
                },
                None => stuck("load from non-location"),
            }
        }

        Expr::Store(e1, e2) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Store(Box::new(n), e2.clone()));
            }
            if e2.as_val().is_none() {
                ctx!(e2, |n| Expr::Store(e1.clone(), Box::new(n)));
            }
            match e1.as_val().unwrap().as_loc() {
                Some(l) => {
                    if heap.set(l, e2.as_val().unwrap().clone()) {
                        Ok(StepOutcome::heap(Expr::unit()))
                    } else {
                        stuck(format!("store to unallocated {}", l))
                    }
                }
                None => stuck("store to non-location"),
            }
        }

        Expr::Cas(e1, e2, e3) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Cas(Box::new(n), e2.clone(), e3.clone()));
            }
            if e2.as_val().is_none() {
                ctx!(e2, |n| Expr::Cas(e1.clone(), Box::new(n), e3.clone()));
            }
            if e3.as_val().is_none() {
                ctx!(e3, |n| Expr::Cas(e1.clone(), e2.clone(), Box::new(n)));
            }
            let old = e2.as_val().unwrap();
            let new = e3.as_val().unwrap();
            if !old.is_comparable() {
                return stuck("cas with non-comparable expected value");
            }
            match e1.as_val().unwrap().as_loc() {
                Some(l) => match heap.get(l).cloned() {
                    Some(cur) => {
                        if cur == *old {
                            heap.set(l, new.clone());
                            Ok(StepOutcome::heap(Expr::bool(true)))
                        } else {
                            Ok(StepOutcome::heap(Expr::bool(false)))
                        }
                    }
                    None => stuck(format!("cas on unallocated {}", l)),
                },
                None => stuck("cas on non-location"),
            }
        }

        Expr::Faa(e1, e2) => {
            if e1.as_val().is_none() {
                ctx!(e1, |n| Expr::Faa(Box::new(n), e2.clone()));
            }
            if e2.as_val().is_none() {
                ctx!(e2, |n| Expr::Faa(e1.clone(), Box::new(n)));
            }
            let delta = match e2.as_val().unwrap().as_int() {
                Some(n) => n,
                None => return stuck("faa with non-integer delta"),
            };
            match e1.as_val().unwrap().as_loc() {
                Some(l) => match heap.get(l).cloned() {
                    Some(cur) => match cur.as_int() {
                        Some(n) => {
                            heap.set(l, Val::int(n.wrapping_add(delta)));
                            Ok(StepOutcome::heap(Expr::int(n)))
                        }
                        None => stuck("faa on non-integer cell"),
                    },
                    None => stuck(format!("faa on unallocated {}", l)),
                },
                None => stuck("faa on non-location"),
            }
        }

        Expr::Fork(body) => Ok(StepOutcome {
            expr: Expr::unit(),
            forked: vec![(**body).clone()],
            kind: StepKind::Fork,
        }),
    }
}

/// Attempts a *pure* step: succeeds only when the next redex is
/// heap-independent. Used by the `wp-pure` rule of the program logic.
pub fn pure_step(e: &Expr) -> Option<Expr> {
    let mut scratch = Heap::new();
    match step(e, &mut scratch) {
        Ok(out) if out.kind == StepKind::Pure && scratch.is_empty() => Some(out.expr),
        _ => None,
    }
}

/// Runs pure steps to exhaustion (at most `fuel` of them).
pub fn pure_steps(e: &Expr, fuel: usize) -> Expr {
    let mut cur = e.clone();
    for _ in 0..fuel {
        match pure_step(&cur) {
            Some(next) => cur = next,
            None => break,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_value(e: Expr) -> (Val, Heap) {
        let mut heap = Heap::new();
        let mut cur = e;
        for _ in 0..10_000 {
            match step(&cur, &mut heap) {
                Ok(out) => {
                    assert!(out.forked.is_empty(), "unexpected fork");
                    cur = out.expr;
                }
                Err(StepError::IsValue) => {
                    return (cur.as_val().unwrap().clone(), heap);
                }
                Err(e) => panic!("stuck: {}", e),
            }
        }
        panic!("did not terminate");
    }

    #[test]
    fn arithmetic() {
        let e = Expr::binop(
            BinOp::Add,
            Expr::int(2),
            Expr::binop(BinOp::Mul, Expr::int(3), Expr::int(4)),
        );
        assert_eq!(run_to_value(e).0, Val::int(14));
    }

    #[test]
    fn beta_reduction() {
        let inc = Expr::lam("x", Expr::binop(BinOp::Add, Expr::var("x"), Expr::int(1)));
        let e = Expr::app(inc, Expr::int(41));
        assert_eq!(run_to_value(e).0, Val::int(42));
    }

    #[test]
    fn recursion_factorial() {
        // rec fac n := if n <= 0 then 1 else n * fac (n - 1)
        let fac = Expr::rec(
            "fac",
            "n",
            Expr::ite(
                Expr::binop(BinOp::Le, Expr::var("n"), Expr::int(0)),
                Expr::int(1),
                Expr::binop(
                    BinOp::Mul,
                    Expr::var("n"),
                    Expr::app(
                        Expr::var("fac"),
                        Expr::binop(BinOp::Sub, Expr::var("n"), Expr::int(1)),
                    ),
                ),
            ),
        );
        let e = Expr::app(fac, Expr::int(5));
        assert_eq!(run_to_value(e).0, Val::int(120));
    }

    #[test]
    fn heap_roundtrip() {
        // let l = ref 7 in l <- !l + 1; !l
        let e = Expr::let_(
            "l",
            Expr::alloc(Expr::int(7)),
            Expr::seq(
                Expr::store(
                    Expr::var("l"),
                    Expr::binop(BinOp::Add, Expr::load(Expr::var("l")), Expr::int(1)),
                ),
                Expr::load(Expr::var("l")),
            ),
        );
        let (v, heap) = run_to_value(e);
        assert_eq!(v, Val::int(8));
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let e = Expr::let_(
            "l",
            Expr::alloc(Expr::int(0)),
            Expr::Pair(
                Box::new(Expr::cas(Expr::var("l"), Expr::int(0), Expr::int(1))),
                Box::new(Expr::cas(Expr::var("l"), Expr::int(0), Expr::int(2))),
            ),
        );
        let (v, _) = run_to_value(e);
        assert_eq!(
            v,
            Val::Pair(Box::new(Val::bool(true)), Box::new(Val::bool(false)))
        );
    }

    #[test]
    fn faa_returns_old() {
        let e = Expr::let_(
            "l",
            Expr::alloc(Expr::int(10)),
            Expr::Pair(
                Box::new(Expr::faa(Expr::var("l"), Expr::int(5))),
                Box::new(Expr::load(Expr::var("l"))),
            ),
        );
        let (v, _) = run_to_value(e);
        assert_eq!(v, Val::Pair(Box::new(Val::int(10)), Box::new(Val::int(15))));
    }

    #[test]
    fn sums_and_case() {
        let e = Expr::Case(
            Box::new(Expr::InjR(Box::new(Expr::int(3)))),
            Binder::from("x"),
            Box::new(Expr::int(0)),
            Binder::from("y"),
            Box::new(Expr::binop(BinOp::Add, Expr::var("y"), Expr::int(1))),
        );
        assert_eq!(run_to_value(e).0, Val::int(4));
    }

    #[test]
    fn stuck_cases() {
        let mut h = Heap::new();
        assert!(matches!(
            step(&Expr::var("x"), &mut h),
            Err(StepError::Stuck(_))
        ));
        assert!(matches!(
            step(&Expr::app(Expr::int(1), Expr::int(2)), &mut h),
            Err(StepError::Stuck(_))
        ));
        assert!(matches!(
            step(&Expr::load(Expr::int(3)), &mut h),
            Err(StepError::Stuck(_))
        ));
        assert!(matches!(
            step(&Expr::binop(BinOp::Div, Expr::int(1), Expr::int(0)), &mut h),
            Err(StepError::Stuck(_))
        ));
    }

    #[test]
    fn fork_reports_thread() {
        let mut h = Heap::new();
        let out = step(&Expr::fork(Expr::int(1)), &mut h).unwrap();
        assert_eq!(out.kind, StepKind::Fork);
        assert_eq!(out.expr, Expr::unit());
        assert_eq!(out.forked, vec![Expr::int(1)]);
    }

    #[test]
    fn pure_step_classification() {
        assert!(pure_step(&Expr::binop(BinOp::Add, Expr::int(1), Expr::int(1))).is_some());
        assert!(pure_step(&Expr::alloc(Expr::int(1))).is_none());
        assert!(pure_step(&Expr::int(1)).is_none());
        // A pure redex *inside* a heap operation is still a pure step.
        assert!(pure_step(&Expr::alloc(Expr::binop(
            BinOp::Add,
            Expr::int(1),
            Expr::int(1)
        )))
        .is_some());
    }

    #[test]
    fn pure_steps_runs_to_pure_normal_form() {
        let e = Expr::app(
            Expr::lam("x", Expr::binop(BinOp::Add, Expr::var("x"), Expr::int(1))),
            Expr::int(1),
        );
        assert_eq!(pure_steps(&e, 100), Expr::int(2));
    }
}
