//! # `daenerys-heaplang` — the HeapLang programming language
//!
//! A faithful executable rendition of HeapLang, the default programming
//! language of Iris (and of our destabilized variant): an untyped,
//! call-by-value lambda calculus with recursive functions, pairs, sums,
//! and a shared mutable heap with `ref`/load/store/`cas`/`faa`, plus
//! structured concurrency via `fork`.
//!
//! The crate provides:
//!
//! * the abstract syntax ([`Expr`], [`Val`], [`Binder`]) with
//!   substitution;
//! * a small-step operational semantics ([`step`], [`Heap`]) with a
//!   pure/heap/fork step classification used by the program logic;
//! * thread-pool machines ([`Machine`]) with pluggable [`Scheduler`]s and
//!   exhaustive interleaving exploration ([`explore`]) for adequacy
//!   testing;
//! * a lexer/parser for an ML-ish surface syntax ([`parse`]) and a
//!   round-tripping pretty-printer;
//! * a convenience interpreter ([`run`]).
//!
//! # Example
//!
//! ```
//! use daenerys_heaplang::{parse, run, Val};
//!
//! let prog = parse("let l = ref 2 in l <- !l * 21; !l")?;
//! let (v, heap) = run(prog, 1_000).unwrap();
//! assert_eq!(v, Val::int(42));
//! assert_eq!(heap.len(), 1);
//! # Ok::<(), daenerys_heaplang::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod interp;
mod lexer;
mod parser;
mod pretty;
mod scheduler;
mod step;
mod syntax;
mod thread;

pub use interp::{run, run_with, InterpError};
pub use lexer::{lex, Kw, LexError, Sym, Token};
pub use parser::{parse, ParseError};
pub use scheduler::{explore, run_under, Exploration, RandomScheduler, RoundRobin, Scheduler};
pub use step::{pure_step, pure_steps, step, Heap, StepError, StepKind, StepOutcome};
pub use syntax::{BinOp, Binder, Expr, Lit, Loc, UnOp, Val};
pub use thread::{Machine, ThreadStatus};
