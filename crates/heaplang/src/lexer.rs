//! Lexer for the ML-ish HeapLang surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An identifier (or `_`).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A keyword.
    Kw(Kw),
    /// A punctuation or operator symbol.
    Sym(Sym),
}

/// Keywords.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Let,
    In,
    Fun,
    Rec,
    If,
    Then,
    Else,
    Match,
    With,
    End,
    Ref,
    Fork,
    Cas,
    Faa,
    True,
    False,
    Not,
    Inl,
    Inr,
    Fst,
    Snd,
}

/// Symbols and operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semi,
    Arrow,  // =>
    Assign, // <-
    Bang,   // !
    Eq,     // =
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    AndAnd,
    OrOr,
    Pipe,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{}", s),
            Token::Int(n) => write!(f, "{}", n),
            Token::Kw(k) => write!(f, "{:?}", k),
            Token::Sym(s) => write!(f, "{:?}", s),
        }
    }
}

/// A lexing error with byte position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "let" => Kw::Let,
        "in" => Kw::In,
        "fun" => Kw::Fun,
        "rec" => Kw::Rec,
        "if" => Kw::If,
        "then" => Kw::Then,
        "else" => Kw::Else,
        "match" => Kw::Match,
        "with" => Kw::With,
        "end" => Kw::End,
        "ref" => Kw::Ref,
        "fork" => Kw::Fork,
        "cas" => Kw::Cas,
        "faa" => Kw::Faa,
        "true" => Kw::True,
        "false" => Kw::False,
        "not" => Kw::Not,
        "inl" => Kw::Inl,
        "inr" => Kw::Inr,
        "fst" => Kw::Fst,
        "snd" => Kw::Snd,
        _ => return None,
    })
}

/// Tokenizes a source string. Supports `(* ... *)` comments (nested) and
/// `//` line comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters, malformed integers, or
/// unterminated comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while depth > 0 {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == b'(' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '(' => {
                out.push(Token::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Sym(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Sym(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Sym(Sym::Semi));
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Sym(Sym::OrOr));
                i += 2;
            }
            '|' => {
                out.push(Token::Sym(Sym::Pipe));
                i += 1;
            }
            '&' if bytes.get(i + 1) == Some(&b'&') => {
                out.push(Token::Sym(Sym::AndAnd));
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token::Sym(Sym::Arrow));
                i += 2;
            }
            '=' => {
                out.push(Token::Sym(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym(Sym::Ne));
                i += 2;
            }
            '!' => {
                out.push(Token::Sym(Sym::Bang));
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'-') => {
                out.push(Token::Sym(Sym::Assign));
                i += 2;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym(Sym::Le));
                i += 2;
            }
            '<' => {
                out.push(Token::Sym(Sym::Lt));
                i += 1;
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym(Sym::Ge));
                i += 2;
            }
            '>' => {
                out.push(Token::Sym(Sym::Gt));
                i += 1;
            }
            '+' => {
                out.push(Token::Sym(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Sym(Sym::Minus));
                i += 1;
            }
            '*' => {
                out.push(Token::Sym(Sym::Star));
                i += 1;
            }
            '/' => {
                out.push(Token::Sym(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Sym(Sym::Percent));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<i64>().map_err(|_| LexError {
                    pos: start,
                    message: format!("integer literal out of range: {}", text),
                })?;
                out.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                match keyword(text) {
                    Some(kw) => out.push(Token::Kw(kw)),
                    None => out.push(Token::Ident(text.to_string())),
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {:?}", other),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_program() {
        let toks = lex("let x = ref 1 in x <- !x + 2; !x").unwrap();
        assert_eq!(toks[0], Token::Kw(Kw::Let));
        assert!(toks.contains(&Token::Sym(Sym::Assign)));
        assert!(toks.contains(&Token::Sym(Sym::Bang)));
        assert!(toks.contains(&Token::Int(2)));
    }

    #[test]
    fn distinguishes_compound_symbols() {
        let toks = lex("<= < <- != ! = => == && ||").unwrap();
        use Sym::*;
        assert_eq!(
            toks,
            vec![
                Token::Sym(Le),
                Token::Sym(Lt),
                Token::Sym(Assign),
                Token::Sym(Ne),
                Token::Sym(Bang),
                Token::Sym(Eq),
                Token::Sym(Arrow),
                Token::Sym(Eq),
                Token::Sym(Eq),
                Token::Sym(AndAnd),
                Token::Sym(OrOr),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("1 (* nested (* deep *) *) 2 // end\n3").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Int(2), Token::Int(3)]);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn unknown_char_errors() {
        let err = lex("let x = #").unwrap_err();
        assert_eq!(err.pos, 8);
    }

    #[test]
    fn primed_identifiers() {
        let toks = lex("x' foo_bar1").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("x'".into()), Token::Ident("foo_bar1".into())]
        );
    }
}
