//! Abstract syntax of HeapLang: an untyped, call-by-value lambda
//! calculus with recursive functions, pairs, sums, and a mutable heap
//! with `ref`, load, store, compare-and-swap, fetch-and-add, and `fork`.
//!
//! The semantics is substitution-based, exactly like the HeapLang that
//! ships with Iris: programs are closed expressions, and beta reduction
//! substitutes *closed values*, so naive capture-free substitution with
//! shadowing checks is sound.

use std::fmt;

/// A heap location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A binder: a named variable or the anonymous binder `_`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Binder {
    /// The anonymous binder; substitution never descends into it.
    Anon,
    /// A named binder.
    Named(String),
}

impl Binder {
    /// Whether this binder captures the variable `x`.
    pub fn captures(&self, x: &str) -> bool {
        matches!(self, Binder::Named(n) if n == x)
    }
}

impl From<&str> for Binder {
    fn from(s: &str) -> Binder {
        if s == "_" {
            Binder::Anon
        } else {
            Binder::Named(s.to_string())
        }
    }
}

impl fmt::Display for Binder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binder::Anon => write!(f, "_"),
            Binder::Named(n) => write!(f, "{}", n),
        }
    }
}

/// Base literals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Lit {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// The unit value.
    Unit,
    /// A heap location (only created by `ref`, not written in programs).
    Loc(Loc),
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(n) => write!(f, "{}", n),
            Lit::Bool(b) => write!(f, "{}", b),
            Lit::Unit => write!(f, "()"),
            Lit::Loc(l) => write!(f, "{}", l),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (stuck on division by zero).
    Div,
    /// Integer remainder (stuck on zero divisor).
    Rem,
    /// Equality on comparable (literal) values.
    Eq,
    /// Disequality on comparable values.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean conjunction (strict; both sides evaluated).
    And,
    /// Boolean disjunction (strict).
    Or,
}

/// Runtime values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Val {
    /// A literal.
    Lit(Lit),
    /// A pair of values.
    Pair(Box<Val>, Box<Val>),
    /// Left injection into a sum.
    InjL(Box<Val>),
    /// Right injection into a sum.
    InjR(Box<Val>),
    /// A (possibly recursive) closure; `body` mentions `f` and `x`.
    Rec {
        /// The self-reference binder.
        f: Binder,
        /// The argument binder.
        x: Binder,
        /// The function body.
        body: Box<Expr>,
    },
}

impl Val {
    /// The integer literal value.
    pub fn int(n: i64) -> Val {
        Val::Lit(Lit::Int(n))
    }

    /// The boolean literal value.
    pub fn bool(b: bool) -> Val {
        Val::Lit(Lit::Bool(b))
    }

    /// The unit value.
    pub fn unit() -> Val {
        Val::Lit(Lit::Unit)
    }

    /// A location value.
    pub fn loc(l: Loc) -> Val {
        Val::Lit(Lit::Loc(l))
    }

    /// Extracts an integer, if the value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Lit(Lit::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a boolean, if the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Lit(Lit::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a location, if the value is one.
    pub fn as_loc(&self) -> Option<Loc> {
        match self {
            Val::Lit(Lit::Loc(l)) => Some(*l),
            _ => None,
        }
    }

    /// Whether the value is *comparable* (safe for `=` and `cas`):
    /// literals are, closures and compounds are not.
    pub fn is_comparable(&self) -> bool {
        matches!(self, Val::Lit(_))
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// An already-evaluated value.
    Val(Val),
    /// A variable occurrence.
    Var(String),
    /// A recursive function `rec f x := e`.
    Rec {
        /// Self-reference binder.
        f: Binder,
        /// Argument binder.
        x: Binder,
        /// Body.
        body: Box<Expr>,
    },
    /// Application.
    App(Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2` (also used for sequencing with an anonymous
    /// binder).
    Let(Binder, Box<Expr>, Box<Expr>),
    /// Unary operation.
    UnOp(UnOp, Box<Expr>),
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Pair construction.
    Pair(Box<Expr>, Box<Expr>),
    /// First projection.
    Fst(Box<Expr>),
    /// Second projection.
    Snd(Box<Expr>),
    /// Left injection.
    InjL(Box<Expr>),
    /// Right injection.
    InjR(Box<Expr>),
    /// Sum elimination: `match e with inl x => e1 | inr y => e2 end`.
    Case(Box<Expr>, Binder, Box<Expr>, Binder, Box<Expr>),
    /// Allocation: `ref e`.
    Alloc(Box<Expr>),
    /// Load: `!e`.
    Load(Box<Expr>),
    /// Store: `e1 <- e2`.
    Store(Box<Expr>, Box<Expr>),
    /// Compare-and-swap `cas(l, old, new)`; returns the success boolean.
    Cas(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Fetch-and-add `faa(l, n)`; returns the old value.
    Faa(Box<Expr>, Box<Expr>),
    /// Fork a new thread; returns unit immediately.
    Fork(Box<Expr>),
}

impl Expr {
    /// The integer literal expression.
    pub fn int(n: i64) -> Expr {
        Expr::Val(Val::int(n))
    }

    /// The boolean literal expression.
    pub fn bool(b: bool) -> Expr {
        Expr::Val(Val::bool(b))
    }

    /// The unit literal expression.
    pub fn unit() -> Expr {
        Expr::Val(Val::unit())
    }

    /// A variable occurrence.
    pub fn var(x: &str) -> Expr {
        Expr::Var(x.to_string())
    }

    /// A non-recursive lambda `fun x => body`.
    pub fn lam(x: &str, body: Expr) -> Expr {
        Expr::Rec {
            f: Binder::Anon,
            x: Binder::from(x),
            body: Box::new(body),
        }
    }

    /// A recursive function `rec f x := body`.
    pub fn rec(f: &str, x: &str, body: Expr) -> Expr {
        Expr::Rec {
            f: Binder::from(f),
            x: Binder::from(x),
            body: Box::new(body),
        }
    }

    /// Application.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// `let x = e1 in e2`.
    pub fn let_(x: &str, e1: Expr, e2: Expr) -> Expr {
        Expr::Let(Binder::from(x), Box::new(e1), Box::new(e2))
    }

    /// Sequencing `e1 ; e2`.
    pub fn seq(e1: Expr, e2: Expr) -> Expr {
        Expr::Let(Binder::Anon, Box::new(e1), Box::new(e2))
    }

    /// `ref e`.
    pub fn alloc(e: Expr) -> Expr {
        Expr::Alloc(Box::new(e))
    }

    /// `!e`.
    pub fn load(e: Expr) -> Expr {
        Expr::Load(Box::new(e))
    }

    /// `e1 <- e2`.
    pub fn store(e1: Expr, e2: Expr) -> Expr {
        Expr::Store(Box::new(e1), Box::new(e2))
    }

    /// `cas(l, old, new)`.
    pub fn cas(l: Expr, old: Expr, new: Expr) -> Expr {
        Expr::Cas(Box::new(l), Box::new(old), Box::new(new))
    }

    /// `faa(l, n)`.
    pub fn faa(l: Expr, n: Expr) -> Expr {
        Expr::Faa(Box::new(l), Box::new(n))
    }

    /// `fork e`.
    pub fn fork(e: Expr) -> Expr {
        Expr::Fork(Box::new(e))
    }

    /// Binary operation helper.
    pub fn binop(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::BinOp(op, Box::new(a), Box::new(b))
    }

    /// Conditional helper.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Whether the expression is a value.
    pub fn as_val(&self) -> Option<&Val> {
        match self {
            Expr::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Capture-free substitution of the closed value `v` for variable `x`.
    ///
    /// Because we only ever substitute *closed* values, no renaming is
    /// needed: we simply stop at shadowing binders.
    pub fn subst(&self, x: &str, v: &Val) -> Expr {
        match self {
            Expr::Val(w) => Expr::Val(w.clone()),
            Expr::Var(y) => {
                if y == x {
                    Expr::Val(v.clone())
                } else {
                    self.clone()
                }
            }
            Expr::Rec { f, x: arg, body } => {
                if f.captures(x) || arg.captures(x) {
                    self.clone()
                } else {
                    Expr::Rec {
                        f: f.clone(),
                        x: arg.clone(),
                        body: Box::new(body.subst(x, v)),
                    }
                }
            }
            Expr::App(a, b) => Expr::App(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Let(b, e1, e2) => {
                let e1 = e1.subst(x, v);
                let e2 = if b.captures(x) {
                    (**e2).clone()
                } else {
                    e2.subst(x, v)
                };
                Expr::Let(b.clone(), Box::new(e1), Box::new(e2))
            }
            Expr::UnOp(op, e) => Expr::UnOp(*op, Box::new(e.subst(x, v))),
            Expr::BinOp(op, a, b) => {
                Expr::BinOp(*op, Box::new(a.subst(x, v)), Box::new(b.subst(x, v)))
            }
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.subst(x, v)),
                Box::new(t.subst(x, v)),
                Box::new(e.subst(x, v)),
            ),
            Expr::Pair(a, b) => Expr::Pair(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Fst(e) => Expr::Fst(Box::new(e.subst(x, v))),
            Expr::Snd(e) => Expr::Snd(Box::new(e.subst(x, v))),
            Expr::InjL(e) => Expr::InjL(Box::new(e.subst(x, v))),
            Expr::InjR(e) => Expr::InjR(Box::new(e.subst(x, v))),
            Expr::Case(e, bl, el, br, er) => {
                let el2 = if bl.captures(x) {
                    (**el).clone()
                } else {
                    el.subst(x, v)
                };
                let er2 = if br.captures(x) {
                    (**er).clone()
                } else {
                    er.subst(x, v)
                };
                Expr::Case(
                    Box::new(e.subst(x, v)),
                    bl.clone(),
                    Box::new(el2),
                    br.clone(),
                    Box::new(er2),
                )
            }
            Expr::Alloc(e) => Expr::Alloc(Box::new(e.subst(x, v))),
            Expr::Load(e) => Expr::Load(Box::new(e.subst(x, v))),
            Expr::Store(a, b) => Expr::Store(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Cas(a, b, c) => Expr::Cas(
                Box::new(a.subst(x, v)),
                Box::new(b.subst(x, v)),
                Box::new(c.subst(x, v)),
            ),
            Expr::Faa(a, b) => Expr::Faa(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Expr::Fork(e) => Expr::Fork(Box::new(e.subst(x, v))),
        }
    }

    /// Substitution through a binder: substitutes only when the binder is
    /// named.
    pub fn subst_binder(&self, b: &Binder, v: &Val) -> Expr {
        match b {
            Binder::Anon => self.clone(),
            Binder::Named(x) => self.subst(x, v),
        }
    }

    /// The set of free variables (used by well-formedness checks).
    pub fn free_vars(&self) -> Vec<String> {
        fn go(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            let with = |b: &Binder,
                        bound: &mut Vec<String>,
                        f: &mut dyn FnMut(&mut Vec<String>)| {
                match b {
                    Binder::Anon => f(bound),
                    Binder::Named(n) => {
                        bound.push(n.clone());
                        f(bound);
                        bound.pop();
                    }
                }
            };
            match e {
                Expr::Val(_) => {}
                Expr::Var(x) => {
                    if !bound.iter().any(|b| b == x) && !out.contains(x) {
                        out.push(x.clone());
                    }
                }
                Expr::Rec { f, x, body } => {
                    with(f, bound, &mut |bound| {
                        with(x, bound, &mut |bound| go(body, bound, out));
                    });
                }
                Expr::App(a, b)
                | Expr::BinOp(_, a, b)
                | Expr::Pair(a, b)
                | Expr::Store(a, b)
                | Expr::Faa(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Let(b, e1, e2) => {
                    go(e1, bound, out);
                    with(b, bound, &mut |bound| go(e2, bound, out));
                }
                Expr::UnOp(_, e)
                | Expr::Fst(e)
                | Expr::Snd(e)
                | Expr::InjL(e)
                | Expr::InjR(e)
                | Expr::Alloc(e)
                | Expr::Load(e)
                | Expr::Fork(e) => go(e, bound, out),
                Expr::If(c, t, e) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(e, bound, out);
                }
                Expr::Case(e, bl, el, br, er) => {
                    go(e, bound, out);
                    with(bl, bound, &mut |bound| go(el, bound, out));
                    with(br, bound, &mut |bound| go(er, bound, out));
                }
                Expr::Cas(a, b, c) => {
                    go(a, bound, out);
                    go(b, bound, out);
                    go(c, bound, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Whether the expression is closed.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl From<Val> for Expr {
    fn from(v: Val) -> Expr {
        Expr::Val(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_replaces_free_occurrences() {
        let e = Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y"));
        let e2 = e.subst("x", &Val::int(3));
        assert_eq!(e2, Expr::binop(BinOp::Add, Expr::int(3), Expr::var("y")));
    }

    #[test]
    fn subst_respects_shadowing() {
        // (let x = 1 in x) with [x := 9] — the bound x is untouched.
        let e = Expr::let_("x", Expr::int(1), Expr::var("x"));
        assert_eq!(e.subst("x", &Val::int(9)), e);
        // but the right-hand side is substituted.
        let e = Expr::let_("x", Expr::var("x"), Expr::var("x"));
        let expected = Expr::let_("x", Expr::int(9), Expr::var("x"));
        assert_eq!(e.subst("x", &Val::int(9)), expected);
    }

    #[test]
    fn subst_under_lambda_stops_at_shadow() {
        let id = Expr::lam("x", Expr::var("x"));
        assert_eq!(id.subst("x", &Val::int(1)), id);
        let open = Expr::lam("y", Expr::var("x"));
        let closed = Expr::lam("y", Expr::int(1));
        assert_eq!(open.subst("x", &Val::int(1)), closed);
    }

    #[test]
    fn free_vars_and_closedness() {
        let e = Expr::let_(
            "x",
            Expr::int(1),
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("z")),
        );
        assert_eq!(e.free_vars(), vec!["z".to_string()]);
        assert!(!e.is_closed());
        assert!(Expr::lam("x", Expr::var("x")).is_closed());
    }

    #[test]
    fn case_binders_shadow() {
        let e = Expr::Case(
            Box::new(Expr::var("s")),
            Binder::from("x"),
            Box::new(Expr::var("x")),
            Binder::from("y"),
            Box::new(Expr::var("x")),
        );
        let e2 = e.subst("x", &Val::int(5));
        // Left branch keeps its bound x, right branch gets the value.
        match e2 {
            Expr::Case(_, _, el, _, er) => {
                assert_eq!(*el, Expr::var("x"));
                assert_eq!(*er, Expr::int(5));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn comparable_values() {
        assert!(Val::int(1).is_comparable());
        assert!(Val::unit().is_comparable());
        assert!(!Val::Pair(Box::new(Val::int(1)), Box::new(Val::int(2))).is_comparable());
        assert!(!Val::Rec {
            f: Binder::Anon,
            x: Binder::Anon,
            body: Box::new(Expr::unit()),
        }
        .is_comparable());
    }

    #[test]
    fn anon_binder_from_underscore() {
        assert_eq!(Binder::from("_"), Binder::Anon);
        assert_eq!(Binder::from("v"), Binder::Named("v".into()));
    }
}
