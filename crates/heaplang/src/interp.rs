//! A convenience interpreter for whole programs.

use crate::scheduler::{run_under, RoundRobin, Scheduler};
use crate::step::Heap;
use crate::syntax::{Expr, Val};
use crate::thread::{Machine, ThreadStatus};
use std::fmt;

/// Why interpretation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// A thread got stuck; payload is thread index and reason.
    Stuck(usize, String),
    /// The fuel ran out before all threads finished.
    OutOfFuel,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Stuck(t, why) => write!(f, "thread {} stuck: {}", t, why),
            InterpError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Runs a closed program to completion under round-robin scheduling.
///
/// Returns the main thread's value and the final heap.
///
/// # Errors
///
/// [`InterpError::Stuck`] if any thread hits a runtime error;
/// [`InterpError::OutOfFuel`] if `fuel` scheduler steps were not enough.
///
/// # Examples
///
/// ```
/// use daenerys_heaplang::{run, Expr, Val, BinOp};
///
/// let prog = Expr::binop(BinOp::Mul, Expr::int(6), Expr::int(7));
/// let (v, _heap) = run(prog, 1000)?;
/// assert_eq!(v, Val::int(42));
/// # Ok::<(), daenerys_heaplang::InterpError>(())
/// ```
pub fn run(program: Expr, fuel: usize) -> Result<(Val, Heap), InterpError> {
    run_with(program, &mut RoundRobin::new(), fuel)
}

/// Runs a closed program under an arbitrary scheduler.
///
/// # Errors
///
/// See [`run`].
pub fn run_with<S: Scheduler>(
    program: Expr,
    scheduler: &mut S,
    fuel: usize,
) -> Result<(Val, Heap), InterpError> {
    let machine = Machine::new(program);
    let terminal = run_under(machine, scheduler, fuel).ok_or(InterpError::OutOfFuel)?;
    for i in 0..terminal.thread_count() {
        if let ThreadStatus::Stuck(why) = terminal.status(i) {
            return Err(InterpError::Stuck(i, why.clone()));
        }
    }
    match terminal.main_result() {
        Some(v) => Ok((v.clone(), terminal.heap.clone())),
        None => Err(InterpError::OutOfFuel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::BinOp;

    #[test]
    fn runs_simple_programs() {
        let (v, _) = run(Expr::binop(BinOp::Add, Expr::int(1), Expr::int(2)), 100).unwrap();
        assert_eq!(v, Val::int(3));
    }

    #[test]
    fn reports_stuck() {
        let err = run(Expr::app(Expr::int(1), Expr::int(2)), 100).unwrap_err();
        assert!(matches!(err, InterpError::Stuck(0, _)));
    }

    #[test]
    fn reports_out_of_fuel() {
        let omega = Expr::app(
            Expr::rec("f", "x", Expr::app(Expr::var("f"), Expr::var("x"))),
            Expr::unit(),
        );
        assert_eq!(run(omega, 50).unwrap_err(), InterpError::OutOfFuel);
    }

    #[test]
    fn forked_threads_finish_under_round_robin() {
        let prog = Expr::let_(
            "l",
            Expr::alloc(Expr::int(0)),
            Expr::seq(
                Expr::fork(Expr::faa(Expr::var("l"), Expr::int(1))),
                Expr::seq(
                    Expr::fork(Expr::faa(Expr::var("l"), Expr::int(1))),
                    Expr::int(9),
                ),
            ),
        );
        let (v, heap) = run(prog, 10_000).unwrap();
        assert_eq!(v, Val::int(9));
        assert_eq!(heap.get(crate::syntax::Loc(0)), Some(&Val::int(2)));
    }
}
