//! Pretty-printing of HeapLang expressions and values.
//!
//! The printer emits the same surface syntax the parser accepts, so
//! `parse(e.to_string())` round-trips for parseable expressions (checked
//! by a property test in the crate's test suite). Location literals
//! print as `ℓn`, which the parser deliberately rejects — locations are
//! runtime-only values.

use crate::syntax::{BinOp, Binder, Expr, Lit, UnOp, Val};
use std::fmt;

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "=",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Precedence levels matching the parser, higher binds tighter.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Let(..) | Expr::Rec { .. } | Expr::If(..) | Expr::Case(..) => 0,
        Expr::Store(..) => 2,
        Expr::BinOp(BinOp::Or, ..) => 3,
        Expr::BinOp(BinOp::And, ..) => 4,
        Expr::BinOp(BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, ..) => 5,
        Expr::BinOp(BinOp::Add | BinOp::Sub, ..) => 6,
        Expr::BinOp(BinOp::Mul | BinOp::Div | BinOp::Rem, ..) => 7,
        Expr::UnOp(..) => 8,
        Expr::App(..) => 9,
        _ => 10,
    }
}

fn write_at(e: &Expr, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let p = prec(e);
    if p < min {
        write!(f, "(")?;
    }
    match e {
        // Negative literals are parenthesized so they re-lex as a folded
        // unary minus rather than a binary subtraction.
        Expr::Val(Val::Lit(Lit::Int(n))) if *n < 0 => write!(f, "({})", n)?,
        Expr::Val(v) => write!(f, "{}", v)?,
        Expr::Var(x) => write!(f, "{}", x)?,
        Expr::Rec { f: fb, x, body } => match fb {
            Binder::Anon => {
                write!(f, "fun {} => ", x)?;
                write_at(body, 0, f)?;
            }
            _ => {
                write!(f, "rec {} {} => ", fb, x)?;
                write_at(body, 0, f)?;
            }
        },
        Expr::App(a, b) => {
            write_at(a, 9, f)?;
            write!(f, " ")?;
            write_at(b, 10, f)?;
        }
        Expr::Let(Binder::Anon, e1, e2) => {
            write_at(e1, 2, f)?;
            write!(f, "; ")?;
            write_at(e2, 0, f)?;
        }
        Expr::Let(b, e1, e2) => {
            write!(f, "let {} = ", b)?;
            write_at(e1, 0, f)?;
            write!(f, " in ")?;
            write_at(e2, 0, f)?;
        }
        Expr::UnOp(UnOp::Neg, e1) => {
            write!(f, "- ")?;
            write_at(e1, 8, f)?;
        }
        Expr::UnOp(UnOp::Not, e1) => {
            write!(f, "not ")?;
            write_at(e1, 8, f)?;
        }
        Expr::BinOp(op, a, b) => {
            // Left-associative: left child may be at the same level,
            // right child must be strictly tighter (except for the
            // non-associative comparison level, where both are tighter).
            let (la, ra) = match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    (p + 1, p + 1)
                }
                _ => (p, p + 1),
            };
            write_at(a, la, f)?;
            write!(f, " {} ", binop_str(*op))?;
            write_at(b, ra, f)?;
        }
        Expr::If(c, t, e2) => {
            write!(f, "if ")?;
            write_at(c, 0, f)?;
            write!(f, " then ")?;
            write_at(t, 0, f)?;
            write!(f, " else ")?;
            write_at(e2, 0, f)?;
        }
        Expr::Pair(a, b) => {
            write!(f, "(")?;
            write_at(a, 0, f)?;
            write!(f, ", ")?;
            write_at(b, 0, f)?;
            write!(f, ")")?;
        }
        Expr::Fst(e1) => {
            write!(f, "fst ")?;
            write_at(e1, 10, f)?;
        }
        Expr::Snd(e1) => {
            write!(f, "snd ")?;
            write_at(e1, 10, f)?;
        }
        Expr::InjL(e1) => {
            write!(f, "inl ")?;
            write_at(e1, 10, f)?;
        }
        Expr::InjR(e1) => {
            write!(f, "inr ")?;
            write_at(e1, 10, f)?;
        }
        Expr::Case(s, bl, el, br, er) => {
            write!(f, "match ")?;
            write_at(s, 0, f)?;
            write!(f, " with | inl {} => ", bl)?;
            write_at(el, 0, f)?;
            write!(f, " | inr {} => ", br)?;
            write_at(er, 0, f)?;
            write!(f, " end")?;
        }
        Expr::Alloc(e1) => {
            write!(f, "ref ")?;
            write_at(e1, 10, f)?;
        }
        Expr::Load(e1) => {
            write!(f, "!")?;
            write_at(e1, 10, f)?;
        }
        Expr::Store(a, b) => {
            write_at(a, 3, f)?;
            write!(f, " <- ")?;
            write_at(b, 3, f)?;
        }
        Expr::Cas(a, b, c) => {
            write!(f, "cas(")?;
            write_at(a, 0, f)?;
            write!(f, ", ")?;
            write_at(b, 0, f)?;
            write!(f, ", ")?;
            write_at(c, 0, f)?;
            write!(f, ")")?;
        }
        Expr::Faa(a, b) => {
            write!(f, "faa(")?;
            write_at(a, 0, f)?;
            write!(f, ", ")?;
            write_at(b, 0, f)?;
            write!(f, ")")?;
        }
        Expr::Fork(e1) => {
            write!(f, "fork ")?;
            write_at(e1, 10, f)?;
        }
    }
    if p < min {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_at(self, 0, f)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Lit(Lit::Unit) => write!(f, "()"),
            Val::Lit(l) => write!(f, "{}", l),
            Val::Pair(a, b) => write!(f, "({}, {})", a, b),
            Val::InjL(v) => write!(f, "inl {}", paren_val(v)),
            Val::InjR(v) => write!(f, "inr {}", paren_val(v)),
            Val::Rec { f: fb, x, body } => match fb {
                Binder::Anon => write!(f, "fun {} => {}", x, body),
                _ => write!(f, "rec {} {} => {}", fb, x, body),
            },
        }
    }
}

fn paren_val(v: &Val) -> String {
    match v {
        Val::Lit(_) | Val::Pair(..) => v.to_string(),
        _ => format!("({})", v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let e = parse(src).unwrap();
        let printed = e.to_string();
        let e2 = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed for {:?}: {}", printed, err));
        assert_eq!(e, e2, "roundtrip changed: {:?} vs {:?}", src, printed);
    }

    #[test]
    fn roundtrips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "let x = ref 0 in x <- !x + 1; !x",
            "fun x => x + 1",
            "rec f n => if n <= 0 then 1 else n * f (n - 1)",
            "match inl 1 with | inl x => x | inr y => y end",
            "cas(l, 0, 1) && faa(l, 2) = 0",
            "fork (l <- 1); fst (1, (2, 3))",
            "not (1 = 2) || false",
            "10 - 3 - 4",
            "1 - (3 - 4)",
            "- 5 + - 3",
            "f x y z",
            "f (g x) (h y)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn display_values() {
        assert_eq!(Val::int(3).to_string(), "3");
        assert_eq!(Val::unit().to_string(), "()");
        assert_eq!(
            Val::Pair(Box::new(Val::int(1)), Box::new(Val::bool(true))).to_string(),
            "(1, true)"
        );
        assert_eq!(Val::InjL(Box::new(Val::int(1))).to_string(), "inl 1");
    }

    #[test]
    fn nested_store_parenthesized() {
        let e = parse("l <- (k <- 2; 1)").unwrap();
        roundtrip_expr(e);
    }

    fn roundtrip_expr(e: Expr) {
        let printed = e.to_string();
        let e2 = parse(&printed).unwrap();
        assert_eq!(e, e2);
    }
}
