//! Schedulers and exhaustive schedule exploration.
//!
//! The program logic's adequacy statement quantifies over *all*
//! schedules. [`explore`] enumerates every interleaving of a bounded
//! program (with state deduplication), which is how `daenerys-proglog`
//! turns adequacy into a checkable property.

use crate::thread::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A scheduling policy: picks the next thread among the runnable ones.
pub trait Scheduler {
    /// Chooses an index *into* `runnable` (not a thread id).
    ///
    /// `runnable` is non-empty when this is called.
    fn pick(&mut self, machine: &Machine, runnable: &[usize]) -> usize;
}

/// Round-robin scheduling: fair rotation over thread ids.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin {
    counter: usize,
}

impl RoundRobin {
    /// A fresh round-robin scheduler.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, _machine: &Machine, runnable: &[usize]) -> usize {
        let i = self.counter % runnable.len();
        self.counter += 1;
        i
    }
}

/// Uniformly random scheduling with a seeded generator (reproducible).
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, _machine: &Machine, runnable: &[usize]) -> usize {
        self.rng.gen_range(0..runnable.len())
    }
}

/// Runs the machine to a terminal configuration under a scheduler.
///
/// Returns the terminal machine, or `None` if `max_steps` ran out first.
pub fn run_under<S: Scheduler>(
    mut machine: Machine,
    scheduler: &mut S,
    max_steps: usize,
) -> Option<Machine> {
    for _ in 0..max_steps {
        let runnable = machine.runnable();
        if runnable.is_empty() {
            return Some(machine);
        }
        let pick = scheduler.pick(&machine, &runnable);
        machine.step_thread(runnable[pick]);
    }
    if machine.is_terminal() {
        Some(machine)
    } else {
        None
    }
}

/// The outcome of exhaustive schedule exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Every distinct terminal configuration reached.
    pub terminals: Vec<Machine>,
    /// Number of distinct configurations visited.
    pub states_visited: usize,
    /// Whether exploration was cut off by the step bound (if so, the
    /// terminal list may be incomplete).
    pub truncated: bool,
}

/// Exhaustively explores every interleaving of `machine`, visiting each
/// distinct configuration once, up to `depth` scheduler decisions per
/// trace.
///
/// This is a depth-first search with global state deduplication; for the
/// bounded programs used in adequacy tests it is a complete enumeration
/// of reachable terminal states.
pub fn explore(machine: Machine, depth: usize) -> Exploration {
    let mut seen: HashSet<Machine> = HashSet::new();
    let mut terminals: Vec<Machine> = Vec::new();
    let mut terminal_seen: HashSet<Machine> = HashSet::new();
    let mut truncated = false;
    let mut stack: Vec<(Machine, usize)> = vec![(machine, 0)];

    while let Some((m, d)) = stack.pop() {
        if !seen.insert(m.clone()) {
            continue;
        }
        let runnable = m.runnable();
        if runnable.is_empty() {
            if terminal_seen.insert(m.clone()) {
                terminals.push(m);
            }
            continue;
        }
        if d >= depth {
            truncated = true;
            continue;
        }
        for t in runnable {
            let mut next = m.clone();
            next.step_thread(t);
            stack.push((next, d + 1));
        }
    }

    Exploration {
        terminals,
        states_visited: seen.len(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{BinOp, Expr, Val};

    fn parallel_writes() -> Expr {
        // let l = ref 0 in fork (l <- 1); l <- 2; !l
        Expr::let_(
            "l",
            Expr::alloc(Expr::int(0)),
            Expr::seq(
                Expr::fork(Expr::store(Expr::var("l"), Expr::int(1))),
                Expr::seq(
                    Expr::store(Expr::var("l"), Expr::int(2)),
                    Expr::load(Expr::var("l")),
                ),
            ),
        )
    }

    #[test]
    fn round_robin_terminates() {
        let m = Machine::new(parallel_writes());
        let done = run_under(m, &mut RoundRobin::new(), 1000).unwrap();
        assert!(done.main_result().is_some());
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let a = run_under(
            Machine::new(parallel_writes()),
            &mut RandomScheduler::new(7),
            1000,
        )
        .unwrap();
        let b = run_under(
            Machine::new(parallel_writes()),
            &mut RandomScheduler::new(7),
            1000,
        )
        .unwrap();
        assert_eq!(a.main_result(), b.main_result());
    }

    #[test]
    fn exploration_finds_both_race_outcomes() {
        let result = explore(Machine::new(parallel_writes()), 64);
        assert!(!result.truncated);
        let mut outcomes: Vec<i64> = result
            .terminals
            .iter()
            .filter_map(|m| m.main_result().and_then(Val::as_int))
            .collect();
        outcomes.sort_unstable();
        outcomes.dedup();
        // The racing store can land before or after ours.
        assert_eq!(outcomes, vec![1, 2]);
    }

    #[test]
    fn exploration_of_deterministic_program_is_singleton() {
        let e = Expr::binop(BinOp::Add, Expr::int(20), Expr::int(22));
        let result = explore(Machine::new(e), 16);
        assert_eq!(result.terminals.len(), 1);
        assert_eq!(result.terminals[0].main_result(), Some(&Val::int(42)));
    }

    #[test]
    fn cyclic_state_space_terminates_without_terminals() {
        // omega = (rec f x := f x) () cycles through finitely many
        // configurations; dedup closes the loop, no terminal exists.
        let omega = Expr::app(
            Expr::rec("f", "x", Expr::app(Expr::var("f"), Expr::var("x"))),
            Expr::unit(),
        );
        let result = explore(Machine::new(omega), 64);
        assert!(result.terminals.is_empty());
    }

    #[test]
    fn truncation_reported() {
        // A state-growing loop: rec f x := f (x + 1), whose
        // configurations are pairwise distinct, must hit the depth bound.
        let grower = Expr::app(
            Expr::rec(
                "f",
                "x",
                Expr::app(
                    Expr::var("f"),
                    Expr::binop(BinOp::Add, Expr::var("x"), Expr::int(1)),
                ),
            ),
            Expr::int(0),
        );
        let result = explore(Machine::new(grower), 8);
        assert!(result.truncated);
        assert!(result.terminals.is_empty());
    }
}
