//! Recursive-descent parser for the HeapLang surface syntax.
//!
//! Grammar sketch (low to high precedence):
//!
//! ```text
//! expr   ::= let x = expr in expr | fun x => expr | rec f x => expr
//!          | if expr then expr else expr
//!          | match expr with inl x => expr | inr y => expr end
//!          | seq
//! seq    ::= store (";" expr)?
//! store  ::= or ("<-" or)?
//! or     ::= and ("||" and)*
//! and    ::= cmp ("&&" cmp)*
//! cmp    ::= add (("="|"!="|"<"|"<="|">"|">=") add)?
//! add    ::= mul (("+"|"-") mul)*
//! mul    ::= unary (("*"|"/"|"%") unary)*
//! unary  ::= ("not"|"-") unary | app
//! app    ::= atom atom*
//! atom   ::= int | true | false | ident | "(" ")" | "(" expr ")"
//!          | "(" expr "," expr ")" | "!" atom | ref atom | fork atom
//!          | inl atom | inr atom | fst atom | snd atom
//!          | cas "(" expr "," expr "," expr ")"
//!          | faa "(" expr "," expr ")"
//! ```

use crate::lexer::{lex, Kw, LexError, Sym, Token};
use crate::syntax::{BinOp, Binder, Expr, UnOp};
use std::fmt;

/// A parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Token index where the error occurred.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            at: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a complete HeapLang program.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical errors, syntax errors, or
/// trailing input.
///
/// # Examples
///
/// ```
/// use daenerys_heaplang::{parse, run, Val};
///
/// let prog = parse("let l = ref 1 in l <- !l + 41; !l")?;
/// let (v, _) = run(prog, 1000).unwrap();
/// assert_eq!(v, Val::int(42));
/// # Ok::<(), daenerys_heaplang::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == Some(&Token::Sym(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == Some(&Token::Kw(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}, found {:?}", s, self.peek())))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}, found {:?}", k, self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected identifier, found {:?}", other),
            }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Kw(Kw::Let)) => {
                self.pos += 1;
                let x = self.ident()?;
                self.expect_sym(Sym::Eq)?;
                let e1 = self.expr()?;
                self.expect_kw(Kw::In)?;
                let e2 = self.expr()?;
                Ok(Expr::Let(
                    Binder::from(x.as_str()),
                    Box::new(e1),
                    Box::new(e2),
                ))
            }
            Some(Token::Kw(Kw::Fun)) => {
                self.pos += 1;
                let x = self.ident()?;
                self.expect_sym(Sym::Arrow)?;
                let body = self.expr()?;
                Ok(Expr::lam(&x, body))
            }
            Some(Token::Kw(Kw::Rec)) => {
                self.pos += 1;
                let f = self.ident()?;
                let x = self.ident()?;
                self.expect_sym(Sym::Arrow)?;
                let body = self.expr()?;
                Ok(Expr::rec(&f, &x, body))
            }
            Some(Token::Kw(Kw::If)) => {
                self.pos += 1;
                let c = self.expr()?;
                self.expect_kw(Kw::Then)?;
                let t = self.expr()?;
                self.expect_kw(Kw::Else)?;
                let e = self.expr()?;
                Ok(Expr::ite(c, t, e))
            }
            Some(Token::Kw(Kw::Match)) => {
                self.pos += 1;
                let scrut = self.expr()?;
                self.expect_kw(Kw::With)?;
                self.eat_sym(Sym::Pipe);
                self.expect_kw(Kw::Inl)?;
                let xl = self.ident()?;
                self.expect_sym(Sym::Arrow)?;
                let el = self.expr()?;
                self.expect_sym(Sym::Pipe)?;
                self.expect_kw(Kw::Inr)?;
                let xr = self.ident()?;
                self.expect_sym(Sym::Arrow)?;
                let er = self.expr()?;
                self.expect_kw(Kw::End)?;
                Ok(Expr::Case(
                    Box::new(scrut),
                    Binder::from(xl.as_str()),
                    Box::new(el),
                    Binder::from(xr.as_str()),
                    Box::new(er),
                ))
            }
            _ => self.seq(),
        }
    }

    fn seq(&mut self) -> Result<Expr, ParseError> {
        let e1 = self.store()?;
        if self.eat_sym(Sym::Semi) {
            let e2 = self.expr()?;
            Ok(Expr::seq(e1, e2))
        } else {
            Ok(e1)
        }
    }

    fn store(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or()?;
        if self.eat_sym(Sym::Assign) {
            let rhs = self.or()?;
            Ok(Expr::store(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and()?;
        while self.eat_sym(Sym::OrOr) {
            let rhs = self.and()?;
            e = Expr::binop(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp()?;
        while self.eat_sym(Sym::AndAnd) {
            let rhs = self.cmp()?;
            e = Expr::binop(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.add()?;
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add()?;
                Ok(Expr::binop(op, e, rhs))
            }
            None => Ok(e),
        }
    }

    fn add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul()?;
        loop {
            if self.eat_sym(Sym::Plus) {
                let rhs = self.mul()?;
                e = Expr::binop(BinOp::Add, e, rhs);
            } else if self.eat_sym(Sym::Minus) {
                let rhs = self.mul()?;
                e = Expr::binop(BinOp::Sub, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_sym(Sym::Star) {
                let rhs = self.unary()?;
                e = Expr::binop(BinOp::Mul, e, rhs);
            } else if self.eat_sym(Sym::Slash) {
                let rhs = self.unary()?;
                e = Expr::binop(BinOp::Div, e, rhs);
            } else if self.eat_sym(Sym::Percent) {
                let rhs = self.unary()?;
                e = Expr::binop(BinOp::Rem, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Kw::Not) {
            let e = self.unary()?;
            Ok(Expr::UnOp(UnOp::Not, Box::new(e)))
        } else if self.eat_sym(Sym::Minus) {
            // Fold unary minus on integer literals into the literal so
            // negative constants round-trip through the printer.
            if let Some(Token::Int(n)) = self.peek() {
                let n = *n;
                self.pos += 1;
                return Ok(Expr::int(n.wrapping_neg()));
            }
            let e = self.unary()?;
            Ok(Expr::UnOp(UnOp::Neg, Box::new(e)))
        } else {
            self.app()
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Int(_))
                | Some(Token::Ident(_))
                | Some(Token::Sym(Sym::LParen))
                | Some(Token::Sym(Sym::Bang))
                | Some(Token::Kw(Kw::True))
                | Some(Token::Kw(Kw::False))
                | Some(Token::Kw(Kw::Ref))
                | Some(Token::Kw(Kw::Fork))
                | Some(Token::Kw(Kw::Cas))
                | Some(Token::Kw(Kw::Faa))
                | Some(Token::Kw(Kw::Inl))
                | Some(Token::Kw(Kw::Inr))
                | Some(Token::Kw(Kw::Fst))
                | Some(Token::Kw(Kw::Snd))
        )
    }

    fn app(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            e = Expr::app(e, arg);
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::int(n)),
            Some(Token::Kw(Kw::True)) => Ok(Expr::bool(true)),
            Some(Token::Kw(Kw::False)) => Ok(Expr::bool(false)),
            Some(Token::Ident(x)) => Ok(Expr::var(&x)),
            Some(Token::Sym(Sym::Bang)) => Ok(Expr::load(self.atom()?)),
            Some(Token::Kw(Kw::Ref)) => Ok(Expr::alloc(self.atom()?)),
            Some(Token::Kw(Kw::Fork)) => Ok(Expr::fork(self.atom()?)),
            Some(Token::Kw(Kw::Inl)) => Ok(Expr::InjL(Box::new(self.atom()?))),
            Some(Token::Kw(Kw::Inr)) => Ok(Expr::InjR(Box::new(self.atom()?))),
            Some(Token::Kw(Kw::Fst)) => Ok(Expr::Fst(Box::new(self.atom()?))),
            Some(Token::Kw(Kw::Snd)) => Ok(Expr::Snd(Box::new(self.atom()?))),
            Some(Token::Kw(Kw::Cas)) => {
                self.expect_sym(Sym::LParen)?;
                let a = self.expr()?;
                self.expect_sym(Sym::Comma)?;
                let b = self.expr()?;
                self.expect_sym(Sym::Comma)?;
                let c = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(Expr::cas(a, b, c))
            }
            Some(Token::Kw(Kw::Faa)) => {
                self.expect_sym(Sym::LParen)?;
                let a = self.expr()?;
                self.expect_sym(Sym::Comma)?;
                let b = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(Expr::faa(a, b))
            }
            Some(Token::Sym(Sym::LParen)) => {
                if self.eat_sym(Sym::RParen) {
                    return Ok(Expr::unit());
                }
                let e = self.expr()?;
                if self.eat_sym(Sym::Comma) {
                    let e2 = self.expr()?;
                    self.expect_sym(Sym::RParen)?;
                    Ok(Expr::Pair(Box::new(e), Box::new(e2)))
                } else {
                    self.expect_sym(Sym::RParen)?;
                    Ok(e)
                }
            }
            other => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected expression, found {:?}", other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run;
    use crate::syntax::Val;

    fn eval(src: &str) -> Val {
        let e = parse(src).unwrap_or_else(|err| panic!("parse {:?}: {}", src, err));
        run(e, 100_000)
            .unwrap_or_else(|err| panic!("run {:?}: {}", src, err))
            .0
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("1 + 2 * 3"), Val::int(7));
        assert_eq!(eval("(1 + 2) * 3"), Val::int(9));
        assert_eq!(eval("10 - 3 - 4"), Val::int(3)); // left assoc
        assert_eq!(eval("1 + 2 = 3"), Val::bool(true));
        assert_eq!(eval("true && false || true"), Val::bool(true));
        assert_eq!(eval("- 3 + 5"), Val::int(2));
        assert_eq!(eval("not (1 = 2)"), Val::bool(true));
    }

    #[test]
    fn let_and_seq() {
        assert_eq!(eval("let x = 3 in x + x"), Val::int(6));
        assert_eq!(eval("let l = ref 0 in l <- 5; !l"), Val::int(5));
    }

    #[test]
    fn functions() {
        assert_eq!(eval("(fun x => x + 1) 41"), Val::int(42));
        assert_eq!(
            eval("let f = rec go n => if n <= 0 then 0 else n + go (n - 1) in f 10"),
            Val::int(55)
        );
        // Application is left-associative, juxtaposition-based.
        assert_eq!(
            eval("(fun f => fun x => f (f x)) (fun y => y * 2) 3"),
            Val::int(12)
        );
    }

    #[test]
    fn pairs_and_sums() {
        assert_eq!(eval("fst (1, 2) + snd (1, 2)"), Val::int(3));
        assert_eq!(
            eval("match inl 7 with | inl x => x + 1 | inr y => 0 end"),
            Val::int(8)
        );
        assert_eq!(
            eval("match inr 7 with | inl x => 0 | inr y => y * 2 end"),
            Val::int(14)
        );
    }

    #[test]
    fn heap_operations() {
        assert_eq!(eval("let l = ref 5 in faa(l, 3); !l"), Val::int(8));
        assert_eq!(eval("let l = ref 0 in cas(l, 0, 9); !l"), Val::int(9));
        assert_eq!(eval("let l = ref 0 in cas(l, 1, 9)"), Val::bool(false));
        assert_eq!(eval("let l = ref (ref 3) in ! !l"), Val::int(3));
    }

    #[test]
    fn fork_parses() {
        assert_eq!(eval("let l = ref 0 in fork (l <- 1); 7"), Val::int(7));
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(eval("(* inc *) let x = 1 in // add\n x + 1"), Val::int(2));
    }

    #[test]
    fn errors() {
        assert!(parse("let = 3 in x").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("(1, 2").is_err());
        assert!(parse("1 2 3 )").is_err());
        assert!(parse("match 1 with inl x => 1 end").is_err());
    }

    #[test]
    fn anonymous_binder() {
        assert_eq!(eval("let _ = 99 in 1"), Val::int(1));
        assert_eq!(eval("(fun _ => 5) 9"), Val::int(5));
    }
}
