//! Property-based tests for HeapLang: parser/printer round-trips,
//! determinism of single-thread execution, and scheduler soundness.

use daenerys_heaplang::{
    explore, parse, pure_step, run, run_under, step, BinOp, Expr, Heap, Machine, RandomScheduler,
    RoundRobin, StepKind, UnOp, Val,
};
use proptest::prelude::*;

/// Generates expressions from the *parseable* fragment (no location
/// literals, no closure values — those are runtime-only).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let var = prop_oneof![Just("x"), Just("y"), Just("f")];
    let leaf = prop_oneof![
        (-8i64..=8).prop_map(Expr::int),
        any::<bool>().prop_map(Expr::bool),
        Just(Expr::unit()),
        var.clone().prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 32, 3, move |inner| {
        let binder = prop_oneof![Just("x"), Just("y"), Just("f"), Just("_")];
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::app(a, b)),
            (binder.clone(), inner.clone(), inner.clone())
                .prop_map(|(x, a, b)| Expr::let_(x, a, b)),
            (binder.clone(), inner.clone()).prop_map(|(x, b)| Expr::lam(x, b)),
            (binder.clone(), binder.clone(), inner.clone())
                .prop_map(|(f, x, b)| Expr::rec(f, x, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binop(BinOp::Eq, a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::ite(c, t, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Fst(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Snd(Box::new(e))),
            inner.clone().prop_map(|e| Expr::InjL(Box::new(e))),
            inner.clone().prop_map(|e| Expr::InjR(Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::UnOp(UnOp::Not, Box::new(e))),
            inner.clone().prop_map(Expr::alloc),
            inner.clone().prop_map(Expr::load),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::store(a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::cas(a, b, c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::faa(a, b)),
            inner.clone().prop_map(Expr::fork),
        ]
    })
}

proptest! {
    /// The printer emits syntax the parser maps back to the same AST.
    #[test]
    fn pretty_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "unparseable print: {printed}");
        prop_assert_eq!(reparsed.unwrap(), e, "roundtrip mismatch for {}", printed);
    }

    /// Single-threaded stepping is deterministic.
    #[test]
    fn single_thread_step_deterministic(e in arb_expr()) {
        let mut h1 = Heap::new();
        let mut h2 = Heap::new();
        let r1 = step(&e, &mut h1);
        let r2 = step(&e, &mut h2);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(h1, h2);
    }

    /// A pure step never touches the heap and agrees with `step`.
    #[test]
    fn pure_step_agrees_with_step(e in arb_expr()) {
        if let Some(e2) = pure_step(&e) {
            let mut h = Heap::new();
            let out = step(&e, &mut h).unwrap();
            prop_assert_eq!(out.kind, StepKind::Pure);
            prop_assert_eq!(out.expr, e2);
            prop_assert!(h.is_empty());
        }
    }

    /// Substituting into a closed expression is the identity.
    #[test]
    fn subst_on_closed_is_identity(e in arb_expr()) {
        if e.is_closed() {
            prop_assert_eq!(e.subst("zz", &Val::int(0)), e);
        }
    }

    /// Values do not step.
    #[test]
    fn values_do_not_step(n in -100i64..100) {
        let mut h = Heap::new();
        prop_assert!(step(&Expr::int(n), &mut h).is_err());
    }
}

/// Fixed concurrent programs: the result under any tested scheduler is
/// among the exhaustively enumerated outcomes.
#[test]
fn schedulers_agree_with_exploration() {
    let srcs = [
        "let l = ref 0 in fork (l <- 1); fork (l <- 2); !l",
        "let l = ref 0 in fork (faa(l, 1)); faa(l, 2); !l",
        "let l = ref 0 in fork (cas(l, 0, 5)); cas(l, 0, 7); !l",
    ];
    for src in srcs {
        let prog = parse(src).unwrap();
        let all = explore(Machine::new(prog.clone()), 128);
        assert!(!all.truncated, "exploration truncated for {src}");
        let outcomes: Vec<Val> = all
            .terminals
            .iter()
            .filter_map(|m| m.main_result().cloned())
            .collect();
        assert!(!outcomes.is_empty());

        let rr = run_under(Machine::new(prog.clone()), &mut RoundRobin::new(), 10_000)
            .expect("round robin terminates");
        assert!(
            outcomes.contains(rr.main_result().unwrap()),
            "round-robin outcome not found by exploration for {src}"
        );

        for seed in 0..20 {
            let r = run_under(
                Machine::new(prog.clone()),
                &mut RandomScheduler::new(seed),
                10_000,
            )
            .expect("random scheduler terminates");
            assert!(
                outcomes.contains(r.main_result().unwrap()),
                "random outcome (seed {seed}) not found by exploration for {src}"
            );
        }
    }
}

/// Executing a parsed program equals executing the pretty-printed
/// re-parse of it (sanity for the whole front-end pipeline).
#[test]
fn run_is_stable_under_reprinting() {
    let srcs = [
        "let l = ref 1 in l <- !l + 41; !l",
        "let f = rec go n => if n <= 0 then 0 else n + go (n - 1) in f 9",
        "fst (snd ((1, 2), (3, 4)))",
        "match inr 20 with | inl a => 0 | inr b => b * 2 + 2 end",
    ];
    for src in srcs {
        let e = parse(src).unwrap();
        let e2 = parse(&e.to_string()).unwrap();
        let r1 = run(e, 100_000).unwrap().0;
        let r2 = run(e2, 100_000).unwrap().0;
        assert_eq!(r1, r2, "for {src}");
    }
}
