//! Worlds: the resources the destabilized logic is interpreted over.
//!
//! A [`Res`] combines a *heap fragment* (locations with discardable
//! fractional permissions and agreed values) with a *ghost map* (named
//! camera elements). A [`World`] is a pair of an *owned* resource and the
//! *environment frame*; their composition — the total — must be valid.
//!
//! The destabilization twist: assertions may inspect the **combined**
//! heap (owned ⋅ frame), e.g. via heap-dependent expressions, and may
//! inspect the owned part non-monotonically (permission introspection).
//! Interference is modeled by the *rely*: the environment may replace the
//! frame with any other resource that keeps the total valid. An assertion
//! is *stable* when its truth survives every such replacement.

use daenerys_algebra::{Agree, Auth, DFrac, Excl, Frac, GMap, MaxNat, Ra, SumNat, UnitRa, Q};
use daenerys_heaplang::{Loc, Val};
use std::fmt;

/// A ghost-state name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GhostName(pub u64);

impl fmt::Display for GhostName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "γ{}", self.0)
    }
}

/// The camera a ghost cell is an element of. Mixing cameras at one name
/// is invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CameraKind {
    /// Exclusive values.
    ExclVal,
    /// Agreement on values.
    AgreeVal,
    /// Fractional tokens.
    Frac,
    /// Authoritative sum-counter.
    AuthNat,
    /// Authoritative monotone counter.
    AuthMax,
}

/// A ghost cell: one element of one of the supported cameras.
///
/// The dynamic-camera dispatch a proof assistant gets from dependent
/// types is modeled by this closed enum; composing elements of different
/// cameras yields the invalid [`GhostVal::Mismatch`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GhostVal {
    /// Exclusive ownership of a value.
    ExclVal(Excl<Val>),
    /// Duplicable agreement on a value.
    AgreeVal(Agree<Val>),
    /// A fractional token.
    Frac(Frac),
    /// Authoritative counting (sum) camera.
    AuthNat(Auth<SumNat>),
    /// Authoritative monotone (max) camera.
    AuthMax(Auth<MaxNat>),
    /// Invalid: two different cameras met at the same name.
    Mismatch,
}

impl GhostVal {
    /// The camera this element belongs to (`None` for the mismatch
    /// element).
    pub fn kind(&self) -> Option<CameraKind> {
        Some(match self {
            GhostVal::ExclVal(_) => CameraKind::ExclVal,
            GhostVal::AgreeVal(_) => CameraKind::AgreeVal,
            GhostVal::Frac(_) => CameraKind::Frac,
            GhostVal::AuthNat(_) => CameraKind::AuthNat,
            GhostVal::AuthMax(_) => CameraKind::AuthMax,
            GhostVal::Mismatch => return None,
        })
    }
}

impl Ra for GhostVal {
    fn op(&self, other: &Self) -> Self {
        use GhostVal::*;
        match (self, other) {
            (ExclVal(a), ExclVal(b)) => ExclVal(a.op(b)),
            (AgreeVal(a), AgreeVal(b)) => AgreeVal(a.op(b)),
            (Frac(a), Frac(b)) => Frac(a.op(b)),
            (AuthNat(a), AuthNat(b)) => AuthNat(a.op(b)),
            (AuthMax(a), AuthMax(b)) => AuthMax(a.op(b)),
            _ => Mismatch,
        }
    }

    fn pcore(&self) -> Option<Self> {
        use GhostVal::*;
        match self {
            ExclVal(a) => a.pcore().map(ExclVal),
            AgreeVal(a) => a.pcore().map(AgreeVal),
            Frac(a) => a.pcore().map(Frac),
            AuthNat(a) => a.pcore().map(AuthNat),
            AuthMax(a) => a.pcore().map(AuthMax),
            Mismatch => None,
        }
    }

    fn valid(&self) -> bool {
        use GhostVal::*;
        match self {
            ExclVal(a) => a.valid(),
            AgreeVal(a) => a.valid(),
            Frac(a) => a.valid(),
            AuthNat(a) => a.valid(),
            AuthMax(a) => a.valid(),
            Mismatch => false,
        }
    }

    fn included_in(&self, other: &Self) -> bool {
        use GhostVal::*;
        match (self, other) {
            (ExclVal(a), ExclVal(b)) => a.included_in(b),
            (AgreeVal(a), AgreeVal(b)) => a.included_in(b),
            (Frac(a), Frac(b)) => a.included_in(b),
            (AuthNat(a), AuthNat(b)) => a.included_in(b),
            (AuthMax(a), AuthMax(b)) => a.included_in(b),
            (_, Mismatch) => true,
            _ => false,
        }
    }
}

/// A heap chunk: permission plus agreed value.
pub type HeapCell = (DFrac, Agree<Val>);

/// The heap-fragment camera.
pub type HeapFrag = GMap<Loc, HeapCell>;

/// The ghost-map camera.
pub type GhostFrag = GMap<GhostName, GhostVal>;

/// A resource: heap fragment ⋅ ghost map.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Res {
    /// The heap fragment.
    pub heap: HeapFrag,
    /// The ghost map.
    pub ghost: GhostFrag,
}

impl Res {
    /// The empty (unit) resource.
    pub fn empty() -> Res {
        Res::default()
    }

    /// A single points-to chunk `l ↦{dq} v`.
    pub fn points_to(l: Loc, dq: DFrac, v: Val) -> Res {
        Res {
            heap: GMap::singleton(l, (dq, Agree::new(v))),
            ghost: GMap::new(),
        }
    }

    /// A single ghost cell `own γ a`.
    pub fn ghost(name: GhostName, val: GhostVal) -> Res {
        Res {
            heap: GMap::new(),
            ghost: GMap::singleton(name, val),
        }
    }

    /// The owned permission at a location (zero if absent).
    pub fn perm_at(&self, l: Loc) -> Q {
        match self.heap.get(&l) {
            Some((dq, _)) => dq.owned_amount(),
            None => Q::ZERO,
        }
    }

    /// Whether any permission (including a discarded witness) is held at
    /// `l`.
    pub fn reads_at(&self, l: Loc) -> bool {
        match self.heap.get(&l) {
            Some((dq, _)) => dq.allows_read(),
            None => false,
        }
    }

    /// The agreed value at a location, if a valid chunk is present.
    pub fn value_at(&self, l: Loc) -> Option<&Val> {
        self.heap.get(&l).and_then(|(_, ag)| ag.get())
    }

    /// The ghost element at a name.
    pub fn ghost_at(&self, name: GhostName) -> Option<&GhostVal> {
        self.ghost.get(&name)
    }

    /// Whether the resource is the unit.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.ghost.is_empty()
    }
}

impl Ra for Res {
    fn op(&self, other: &Self) -> Self {
        Res {
            heap: self.heap.op(&other.heap),
            ghost: self.ghost.op(&other.ghost),
        }
    }

    fn pcore(&self) -> Option<Self> {
        Some(Res {
            heap: self.heap.pcore().unwrap_or_default(),
            ghost: self.ghost.pcore().unwrap_or_default(),
        })
    }

    fn valid(&self) -> bool {
        self.heap.valid() && self.ghost.valid()
    }

    fn included_in(&self, other: &Self) -> bool {
        self.heap.included_in(&other.heap) && self.ghost.included_in(&other.ghost)
    }
}

impl UnitRa for Res {
    fn unit() -> Res {
        Res::empty()
    }
}

/// A world: the owned resource plus the environment's frame.
///
/// Invariant (checked by [`World::is_coherent`], maintained by all
/// constructors in this crate): `own ⋅ frame` is valid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct World {
    /// The resource owned by the assertion under evaluation.
    pub own: Res,
    /// Everything owned by the rest of the system.
    pub frame: Res,
}

impl World {
    /// Creates a world, returning `None` when the total would be invalid.
    pub fn new(own: Res, frame: Res) -> Option<World> {
        let w = World { own, frame };
        if w.is_coherent() {
            Some(w)
        } else {
            None
        }
    }

    /// A world with an empty frame.
    pub fn solo(own: Res) -> World {
        World {
            own,
            frame: Res::empty(),
        }
    }

    /// The total resource `own ⋅ frame`.
    pub fn total(&self) -> Res {
        self.own.op(&self.frame)
    }

    /// Whether the world invariant holds.
    pub fn is_coherent(&self) -> bool {
        self.total().valid()
    }

    /// The *combined* heap value visible at `l` (owned or framed) — what
    /// heap-dependent expressions read.
    pub fn heap_value(&self, l: Loc) -> Option<Val> {
        self.total().value_at(l).cloned()
    }

    /// Replaces the frame (environment interference). Returns `None` if
    /// the new frame is incompatible.
    pub fn with_frame(&self, frame: Res) -> Option<World> {
        World::new(self.own.clone(), frame)
    }

    /// Replaces the owned part (an update). Returns `None` if
    /// incompatible with the current frame.
    pub fn with_own(&self, own: Res) -> Option<World> {
        World::new(own, self.frame.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_algebra::law_assoc;

    fn l(n: u64) -> Loc {
        Loc(n)
    }

    #[test]
    fn ghost_camera_mismatch_is_invalid() {
        let a = GhostVal::Frac(Frac::new(Q::HALF));
        let b = GhostVal::AgreeVal(Agree::new(Val::int(1)));
        assert!(!a.op(&b).valid());
        assert_eq!(a.op(&b).kind(), None);
    }

    #[test]
    fn ghost_same_camera_composes() {
        let a = GhostVal::Frac(Frac::new(Q::HALF));
        assert!(a.op(&a).valid());
        assert_eq!(a.op(&a), GhostVal::Frac(Frac::new(Q::ONE)));
    }

    #[test]
    fn res_is_an_ra() {
        let r1 = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(1));
        let r2 = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(1));
        let r3 = Res::ghost(GhostName(0), GhostVal::Frac(Frac::new(Q::HALF)));
        assert!(r1.op(&r2).valid());
        assert!(!r1.op(&r2).op(&r2).valid());
        assert!(law_assoc(&r1, &r2, &r3).ok());
        assert!(r1.included_in(&r1.op(&r3)));
    }

    #[test]
    fn disagreeing_values_invalid() {
        let r1 = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(1));
        let r2 = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(2));
        assert!(!r1.op(&r2).valid());
    }

    #[test]
    fn perm_accounting() {
        let r = Res::points_to(l(3), DFrac::own(Q::HALF), Val::bool(true));
        assert_eq!(r.perm_at(l(3)), Q::HALF);
        assert_eq!(r.perm_at(l(4)), Q::ZERO);
        assert!(r.reads_at(l(3)));
        assert_eq!(r.value_at(l(3)), Some(&Val::bool(true)));
    }

    #[test]
    fn world_coherence() {
        let own = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(7));
        let good_frame = Res::points_to(l(0), DFrac::own(Q::HALF), Val::int(7));
        let bad_frame = Res::points_to(l(0), DFrac::FULL, Val::int(7));
        assert!(World::new(own.clone(), good_frame).is_some());
        assert!(World::new(own.clone(), bad_frame).is_none());
        let w = World::solo(own);
        assert_eq!(w.heap_value(l(0)), Some(Val::int(7)));
        assert_eq!(w.heap_value(l(9)), None);
    }

    #[test]
    fn heap_value_sees_the_frame() {
        let own = Res::empty();
        let frame = Res::points_to(l(1), DFrac::FULL, Val::int(5));
        let w = World::new(own, frame).unwrap();
        // The combined view exposes the framed cell — this is exactly
        // what makes naive heap reads unstable.
        assert_eq!(w.heap_value(l(1)), Some(Val::int(5)));
    }

    #[test]
    fn core_of_res_keeps_discarded_and_agree() {
        let mut r = Res::points_to(l(0), DFrac::discarded(), Val::int(1));
        r.ghost
            .insert(GhostName(1), GhostVal::AgreeVal(Agree::new(Val::int(2))));
        let core = r.pcore().unwrap();
        assert_eq!(core, r); // everything here is persistent
        let owned = Res::points_to(l(0), DFrac::FULL, Val::int(1));
        assert!(owned.pcore().unwrap().heap.is_empty());
    }
}
