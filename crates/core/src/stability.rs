//! The syntactic stable fragment and the fast stabilizer.
//!
//! Semantic stability ([`crate::eval::check_stable`]) quantifies over all
//! frames — exponential in the universe. The paper's answer is a
//! *syntactic* type system carving out a fragment whose members are
//! stable by construction; [`syntactically_stable`] implements it, and
//! the test suite cross-checks it against the semantic notion (soundness:
//! syntactic ⟹ semantic).
//!
//! [`stabilize_fast`] is the companion *syntactic stabilizer*: a linear
//! traversal computing a stable strengthening of any assertion, used by
//! the automated-verifier layer where the semantic `⌊·⌋` would be too
//! expensive (this trade-off is experiment F2 in EXPERIMENTS.md).

use crate::assert::Assert;
use daenerys_algebra::Ra;

/// Whether the assertion is in the syntactic stable fragment.
///
/// Membership guarantees semantic stability: the assertion's truth is
/// unaffected by environment interference (frame replacement). The
/// analysis is conservative — `false` means "not known stable".
///
/// The interesting clauses:
///
/// * pure terms are stable iff they are **read-free** — heap-dependent
///   expressions consult the combined heap and are unstable in general;
/// * [`Assert::Framed`] is always stable: if every read is covered by
///   owned permission, the owned agreement chunks pin the read values
///   under any frame;
/// * permission introspection is stable (it inspects only the owned
///   resource) even though it is not monotone;
/// * `⌊P⌋`, `⌈P⌉` and `|==> P`-free connectives of stable parts are
///   stable; wands are **not** (the world-bounded wand consults the
///   frame's decompositions).
pub fn syntactically_stable(p: &Assert) -> bool {
    use Assert::*;
    match p {
        Pure(t) | WellDef(t) => !t.has_read(),
        Framed(_) => true,
        Emp => true,
        PointsTo(l, _, v) => !l.has_read() && !v.has_read(),
        Own(..) => true,
        PermGe(l, _) | PermEq(l, _) => !l.has_read(),
        Stabilize(_) | Destab(_) => true,
        And(p, q) | Or(p, q) | Sep(p, q) | Impl(p, q) => {
            syntactically_stable(p) && syntactically_stable(q)
        }
        Forall(_, _, p) | Exists(_, _, p) | Later(p) | Persistently(p) | BUpd(p) => {
            syntactically_stable(p)
        }
        Wand(..) => false,
    }
}

/// The atomic subassertions outside the syntactic stable fragment — the
/// *provenance* of a `false` answer from [`syntactically_stable`].
///
/// Returns the offending leaves in left-to-right order: heap-reading
/// pure/well-definedness/points-to/introspection atoms and whole wands
/// (wands are opaque to the judgment). Connectives never appear
/// themselves; modalities that restore stability (`⌊·⌋`, `⌈·⌉`)
/// contribute nothing. The list is empty iff the assertion is
/// syntactically stable.
pub fn unstable_atoms(p: &Assert) -> Vec<Assert> {
    fn walk(p: &Assert, out: &mut Vec<Assert>) {
        use Assert::*;
        match p {
            Pure(t) | WellDef(t) => {
                if t.has_read() {
                    out.push(p.clone());
                }
            }
            Framed(_) | Emp | Own(..) | Stabilize(_) | Destab(_) => {}
            PointsTo(l, _, v) => {
                if l.has_read() || v.has_read() {
                    out.push(p.clone());
                }
            }
            PermGe(l, _) | PermEq(l, _) => {
                if l.has_read() {
                    out.push(p.clone());
                }
            }
            And(a, b) | Or(a, b) | Sep(a, b) | Impl(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Forall(_, _, a) | Exists(_, _, a) | Later(a) | Persistently(a) | BUpd(a) => {
                walk(a, out)
            }
            Wand(..) => out.push(p.clone()),
        }
    }
    let mut out = Vec::new();
    walk(p, &mut out);
    out
}

/// Whether the assertion is syntactically *persistent* (entails its own
/// `□`): it describes only core (duplicable) resources.
pub fn syntactically_persistent(p: &Assert) -> bool {
    use Assert::*;
    match p {
        Pure(t) | WellDef(t) => !t.has_read(),
        Framed(_) => false, // framing depends on owned non-core permission
        Emp => true,
        PointsTo(_, dq, _) => dq.pcore().as_ref() == Some(dq),
        Own(_, a) => a.is_core(),
        PermGe(..) | PermEq(..) => false,
        Persistently(_) => true,
        And(p, q) | Or(p, q) | Sep(p, q) => {
            syntactically_persistent(p) && syntactically_persistent(q)
        }
        Forall(_, _, p) | Exists(_, _, p) | Later(p) => syntactically_persistent(p),
        Impl(..) | Wand(..) | BUpd(_) | Stabilize(_) | Destab(_) => false,
    }
}

/// Whether `□ P ⊢ P` is known to hold — a *stricter* condition than
/// [`syntactically_persistent`] in the non-affine destabilized logic:
/// `emp` is intro-persistent (`emp ⊢ □ emp`) but **not** elim-persistent
/// (`□ emp` holds whenever the owned core is empty, which says nothing
/// about the resource itself).
pub fn syntactically_elim_persistent(p: &Assert) -> bool {
    use Assert::*;
    match p {
        Emp => false,
        And(p, q) | Or(p, q) | Sep(p, q) => {
            syntactically_elim_persistent(p) && syntactically_elim_persistent(q)
        }
        Forall(_, _, p) | Exists(_, _, p) | Later(p) => syntactically_elim_persistent(p),
        Persistently(_) => true,
        _ => syntactically_persistent(p),
    }
}

/// Computes a *stable strengthening* of `p` in one linear pass.
///
/// Guarantees (checked by the test suite):
///
/// * the result is syntactically stable;
/// * the result entails `⌊p⌋` (it is a sound under-approximation of the
///   semantic stabilizer).
///
/// The key clause is the IDF *self-framing* transformation: an unstable
/// pure fact `⌜t⌝` is strengthened to `framed(t) ∧ ⌜t⌝` — the fact plus
/// the permissions pinning every heap read in it.
pub fn stabilize_fast(p: &Assert) -> Assert {
    use Assert::*;
    if syntactically_stable(p) {
        return p.clone();
    }
    match p {
        Pure(t) => Assert::and(Framed(t.clone()), Pure(t.clone())),
        WellDef(t) => Assert::and(Framed(t.clone()), WellDef(t.clone())),
        PointsTo(..) | PermGe(..) | PermEq(..) => {
            // Unstable only through reads in the terms; pin them.
            Assert::and(Assert::Stabilize(Box::new(p.clone())), Assert::truth())
        }
        And(a, b) => Assert::and(stabilize_fast(a), stabilize_fast(b)),
        Or(a, b) => Assert::or(stabilize_fast(a), stabilize_fast(b)),
        Sep(a, b) => Assert::sep(stabilize_fast(a), stabilize_fast(b)),
        Forall(x, dom, a) => Forall(x.clone(), dom.clone(), Box::new(stabilize_fast(a))),
        Exists(x, dom, a) => Exists(x.clone(), dom.clone(), Box::new(stabilize_fast(a))),
        Later(a) => Assert::later(stabilize_fast(a)),
        Persistently(a) => Assert::persistently(stabilize_fast(a)),
        BUpd(a) => Assert::bupd(stabilize_fast(a)),
        // No distribution law is available: fall back to the semantic
        // modality (still stable, but expensive to evaluate).
        _ => Assert::stabilize(p.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{check_stable, entails};
    use crate::term::Term;
    use crate::universe::UniverseSpec;
    use daenerys_algebra::{DFrac, Q};
    use daenerys_heaplang::Loc;

    fn read01() -> Assert {
        Assert::read_eq(Term::loc(Loc(0)), Term::int(1))
    }

    fn corpus() -> Vec<Assert> {
        let l = Term::loc(Loc(0));
        vec![
            Assert::truth(),
            Assert::falsity(),
            Assert::Emp,
            read01(),
            Assert::WellDef(Term::read(l.clone())),
            Assert::Framed(Term::read(l.clone())),
            Assert::points_to(l.clone(), Term::int(1)),
            Assert::points_to_frac(l.clone(), Q::HALF, Term::int(0)),
            Assert::PointsTo(l.clone(), DFrac::discarded(), Term::int(1)),
            Assert::PermGe(l.clone(), Q::HALF),
            Assert::PermEq(l.clone(), Q::ONE),
            Assert::sep(
                Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1)),
                read01(),
            ),
            Assert::and(read01(), Assert::truth()),
            Assert::or(read01(), Assert::Emp),
            Assert::later(read01()),
            Assert::persistently(Assert::Emp),
            Assert::stabilize(read01()),
            Assert::destab(read01()),
            Assert::bupd(Assert::points_to(l.clone(), Term::int(1))),
            Assert::wand(
                Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1)),
                Assert::points_to(l, Term::int(1)),
            ),
        ]
    }

    /// Soundness of the syntactic judgment: syntactically stable ⟹
    /// semantically stable over the tiny universe.
    #[test]
    fn syntactic_stability_is_sound() {
        let uni = UniverseSpec::tiny().build();
        for p in corpus() {
            if syntactically_stable(&p) {
                assert!(
                    check_stable(&p, &uni, 2).is_ok(),
                    "syntactically stable but semantically unstable: {p}"
                );
            }
        }
    }

    /// The fast stabilizer produces stable strengthenings of ⌊p⌋.
    #[test]
    fn stabilize_fast_is_sound() {
        let uni = UniverseSpec::tiny().build();
        for p in corpus() {
            let s = stabilize_fast(&p);
            assert!(
                check_stable(&s, &uni, 2).is_ok(),
                "stabilize_fast produced an unstable result for {p}"
            );
            assert!(
                entails(&s, &Assert::stabilize(p.clone()), &uni, 2).is_ok(),
                "stabilize_fast result does not entail ⌊{p}⌋"
            );
        }
    }

    /// On the canonical IDF example the fast stabilizer is *precise*:
    /// `framed(!l = v) ∧ ⌜!l = v⌝` is equivalent to `⌊!l = v⌝⌋` given the
    /// permission.
    #[test]
    fn self_framing_matches_semantic_stabilization() {
        let uni = UniverseSpec::tiny().build();
        let read = read01();
        let fast = stabilize_fast(&read);
        // fast = framed ∧ read; under a half points-to both coincide.
        let half = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let with_perm_fast = Assert::sep(half.clone(), fast);
        let with_perm_sem = Assert::sep(half, Assert::stabilize(read));
        assert!(entails(&with_perm_fast, &with_perm_sem, &uni, 2).is_ok());
        assert!(entails(&with_perm_sem, &with_perm_fast, &uni, 2).is_ok());
    }

    /// Persistence judgment is sound: □-free persistent assertions entail
    /// their own persistently.
    #[test]
    fn syntactic_persistence_is_sound() {
        let uni = UniverseSpec::tiny().build();
        for p in corpus() {
            if syntactically_persistent(&p) {
                assert!(
                    entails(&p, &Assert::persistently(p.clone()), &uni, 2).is_ok(),
                    "syntactically persistent but □-intro fails: {p}"
                );
            }
        }
    }

    /// `unstable_atoms` is exactly the provenance of the syntactic
    /// judgment: empty iff stable, and every reported atom is itself
    /// syntactically unstable.
    #[test]
    fn unstable_atoms_explain_the_judgment() {
        for p in corpus() {
            let atoms = unstable_atoms(&p);
            assert_eq!(
                atoms.is_empty(),
                syntactically_stable(&p),
                "provenance disagrees with the judgment on {p}"
            );
            for a in &atoms {
                assert!(
                    !syntactically_stable(a),
                    "reported atom {a} of {p} is stable"
                );
            }
        }
        // Provenance points at the leaf, not the connective.
        let l = Term::loc(Loc(0));
        let p = Assert::sep(Assert::points_to_frac(l, Q::HALF, Term::int(1)), read01());
        assert_eq!(unstable_atoms(&p), vec![read01()]);
    }

    #[test]
    fn classification_examples() {
        assert!(syntactically_stable(&Assert::truth()));
        assert!(!syntactically_stable(&read01()));
        assert!(syntactically_stable(&Assert::stabilize(read01())));
        assert!(syntactically_stable(&Assert::PermEq(
            Term::loc(Loc(0)),
            Q::HALF
        )));
        assert!(syntactically_persistent(&Assert::PointsTo(
            Term::loc(Loc(0)),
            DFrac::discarded(),
            Term::int(1)
        )));
        assert!(!syntactically_persistent(&Assert::points_to(
            Term::loc(Loc(0)),
            Term::int(1)
        )));
    }
}
