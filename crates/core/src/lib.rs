//! # `daenerys-core` — the destabilized Iris base logic
//!
//! Executable reproduction of the logic of *Destabilizing Iris* (PLDI
//! 2025): an Iris-style separation logic whose assertions need not be
//! stable under environment interference. See `DESIGN.md` at the
//! repository root for the full reproduction methodology.
//!
//! The crate has three layers:
//!
//! 1. **Model** ([`world`], [`term`], [`mod@assert`], [`eval`]): propositions
//!    are interpreted over worlds (owned resource + environment frame);
//!    entailment is model-checked over finite universes ([`universe`]).
//! 2. **Stability** ([`stability`]): the semantic stability check, the
//!    syntactic stable fragment, and the stabilization modalities.
//! 3. **Proof kernel** ([`proof`]): entailments as abstract values
//!    constructible only through the proof rules — the LCF-style
//!    replacement for the missing proof assistant.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assert;
pub mod check;
pub mod eval;
pub mod ghost;
pub mod proof;
pub mod stability;
pub mod term;
pub mod universe;
pub mod world;

pub use assert::Assert;
pub use eval::{
    check_stable, entails, equivalent, holds, update_admissible, Counterexample, EvalCtx,
};
pub use ghost::{ContribCounter, ExclToken, MonoCounter};
pub use proof::auto::auto_entails;
pub use stability::{
    stabilize_fast, syntactically_elim_persistent, syntactically_persistent, syntactically_stable,
    unstable_atoms,
};
pub use term::{eval_term, term_framed, Env, Term, TermError, TermOutcome};
pub use universe::{UniverseSpec, WorldUniverse};
pub use world::{CameraKind, GhostFrag, GhostName, GhostVal, HeapCell, HeapFrag, Res, World};
