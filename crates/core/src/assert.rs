//! The assertion language of the destabilized logic.
//!
//! This is the deep embedding of Daenerys propositions. It contains the
//! full Iris base-logic connectives (pure facts, the BI connectives,
//! quantifiers over finite domains, `later`, `persistently`, the basic
//! update) *plus* the destabilized additions:
//!
//! * [`Assert::Pure`] over terms with **heap reads** (heap-dependent
//!   expressions), together with [`Assert::WellDef`] and
//!   [`Assert::Framed`] for the IDF well-definedness side conditions;
//! * **permission introspection** [`Assert::PermGe`]/[`Assert::PermEq`]
//!   (non-monotone, Viper's `perm(x.f)`);
//! * the **stabilization modalities**: `⌊P⌋` ([`Assert::Stabilize`], the
//!   greatest stable strengthening) and `⌈P⌉` ([`Assert::Destab`], the
//!   least stable weakening).

use crate::term::Term;
use crate::world::{GhostName, GhostVal};
use daenerys_algebra::{DFrac, Q};
use daenerys_heaplang::Val;
use std::fmt;

/// A proposition of the destabilized logic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Assert {
    /// A pure fact: the term evaluates (in the current world!) to `true`.
    Pure(Term),
    /// The term evaluates without error (dangling reads fail this).
    WellDef(Term),
    /// Every heap read in the term is covered by owned permission.
    Framed(Term),
    /// The owned resource is the unit.
    Emp,
    /// Conjunction.
    And(Box<Assert>, Box<Assert>),
    /// Disjunction.
    Or(Box<Assert>, Box<Assert>),
    /// (Same-world) implication.
    Impl(Box<Assert>, Box<Assert>),
    /// Separating conjunction.
    Sep(Box<Assert>, Box<Assert>),
    /// Separating implication (magic wand).
    Wand(Box<Assert>, Box<Assert>),
    /// Universal quantification over a finite value domain.
    Forall(String, Vec<Val>, Box<Assert>),
    /// Existential quantification over a finite value domain.
    Exists(String, Vec<Val>, Box<Assert>),
    /// The later modality `▷ P`.
    Later(Box<Assert>),
    /// The persistence modality `□ P`.
    Persistently(Box<Assert>),
    /// The basic update modality `|==> P`.
    BUpd(Box<Assert>),
    /// Points-to `l ↦{dq} v` (terms for both location and value).
    PointsTo(Term, DFrac, Term),
    /// Ghost ownership `own γ a`.
    Own(GhostName, GhostVal),
    /// Permission introspection: owned permission at `l` is at least `q`.
    PermGe(Term, Q),
    /// Exact permission introspection.
    PermEq(Term, Q),
    /// Stabilization `⌊P⌋`: `P` holds under every compatible frame.
    Stabilize(Box<Assert>),
    /// Destabilization `⌈P⌉`: `P` holds under some compatible frame.
    Destab(Box<Assert>),
}

impl Assert {
    /// The always-true proposition.
    pub fn truth() -> Assert {
        Assert::Pure(Term::bool(true))
    }

    /// The always-false proposition.
    pub fn falsity() -> Assert {
        Assert::Pure(Term::bool(false))
    }

    /// Pure equality of two terms.
    pub fn eq(a: Term, b: Term) -> Assert {
        Assert::Pure(Term::eq(a, b))
    }

    /// `P ∧ Q`.
    pub fn and(p: Assert, q: Assert) -> Assert {
        Assert::And(Box::new(p), Box::new(q))
    }

    /// `P ∨ Q`.
    pub fn or(p: Assert, q: Assert) -> Assert {
        Assert::Or(Box::new(p), Box::new(q))
    }

    /// `P → Q`.
    pub fn impl_(p: Assert, q: Assert) -> Assert {
        Assert::Impl(Box::new(p), Box::new(q))
    }

    /// `P ∗ Q`.
    pub fn sep(p: Assert, q: Assert) -> Assert {
        Assert::Sep(Box::new(p), Box::new(q))
    }

    /// Iterated separating conjunction (right-nested; `Emp` if empty).
    pub fn sep_all(ps: impl IntoIterator<Item = Assert>) -> Assert {
        let mut items: Vec<Assert> = ps.into_iter().collect();
        match items.pop() {
            None => Assert::Emp,
            Some(last) => items
                .into_iter()
                .rev()
                .fold(last, |acc, p| Assert::sep(p, acc)),
        }
    }

    /// `P −∗ Q`.
    pub fn wand(p: Assert, q: Assert) -> Assert {
        Assert::Wand(Box::new(p), Box::new(q))
    }

    /// `∀ x ∈ dom. P`.
    pub fn forall(x: &str, dom: Vec<Val>, p: Assert) -> Assert {
        Assert::Forall(x.to_string(), dom, Box::new(p))
    }

    /// `∃ x ∈ dom. P`.
    pub fn exists(x: &str, dom: Vec<Val>, p: Assert) -> Assert {
        Assert::Exists(x.to_string(), dom, Box::new(p))
    }

    /// `▷ P`.
    pub fn later(p: Assert) -> Assert {
        Assert::Later(Box::new(p))
    }

    /// `□ P`.
    pub fn persistently(p: Assert) -> Assert {
        Assert::Persistently(Box::new(p))
    }

    /// `|==> P`.
    pub fn bupd(p: Assert) -> Assert {
        Assert::BUpd(Box::new(p))
    }

    /// `l ↦ v` with full permission.
    pub fn points_to(l: Term, v: Term) -> Assert {
        Assert::PointsTo(l, DFrac::FULL, v)
    }

    /// `l ↦{q} v` with fractional permission.
    pub fn points_to_frac(l: Term, q: Q, v: Term) -> Assert {
        Assert::PointsTo(l, DFrac::own(q), v)
    }

    /// `⌊P⌋`.
    pub fn stabilize(p: Assert) -> Assert {
        Assert::Stabilize(Box::new(p))
    }

    /// `⌈P⌉`.
    pub fn destab(p: Assert) -> Assert {
        Assert::Destab(Box::new(p))
    }

    /// The heap-dependent assertion `⟦!l⟧ = v` — reads the combined heap.
    pub fn read_eq(l: Term, v: Term) -> Assert {
        Assert::Pure(Term::eq(Term::read(l), v))
    }

    /// Substitutes a value for a logic variable throughout.
    pub fn subst(&self, x: &str, v: &Val) -> Assert {
        use Assert::*;
        match self {
            Pure(t) => Pure(t.subst(x, v)),
            WellDef(t) => WellDef(t.subst(x, v)),
            Framed(t) => Framed(t.subst(x, v)),
            Emp => Emp,
            And(p, q) => Assert::and(p.subst(x, v), q.subst(x, v)),
            Or(p, q) => Assert::or(p.subst(x, v), q.subst(x, v)),
            Impl(p, q) => Assert::impl_(p.subst(x, v), q.subst(x, v)),
            Sep(p, q) => Assert::sep(p.subst(x, v), q.subst(x, v)),
            Wand(p, q) => Assert::wand(p.subst(x, v), q.subst(x, v)),
            Forall(y, dom, p) => {
                if y == x {
                    self.clone()
                } else {
                    Forall(y.clone(), dom.clone(), Box::new(p.subst(x, v)))
                }
            }
            Exists(y, dom, p) => {
                if y == x {
                    self.clone()
                } else {
                    Exists(y.clone(), dom.clone(), Box::new(p.subst(x, v)))
                }
            }
            Later(p) => Assert::later(p.subst(x, v)),
            Persistently(p) => Assert::persistently(p.subst(x, v)),
            BUpd(p) => Assert::bupd(p.subst(x, v)),
            PointsTo(l, dq, t) => PointsTo(l.subst(x, v), *dq, t.subst(x, v)),
            Own(g, a) => Own(*g, a.clone()),
            PermGe(l, q) => PermGe(l.subst(x, v), *q),
            PermEq(l, q) => PermEq(l.subst(x, v), *q),
            Stabilize(p) => Assert::stabilize(p.subst(x, v)),
            Destab(p) => Assert::destab(p.subst(x, v)),
        }
    }

    /// Whether the logic variable occurs free in the assertion.
    pub fn mentions_var(&self, x: &str) -> bool {
        fn term_mentions(t: &Term, x: &str) -> bool {
            match t {
                Term::Var(y) => y == x,
                Term::Lit(_) => false,
                Term::Read(a) | Term::Not(a) => term_mentions(a, x),
                Term::Add(a, b)
                | Term::Sub(a, b)
                | Term::Mul(a, b)
                | Term::Eq(a, b)
                | Term::Lt(a, b)
                | Term::Le(a, b)
                | Term::And(a, b)
                | Term::Or(a, b) => term_mentions(a, x) || term_mentions(b, x),
            }
        }
        use Assert::*;
        match self {
            Pure(t) | WellDef(t) | Framed(t) => term_mentions(t, x),
            Emp | Own(..) => false,
            And(p, q) | Or(p, q) | Impl(p, q) | Sep(p, q) | Wand(p, q) => {
                p.mentions_var(x) || q.mentions_var(x)
            }
            Forall(y, _, p) | Exists(y, _, p) => y != x && p.mentions_var(x),
            Later(p) | Persistently(p) | BUpd(p) | Stabilize(p) | Destab(p) => p.mentions_var(x),
            PointsTo(l, _, v) => term_mentions(l, x) || term_mentions(v, x),
            PermGe(l, _) | PermEq(l, _) => term_mentions(l, x),
        }
    }

    /// The number of connectives (used by the benchmark harness).
    pub fn size(&self) -> usize {
        use Assert::*;
        1 + match self {
            Pure(_) | WellDef(_) | Framed(_) | Emp | PointsTo(..) | Own(..) | PermGe(..)
            | PermEq(..) => 0,
            And(p, q) | Or(p, q) | Impl(p, q) | Sep(p, q) | Wand(p, q) => p.size() + q.size(),
            Forall(_, _, p)
            | Exists(_, _, p)
            | Later(p)
            | Persistently(p)
            | BUpd(p)
            | Stabilize(p)
            | Destab(p) => p.size(),
        }
    }
}

impl fmt::Display for Assert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Assert::*;
        match self {
            Pure(t) => write!(f, "⌜{}⌝", t),
            WellDef(t) => write!(f, "wd({})", t),
            Framed(t) => write!(f, "framed({})", t),
            Emp => write!(f, "emp"),
            And(p, q) => write!(f, "({} ∧ {})", p, q),
            Or(p, q) => write!(f, "({} ∨ {})", p, q),
            Impl(p, q) => write!(f, "({} → {})", p, q),
            Sep(p, q) => write!(f, "({} ∗ {})", p, q),
            Wand(p, q) => write!(f, "({} −∗ {})", p, q),
            Forall(x, dom, p) => write!(f, "(∀ {}∈[{}]. {})", x, dom.len(), p),
            Exists(x, dom, p) => write!(f, "(∃ {}∈[{}]. {})", x, dom.len(), p),
            Later(p) => write!(f, "▷{}", p),
            Persistently(p) => write!(f, "□{}", p),
            BUpd(p) => write!(f, "|==> {}", p),
            PointsTo(l, dq, v) => write!(f, "{} ↦{:?} {}", l, dq, v),
            Own(g, a) => write!(f, "own {} {:?}", g, a),
            PermGe(l, q) => write!(f, "perm({}) ≥ {}", l, q),
            PermEq(l, q) => write!(f, "perm({}) = {}", l, q),
            Stabilize(p) => write!(f, "⌊{}⌋", p),
            Destab(p) => write!(f, "⌈{}⌉", p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_heaplang::Loc;

    #[test]
    fn builders_compose() {
        let p = Assert::sep(
            Assert::points_to(Term::loc(Loc(0)), Term::int(1)),
            Assert::read_eq(Term::loc(Loc(0)), Term::int(1)),
        );
        assert_eq!(p.size(), 3);
        assert!(p.to_string().contains("↦"));
    }

    #[test]
    fn sep_all_of_empty_is_emp() {
        assert_eq!(Assert::sep_all([]), Assert::Emp);
        let one = Assert::truth();
        assert_eq!(Assert::sep_all([one.clone()]), one);
        assert_eq!(
            Assert::sep_all([one.clone(), one.clone(), one.clone()]).size(),
            5
        );
    }

    #[test]
    fn subst_respects_quantifier_shadowing() {
        let p = Assert::exists(
            "x",
            vec![Val::int(0)],
            Assert::eq(Term::var("x"), Term::var("y")),
        );
        let p2 = p.subst("y", &Val::int(3));
        assert_eq!(
            p2,
            Assert::exists(
                "x",
                vec![Val::int(0)],
                Assert::eq(Term::var("x"), Term::int(3)),
            )
        );
        // Shadowed binder: substituting x is the identity.
        assert_eq!(p.subst("x", &Val::int(9)), p);
    }

    #[test]
    fn display_is_nonempty() {
        for p in [
            Assert::truth(),
            Assert::Emp,
            Assert::stabilize(Assert::read_eq(Term::loc(Loc(0)), Term::int(1))),
            Assert::PermGe(Term::loc(Loc(0)), Q::HALF),
            Assert::bupd(Assert::later(Assert::persistently(Assert::truth()))),
        ] {
            assert!(!p.to_string().is_empty());
        }
    }
}
