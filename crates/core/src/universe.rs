//! Finite world universes for model-checking the logic.
//!
//! The Rocq artifact proves soundness once and for all; our executable
//! substitute *model-checks* every rule over finite samples of the
//! resource carrier. A [`WorldUniverse`] enumerates the resources built
//! from a small set of locations, values, fraction quanta, and ghost
//! cells, and provides the derived enumerations the semantics needs:
//! compatible frames (for the stabilization modality, wands and updates)
//! and exact resource splittings (for separating conjunction).

use crate::world::{CameraKind, GhostName, GhostVal, HeapCell, Res};
use daenerys_algebra::{Agree, Auth, DFrac, Excl, Frac, MaxNat, Ra, SumNat, Q};
use daenerys_heaplang::{Loc, Val};

/// A description of the finite carrier to model-check over.
#[derive(Clone, Debug)]
pub struct UniverseSpec {
    /// Locations that may appear in heap fragments.
    pub locs: Vec<Loc>,
    /// Values cells may hold.
    pub vals: Vec<Val>,
    /// Discardable-fraction quanta for permissions.
    pub dfracs: Vec<DFrac>,
    /// Ghost names with their cameras.
    pub ghosts: Vec<(GhostName, CameraKind)>,
    /// Budget for enumerating ghost camera elements.
    pub ghost_budget: usize,
}

impl UniverseSpec {
    /// A tiny universe: one location, two values, three permission
    /// quanta, no ghost state. Suitable for exhaustive checks involving
    /// nested wands.
    pub fn tiny() -> UniverseSpec {
        UniverseSpec {
            locs: vec![Loc(0)],
            vals: vec![Val::int(0), Val::int(1)],
            // The quanta must be closed enough under ⋅ that the FPU and
            // separating-conjunction witnesses exist: in particular the
            // mixed `Both` elements, without which discarding updates
            // are misjudged.
            dfracs: vec![
                DFrac::own(Q::HALF),
                DFrac::FULL,
                DFrac::discarded(),
                DFrac::Both(Q::HALF),
            ],
            ghosts: vec![],
            ghost_budget: 0,
        }
    }

    /// A small universe with a ghost cell of the given camera.
    pub fn with_ghost(kind: CameraKind) -> UniverseSpec {
        let mut s = UniverseSpec::tiny();
        s.ghosts = vec![(GhostName(0), kind)];
        s.ghost_budget = 2;
        s
    }

    /// A two-location universe (heavier; avoid combining with nested
    /// wands).
    pub fn two_locs() -> UniverseSpec {
        let mut s = UniverseSpec::tiny();
        s.locs = vec![Loc(0), Loc(1)];
        s
    }

    /// Enumerates the ghost elements of a camera kind.
    pub fn ghost_elems(&self, kind: CameraKind) -> Vec<GhostVal> {
        let b = self.ghost_budget as u64;
        match kind {
            CameraKind::ExclVal => self
                .vals
                .iter()
                .map(|v| GhostVal::ExclVal(Excl::new(v.clone())))
                .collect(),
            CameraKind::AgreeVal => self
                .vals
                .iter()
                .map(|v| GhostVal::AgreeVal(Agree::new(v.clone())))
                .collect(),
            CameraKind::Frac => vec![
                GhostVal::Frac(Frac::new(Q::HALF)),
                GhostVal::Frac(Frac::new(Q::ONE)),
            ],
            CameraKind::AuthNat => {
                let mut out = Vec::new();
                for n in 0..=b {
                    out.push(GhostVal::AuthNat(Auth::auth(SumNat(n))));
                    out.push(GhostVal::AuthNat(Auth::frag(SumNat(n))));
                    for m in 0..=b {
                        out.push(GhostVal::AuthNat(Auth::both(SumNat(n), SumNat(m))));
                    }
                }
                out
            }
            CameraKind::AuthMax => {
                let mut out = Vec::new();
                for n in 0..=b {
                    out.push(GhostVal::AuthMax(Auth::auth(MaxNat(n))));
                    out.push(GhostVal::AuthMax(Auth::frag(MaxNat(n))));
                    for m in 0..=b {
                        out.push(GhostVal::AuthMax(Auth::both(MaxNat(n), MaxNat(m))));
                    }
                }
                out
            }
        }
    }

    /// Builds the enumerated universe.
    pub fn build(&self) -> WorldUniverse {
        // Per-location cell options (None = absent).
        let mut cells: Vec<HeapCell> = Vec::new();
        for dq in &self.dfracs {
            for v in &self.vals {
                cells.push((*dq, Agree::new(v.clone())));
            }
        }

        let mut resources = vec![Res::empty()];
        for l in &self.locs {
            let mut next = Vec::new();
            for r in &resources {
                next.push(r.clone());
                for c in &cells {
                    let mut r2 = r.clone();
                    r2.heap.insert(*l, c.clone());
                    next.push(r2);
                }
            }
            resources = next;
        }
        for (name, kind) in &self.ghosts {
            let elems = self.ghost_elems(*kind);
            let mut next = Vec::new();
            for r in &resources {
                next.push(r.clone());
                for e in &elems {
                    let mut r2 = r.clone();
                    r2.ghost.insert(*name, e.clone());
                    next.push(r2);
                }
            }
            resources = next;
        }
        resources.retain(|r| r.valid());

        WorldUniverse {
            cells,
            ghost_cells: self
                .ghosts
                .iter()
                .map(|(n, k)| (*n, self.ghost_elems(*k)))
                .collect(),
            resources,
        }
    }
}

/// The enumerated universe: all valid resources over the spec's carrier.
#[derive(Clone, Debug)]
pub struct WorldUniverse {
    cells: Vec<HeapCell>,
    ghost_cells: Vec<(GhostName, Vec<GhostVal>)>,
    /// All valid resources, including the unit.
    pub resources: Vec<Res>,
}

impl WorldUniverse {
    /// Frames compatible with `own` (including the empty frame).
    pub fn frames_for<'a>(&'a self, own: &'a Res) -> impl Iterator<Item = &'a Res> + 'a {
        self.resources.iter().filter(move |f| own.op(f).valid())
    }

    /// Exact splittings of one heap cell *within the universe's quanta*:
    /// all pairs `(c1, c2)` of enumerated cells with `c1 ⋅ c2 = cell`,
    /// plus the two trivial splits.
    fn cell_splits(&self, cell: &HeapCell) -> Vec<(Option<HeapCell>, Option<HeapCell>)> {
        let mut out = vec![(Some(cell.clone()), None), (None, Some(cell.clone()))];
        for c1 in &self.cells {
            for c2 in &self.cells {
                if c1.op(c2) == *cell {
                    out.push((Some(c1.clone()), Some(c2.clone())));
                }
            }
        }
        out
    }

    fn ghost_splits(
        &self,
        name: GhostName,
        val: &GhostVal,
    ) -> Vec<(Option<GhostVal>, Option<GhostVal>)> {
        let mut out = vec![(Some(val.clone()), None), (None, Some(val.clone()))];
        if let Some((_, elems)) = self.ghost_cells.iter().find(|(n, _)| *n == name) {
            for e1 in elems {
                for e2 in elems {
                    if e1.op(e2) == *val {
                        out.push((Some(e1.clone()), Some(e2.clone())));
                    }
                }
            }
        }
        out
    }

    /// All splittings `res = r1 ⋅ r2` expressible within the universe's
    /// quanta. Complete relative to the enumerated carrier; the
    /// separating conjunction is interpreted against this enumeration.
    pub fn splits(&self, res: &Res) -> Vec<(Res, Res)> {
        let mut acc: Vec<(Res, Res)> = vec![(Res::empty(), Res::empty())];
        for (l, cell) in res.heap.iter() {
            let options = self.cell_splits(cell);
            let mut next = Vec::with_capacity(acc.len() * options.len());
            for (r1, r2) in &acc {
                for (c1, c2) in &options {
                    let mut n1 = r1.clone();
                    let mut n2 = r2.clone();
                    if let Some(c) = c1 {
                        n1.heap.insert(*l, c.clone());
                    }
                    if let Some(c) = c2 {
                        n2.heap.insert(*l, c.clone());
                    }
                    next.push((n1, n2));
                }
            }
            acc = next;
        }
        for (g, val) in res.ghost.iter() {
            let options = self.ghost_splits(*g, val);
            let mut next = Vec::with_capacity(acc.len() * options.len());
            for (r1, r2) in &acc {
                for (c1, c2) in &options {
                    let mut n1 = r1.clone();
                    let mut n2 = r2.clone();
                    if let Some(c) = c1 {
                        n1.ghost.insert(*g, c.clone());
                    }
                    if let Some(c) = c2 {
                        n2.ghost.insert(*g, c.clone());
                    }
                    next.push((n1, n2));
                }
            }
            acc = next;
        }
        // Deduplicate (trivial splits of singleton cells coincide with
        // enumerated ones).
        let mut seen: Vec<(Res, Res)> = Vec::with_capacity(acc.len());
        for s in acc {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }

    /// All coherent worlds (own, frame) in the universe.
    pub fn worlds(&self) -> Vec<crate::world::World> {
        let mut out = Vec::new();
        for own in &self.resources {
            for frame in self.frames_for(own) {
                out.push(crate::world::World {
                    own: own.clone(),
                    frame: frame.clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_universe_is_small_but_rich() {
        let uni = UniverseSpec::tiny().build();
        assert!(uni.resources.len() > 3);
        assert!(uni.resources.len() < 100);
        assert!(uni.resources.contains(&Res::empty()));
        // The full chunk is present.
        assert!(uni
            .resources
            .contains(&Res::points_to(Loc(0), DFrac::FULL, Val::int(0))));
    }

    #[test]
    fn splits_reconstruct_the_resource() {
        let uni = UniverseSpec::tiny().build();
        for r in &uni.resources {
            for (a, b) in uni.splits(r) {
                assert_eq!(a.op(&b), *r, "split does not recompose");
            }
        }
    }

    #[test]
    fn full_permission_splits_into_halves() {
        let uni = UniverseSpec::tiny().build();
        let full = Res::points_to(Loc(0), DFrac::FULL, Val::int(1));
        let half = Res::points_to(Loc(0), DFrac::own(Q::HALF), Val::int(1));
        let splits = uni.splits(&full);
        assert!(splits.iter().any(|(a, b)| *a == half && *b == half));
    }

    #[test]
    fn frames_keep_totals_valid() {
        let uni = UniverseSpec::tiny().build();
        let own = Res::points_to(Loc(0), DFrac::FULL, Val::int(0));
        for f in uni.frames_for(&own) {
            assert!(own.op(f).valid());
            // Full ownership excludes any conflicting frame at Loc 0.
            assert_eq!(f.perm_at(Loc(0)), Q::ZERO);
        }
    }

    #[test]
    fn ghost_universe_contains_auth_elements() {
        let uni = UniverseSpec::with_ghost(CameraKind::AuthNat).build();
        assert!(uni
            .resources
            .iter()
            .any(|r| r.ghost_at(GhostName(0)).is_some()));
    }

    #[test]
    fn worlds_are_coherent() {
        let uni = UniverseSpec::tiny().build();
        for w in uni.worlds() {
            assert!(w.is_coherent());
        }
    }
}
