//! The term language of assertions — including **heap-dependent
//! expressions**.
//!
//! Terms appear inside pure assertions, points-to assertions and
//! quantifier bodies. The destabilizing feature is [`Term::Read`]: a term
//! may dereference a location *directly*, reading from the combined
//! (owned ⋅ frame) heap of the current world, exactly like heap-dependent
//! expressions in implicit-dynamic-frames verifiers (`x.f` in Viper).
//!
//! Evaluation tracks which locations were read so the logic can decide
//! whether a term is *framed* (all reads covered by owned permission) —
//! the side condition under which heap-dependent assertions are stable.

use crate::world::World;
use daenerys_heaplang::{Loc, Val};
use std::collections::BTreeMap;
use std::fmt;

/// A variable environment for quantifiers.
pub type Env = BTreeMap<String, Val>;

/// Assertion-level terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A (logic-level) variable bound by a quantifier.
    Var(String),
    /// A literal value.
    Lit(Val),
    /// A heap read `!t` — the heap-dependent expression.
    Read(Box<Term>),
    /// Integer addition.
    Add(Box<Term>, Box<Term>),
    /// Integer subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Integer multiplication.
    Mul(Box<Term>, Box<Term>),
    /// Equality on comparable values.
    Eq(Box<Term>, Box<Term>),
    /// Integer less-than.
    Lt(Box<Term>, Box<Term>),
    /// Integer less-or-equal.
    Le(Box<Term>, Box<Term>),
    /// Boolean negation.
    Not(Box<Term>),
    /// Boolean conjunction.
    And(Box<Term>, Box<Term>),
    /// Boolean disjunction.
    Or(Box<Term>, Box<Term>),
}

#[allow(clippy::should_implement_trait)]
impl Term {
    /// A literal integer term.
    pub fn int(n: i64) -> Term {
        Term::Lit(Val::int(n))
    }

    /// A literal boolean term.
    pub fn bool(b: bool) -> Term {
        Term::Lit(Val::bool(b))
    }

    /// A literal location term.
    pub fn loc(l: Loc) -> Term {
        Term::Lit(Val::loc(l))
    }

    /// A variable term.
    pub fn var(x: &str) -> Term {
        Term::Var(x.to_string())
    }

    /// The heap read `!t`.
    pub fn read(t: Term) -> Term {
        Term::Read(Box::new(t))
    }

    /// `a = b`.
    pub fn eq(a: Term, b: Term) -> Term {
        Term::Eq(Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: Term, b: Term) -> Term {
        Term::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Term, b: Term) -> Term {
        Term::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Term, b: Term) -> Term {
        Term::Mul(Box::new(a), Box::new(b))
    }

    /// `a <= b`.
    pub fn le(a: Term, b: Term) -> Term {
        Term::Le(Box::new(a), Box::new(b))
    }

    /// `a < b`.
    pub fn lt(a: Term, b: Term) -> Term {
        Term::Lt(Box::new(a), Box::new(b))
    }

    /// Whether the term syntactically contains a heap read.
    pub fn has_read(&self) -> bool {
        match self {
            Term::Var(_) | Term::Lit(_) => false,
            Term::Read(_) => true,
            Term::Not(a) => a.has_read(),
            Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Eq(a, b)
            | Term::Lt(a, b)
            | Term::Le(a, b)
            | Term::And(a, b)
            | Term::Or(a, b) => a.has_read() || b.has_read(),
        }
    }

    /// Substitutes a value for a variable.
    pub fn subst(&self, x: &str, v: &Val) -> Term {
        match self {
            Term::Var(y) if y == x => Term::Lit(v.clone()),
            Term::Var(_) | Term::Lit(_) => self.clone(),
            Term::Read(t) => Term::read(t.subst(x, v)),
            Term::Not(t) => Term::Not(Box::new(t.subst(x, v))),
            Term::Add(a, b) => Term::add(a.subst(x, v), b.subst(x, v)),
            Term::Sub(a, b) => Term::sub(a.subst(x, v), b.subst(x, v)),
            Term::Mul(a, b) => Term::mul(a.subst(x, v), b.subst(x, v)),
            Term::Eq(a, b) => Term::eq(a.subst(x, v), b.subst(x, v)),
            Term::Lt(a, b) => Term::lt(a.subst(x, v), b.subst(x, v)),
            Term::Le(a, b) => Term::le(a.subst(x, v), b.subst(x, v)),
            Term::And(a, b) => Term::And(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
            Term::Or(a, b) => Term::Or(Box::new(a.subst(x, v)), Box::new(b.subst(x, v))),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(x) => write!(f, "{}", x),
            Term::Lit(v) => write!(f, "{}", v),
            Term::Read(t) => write!(f, "!{}", t),
            Term::Add(a, b) => write!(f, "({} + {})", a, b),
            Term::Sub(a, b) => write!(f, "({} - {})", a, b),
            Term::Mul(a, b) => write!(f, "({} * {})", a, b),
            Term::Eq(a, b) => write!(f, "({} = {})", a, b),
            Term::Lt(a, b) => write!(f, "({} < {})", a, b),
            Term::Le(a, b) => write!(f, "({} <= {})", a, b),
            Term::Not(a) => write!(f, "(not {})", a),
            Term::And(a, b) => write!(f, "({} && {})", a, b),
            Term::Or(a, b) => write!(f, "({} || {})", a, b),
        }
    }
}

/// Why a term failed to evaluate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TermError {
    /// An unbound logic variable.
    Unbound(String),
    /// A heap read of a location not present in the combined heap.
    DanglingRead(Loc),
    /// A read of something that is not a location.
    ReadOfNonLoc(Val),
    /// An operator applied at the wrong type.
    TypeError(String),
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermError::Unbound(x) => write!(f, "unbound variable {}", x),
            TermError::DanglingRead(l) => write!(f, "read of unmapped location {}", l),
            TermError::ReadOfNonLoc(v) => write!(f, "read of non-location {}", v),
            TermError::TypeError(m) => write!(f, "type error: {}", m),
        }
    }
}

impl std::error::Error for TermError {}

/// The result of evaluating a term: the value plus the locations read.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TermOutcome {
    /// The resulting value.
    pub value: Val,
    /// Locations dereferenced during evaluation, in order.
    pub reads: Vec<Loc>,
}

/// Evaluates a term in a world and environment, tracking heap reads.
///
/// Reads consult the **combined** heap (`own ⋅ frame`) — this is the
/// semantics of heap-dependent expressions and the source of
/// instability.
///
/// # Errors
///
/// See [`TermError`].
pub fn eval_term(t: &Term, w: &World, env: &Env) -> Result<TermOutcome, TermError> {
    let mut reads = Vec::new();
    let value = go(t, w, env, &mut reads)?;
    Ok(TermOutcome { value, reads })
}

fn go(t: &Term, w: &World, env: &Env, reads: &mut Vec<Loc>) -> Result<Val, TermError> {
    let int2 =
        |a: &Term, b: &Term, w: &World, env: &Env, reads: &mut Vec<Loc>, f: fn(i64, i64) -> Val| {
            let va = go(a, w, env, reads)?;
            let vb = go(b, w, env, reads)?;
            match (va.as_int(), vb.as_int()) {
                (Some(x), Some(y)) => Ok(f(x, y)),
                _ => Err(TermError::TypeError(format!(
                    "integer operator on {} and {}",
                    va, vb
                ))),
            }
        };
    match t {
        Term::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| TermError::Unbound(x.clone())),
        Term::Lit(v) => Ok(v.clone()),
        Term::Read(inner) => {
            let v = go(inner, w, env, reads)?;
            match v.as_loc() {
                Some(l) => {
                    reads.push(l);
                    w.heap_value(l).ok_or(TermError::DanglingRead(l))
                }
                None => Err(TermError::ReadOfNonLoc(v)),
            }
        }
        Term::Add(a, b) => int2(a, b, w, env, reads, |x, y| Val::int(x.wrapping_add(y))),
        Term::Sub(a, b) => int2(a, b, w, env, reads, |x, y| Val::int(x.wrapping_sub(y))),
        Term::Mul(a, b) => int2(a, b, w, env, reads, |x, y| Val::int(x.wrapping_mul(y))),
        Term::Lt(a, b) => int2(a, b, w, env, reads, |x, y| Val::bool(x < y)),
        Term::Le(a, b) => int2(a, b, w, env, reads, |x, y| Val::bool(x <= y)),
        Term::Eq(a, b) => {
            let va = go(a, w, env, reads)?;
            let vb = go(b, w, env, reads)?;
            if va.is_comparable() && vb.is_comparable() {
                Ok(Val::bool(va == vb))
            } else {
                Err(TermError::TypeError(
                    "equality on non-comparable values".into(),
                ))
            }
        }
        Term::Not(a) => {
            let v = go(a, w, env, reads)?;
            v.as_bool()
                .map(|b| Val::bool(!b))
                .ok_or_else(|| TermError::TypeError("not on non-boolean".into()))
        }
        Term::And(a, b) | Term::Or(a, b) => {
            let va = go(a, w, env, reads)?;
            let vb = go(b, w, env, reads)?;
            match (va.as_bool(), vb.as_bool()) {
                (Some(x), Some(y)) => Ok(Val::bool(if matches!(t, Term::And(..)) {
                    x && y
                } else {
                    x || y
                })),
                _ => Err(TermError::TypeError(
                    "boolean operator on non-booleans".into(),
                )),
            }
        }
    }
}

/// Whether all locations read by the term are covered by *owned*
/// permission — the IDF "framing" side condition. A framed term's value
/// is pinned by the owned agreement chunks, so assertions about it are
/// stable.
pub fn term_framed(t: &Term, w: &World, env: &Env) -> bool {
    match eval_term(t, w, env) {
        Ok(out) => out.reads.iter().all(|l| w.own.reads_at(*l)),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Res;
    use daenerys_algebra::{DFrac, Ra, Q};

    fn env() -> Env {
        Env::new()
    }

    #[test]
    fn arithmetic_terms() {
        let w = World::solo(Res::empty());
        let t = Term::add(Term::int(2), Term::mul(Term::int(3), Term::int(4)));
        assert_eq!(eval_term(&t, &w, &env()).unwrap().value, Val::int(14));
    }

    #[test]
    fn read_consults_combined_heap() {
        let own = Res::points_to(Loc(0), DFrac::own(Q::HALF), Val::int(7));
        let frame = Res::points_to(Loc(1), DFrac::FULL, Val::int(9));
        let w = World::new(own, frame).unwrap();
        let r0 = Term::read(Term::loc(Loc(0)));
        let r1 = Term::read(Term::loc(Loc(1)));
        assert_eq!(eval_term(&r0, &w, &env()).unwrap().value, Val::int(7));
        // A read of a *framed-only* cell succeeds — but is not framed.
        assert_eq!(eval_term(&r1, &w, &env()).unwrap().value, Val::int(9));
        assert!(term_framed(&r0, &w, &env()));
        assert!(!term_framed(&r1, &w, &env()));
    }

    #[test]
    fn dangling_read_is_an_error() {
        let w = World::solo(Res::empty());
        let t = Term::read(Term::loc(Loc(5)));
        assert_eq!(
            eval_term(&t, &w, &env()),
            Err(TermError::DanglingRead(Loc(5)))
        );
    }

    #[test]
    fn unbound_variable() {
        let w = World::solo(Res::empty());
        assert_eq!(
            eval_term(&Term::var("x"), &w, &env()),
            Err(TermError::Unbound("x".into()))
        );
        let mut e = env();
        e.insert("x".into(), Val::int(3));
        assert_eq!(
            eval_term(&Term::var("x"), &w, &e).unwrap().value,
            Val::int(3)
        );
    }

    #[test]
    fn nested_reads_tracked() {
        // l0 holds a pointer to l1.
        let own = Res::points_to(Loc(0), DFrac::FULL, Val::loc(Loc(1))).op(&Res::points_to(
            Loc(1),
            DFrac::FULL,
            Val::int(42),
        ));
        let w = World::solo(own);
        let t = Term::read(Term::read(Term::loc(Loc(0))));
        let out = eval_term(&t, &w, &env()).unwrap();
        assert_eq!(out.value, Val::int(42));
        assert_eq!(out.reads, vec![Loc(0), Loc(1)]);
        assert!(term_framed(&t, &w, &env()));
    }

    #[test]
    fn subst_and_has_read() {
        let t = Term::eq(Term::read(Term::var("l")), Term::int(1));
        assert!(t.has_read());
        let t2 = t.subst("l", &Val::loc(Loc(3)));
        assert_eq!(t2, Term::eq(Term::read(Term::loc(Loc(3))), Term::int(1)));
        assert!(!Term::var("l").has_read());
    }

    #[test]
    fn type_errors() {
        let w = World::solo(Res::empty());
        assert!(matches!(
            eval_term(&Term::add(Term::bool(true), Term::int(1)), &w, &env()),
            Err(TermError::TypeError(_))
        ));
        assert!(matches!(
            eval_term(&Term::read(Term::int(1)), &w, &env()),
            Err(TermError::ReadOfNonLoc(_))
        ));
    }
}
