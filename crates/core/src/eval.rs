//! The step-indexed semantic model of the destabilized logic.
//!
//! Propositions denote predicates over [`World`]s (owned resource +
//! environment frame) and step indices. The quantifications a proof
//! assistant discharges by proof ("for all frames", "there is a split")
//! are interpreted here over a finite [`WorldUniverse`], turning
//! entailment into a *model-checkable* relation: this is the substitution
//! for the missing proof-assistant infrastructure (see DESIGN.md).
//!
//! Key clauses (the destabilized parts):
//!
//! * pure terms may read the **combined** heap `own ⋅ frame`;
//! * `perm(l) ≥ q` inspects the owned resource non-monotonically;
//! * `⌊P⌋` quantifies over *all* compatible frames (stabilization);
//! * `⌈P⌉` asks for *some* compatible frame;
//! * `|==>` is frame-quantified, as in Iris: for every interference the
//!   environment could have applied, an owned update exists.

use crate::assert::Assert;
use crate::term::{eval_term, term_framed, Env};
use crate::universe::WorldUniverse;
use crate::world::{Res, World};
use daenerys_algebra::{Ra, StepIdx};
use daenerys_heaplang::Val;

/// Evaluation context: the universe interpreting the second-order
/// quantifications.
#[derive(Clone, Debug)]
pub struct EvalCtx<'a> {
    /// The finite carrier.
    pub uni: &'a WorldUniverse,
}

impl<'a> EvalCtx<'a> {
    /// Creates an evaluation context over the given universe.
    pub fn new(uni: &'a WorldUniverse) -> EvalCtx<'a> {
        EvalCtx { uni }
    }
}

/// Whether proposition `p` holds in world `w` at step index `n`.
pub fn holds(p: &Assert, w: &World, env: &Env, n: StepIdx, ctx: &EvalCtx<'_>) -> bool {
    match p {
        Assert::Pure(t) => matches!(
            eval_term(t, w, env).map(|o| o.value),
            Ok(Val::Lit(daenerys_heaplang::Lit::Bool(true)))
        ),
        Assert::WellDef(t) => eval_term(t, w, env).is_ok(),
        Assert::Framed(t) => term_framed(t, w, env),
        Assert::Emp => w.own.is_empty(),
        Assert::And(p1, p2) => holds(p1, w, env, n, ctx) && holds(p2, w, env, n, ctx),
        Assert::Or(p1, p2) => holds(p1, w, env, n, ctx) || holds(p2, w, env, n, ctx),
        Assert::Impl(p1, p2) => !holds(p1, w, env, n, ctx) || holds(p2, w, env, n, ctx),
        Assert::Sep(p1, p2) => ctx.uni.splits(&w.own).into_iter().any(|(r1, r2)| {
            let w1 = World {
                own: r1.clone(),
                frame: r2.op(&w.frame),
            };
            let w2 = World {
                own: r2,
                frame: r1.op(&w.frame),
            };
            holds(p1, &w1, env, n, ctx) && holds(p2, &w2, env, n, ctx)
        }),
        // The *world-bounded* wand: the hypothesis resource is drawn from
        // a decomposition of the current frame (the environment hands it
        // over), so the total `own ⋅ frame` is conserved. The classical
        // frame-agnostic wand is recovered as `⌊P −∗ Q⌋`, which
        // quantifies over every compatible frame first.
        Assert::Wand(p1, p2) => ctx.uni.splits(&w.frame).into_iter().all(|(extra, rest)| {
            let w_hyp = World {
                own: extra.clone(),
                frame: w.own.op(&rest),
            };
            if !holds(p1, &w_hyp, env, n, ctx) {
                return true;
            }
            let w_conc = World {
                own: w.own.op(&extra),
                frame: rest,
            };
            holds(p2, &w_conc, env, n, ctx)
        }),
        Assert::Forall(x, dom, body) => dom.iter().all(|v| {
            let mut env2 = env.clone();
            env2.insert(x.clone(), v.clone());
            holds(body, w, &env2, n, ctx)
        }),
        Assert::Exists(x, dom, body) => dom.iter().any(|v| {
            let mut env2 = env.clone();
            env2.insert(x.clone(), v.clone());
            holds(body, w, &env2, n, ctx)
        }),
        Assert::Later(body) => n == 0 || holds(body, w, env, n - 1, ctx),
        Assert::Persistently(body) => {
            let core = w.own.pcore().unwrap_or_else(Res::empty);
            let w2 = World {
                own: core,
                frame: w.frame.clone(),
            };
            holds(body, &w2, env, n, ctx)
        }
        Assert::BUpd(body) => ctx.uni.resources.iter().any(|own2| {
            update_admissible(&w.own, own2, ctx.uni)
                && holds(
                    body,
                    &World {
                        own: own2.clone(),
                        frame: w.frame.clone(),
                    },
                    env,
                    n,
                    ctx,
                )
        }),
        Assert::PointsTo(lt, dq, vt) => {
            let l = match eval_term(lt, w, env).ok().and_then(|o| o.value.as_loc()) {
                Some(l) => l,
                None => return false,
            };
            let v = match eval_term(vt, w, env) {
                Ok(o) => o.value,
                Err(_) => return false,
            };
            Res::points_to(l, *dq, v).included_in(&w.own)
        }
        Assert::Own(g, a) => Res::ghost(*g, a.clone()).included_in(&w.own),
        Assert::PermGe(lt, q) => match eval_term(lt, w, env).ok().and_then(|o| o.value.as_loc()) {
            Some(l) => w.own.perm_at(l) >= *q,
            None => false,
        },
        Assert::PermEq(lt, q) => match eval_term(lt, w, env).ok().and_then(|o| o.value.as_loc()) {
            Some(l) => w.own.perm_at(l) == *q,
            None => false,
        },
        Assert::Stabilize(body) => ctx.uni.frames_for(&w.own).all(|f| {
            holds(
                body,
                &World {
                    own: w.own.clone(),
                    frame: f.clone(),
                },
                env,
                n,
                ctx,
            )
        }),
        Assert::Destab(body) => ctx.uni.frames_for(&w.own).any(|f| {
            holds(
                body,
                &World {
                    own: w.own.clone(),
                    frame: f.clone(),
                },
                env,
                n,
                ctx,
            )
        }),
    }
}

/// Whether replacing `own` by `own2` is an admissible *basic update*:
///
/// 1. it is a frame-preserving update against every frame in the
///    universe (`∀f. valid(own ⋅ f) → valid(own2 ⋅ f)`), and
/// 2. it does not touch the physical heap's footprint or values — the
///    key set and agreed values of the heap fragment are preserved
///    (permissions may still change frame-preservingly, e.g. discarding).
///
/// Condition 2 is the stand-in for the authoritative heap element
/// `● σ` of `gen_heap`, which in Iris lives in the state interpretation
/// rather than the frame: without it, a ghost update could rewrite
/// heap values no physical store ever wrote.
pub fn update_admissible(own: &Res, own2: &Res, uni: &WorldUniverse) -> bool {
    // Heap footprint and agreed values preserved.
    if own.heap.len() != own2.heap.len() {
        return false;
    }
    for (l, (_, ag)) in own.heap.iter() {
        match own2.heap.get(l) {
            Some((_, ag2)) if ag2 == ag => {}
            _ => return false,
        }
    }
    // Frame preservation over the enumerated carrier.
    uni.resources
        .iter()
        .all(|f| !own.op(f).valid() || own2.op(f).valid())
}

/// A counterexample to a semantic entailment.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The world where the premise held and the conclusion failed.
    pub world: World,
    /// The step index.
    pub n: StepIdx,
}

/// Checks the semantic entailment `P ⊨ Q` over every world in the
/// universe and every step index up to `n_max`.
///
/// # Errors
///
/// Returns the first [`Counterexample`] found.
pub fn entails(
    p: &Assert,
    q: &Assert,
    uni: &WorldUniverse,
    n_max: StepIdx,
) -> Result<(), Counterexample> {
    let ctx = EvalCtx::new(uni);
    let env = Env::new();
    for w in uni.worlds() {
        for n in 0..=n_max {
            if holds(p, &w, &env, n, &ctx) && !holds(q, &w, &env, n, &ctx) {
                return Err(Counterexample { world: w, n });
            }
        }
    }
    Ok(())
}

/// Checks that `P` is *stable*: its truth is preserved under every
/// environment interference (frame replacement).
///
/// # Errors
///
/// Returns a counterexample world (with the frame that broke it) on
/// failure.
pub fn check_stable(p: &Assert, uni: &WorldUniverse, n_max: StepIdx) -> Result<(), Counterexample> {
    let ctx = EvalCtx::new(uni);
    let env = Env::new();
    for own in &uni.resources {
        for n in 0..=n_max {
            let frames: Vec<&Res> = uni.frames_for(own).collect();
            let holding: Vec<bool> = frames
                .iter()
                .map(|f| {
                    holds(
                        p,
                        &World {
                            own: own.clone(),
                            frame: (*f).clone(),
                        },
                        &env,
                        n,
                        &ctx,
                    )
                })
                .collect();
            // Stable = truth is frame-independent on the positive side:
            // if it holds under one compatible frame it holds under all.
            if holding.iter().any(|b| *b) && !holding.iter().all(|b| *b) {
                let bad = frames[holding.iter().position(|b| !*b).unwrap()];
                return Err(Counterexample {
                    world: World {
                        own: own.clone(),
                        frame: bad.clone(),
                    },
                    n,
                });
            }
        }
    }
    Ok(())
}

/// Convenience: whether `P` and `Q` are semantically equivalent over the
/// universe.
pub fn equivalent(p: &Assert, q: &Assert, uni: &WorldUniverse, n_max: StepIdx) -> bool {
    entails(p, q, uni, n_max).is_ok() && entails(q, p, uni, n_max).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert::Assert;
    use crate::term::Term;
    use crate::universe::UniverseSpec;
    use daenerys_algebra::{DFrac, Q};
    use daenerys_heaplang::Loc;

    fn uni() -> WorldUniverse {
        UniverseSpec::tiny().build()
    }

    #[test]
    fn pure_truth_everywhere() {
        let u = uni();
        assert!(entails(&Assert::truth(), &Assert::truth(), &u, 2).is_ok());
        assert!(entails(&Assert::falsity(), &Assert::truth(), &u, 2).is_ok());
        assert!(entails(&Assert::truth(), &Assert::falsity(), &u, 2).is_err());
    }

    #[test]
    fn points_to_entails_read() {
        // The hallmark destabilized rule: l ↦{1/2} v ⊢ ⟦!l⟧ = v.
        let u = uni();
        let p = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let q = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));
        assert!(entails(&p, &q, &u, 2).is_ok());
    }

    #[test]
    fn naked_read_is_unstable_framed_read_is_stable() {
        let u = uni();
        let read = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));
        // Without owning permission, the environment can change the value
        // (or deallocate): unstable.
        assert!(check_stable(&read, &u, 1).is_err());
        // Under a points-to, the agreement pins the value: stable.
        let framed = Assert::sep(
            Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1)),
            read.clone(),
        );
        assert!(check_stable(&framed, &u, 1).is_ok());
        // And the stabilization of the naked read is stable by
        // construction.
        assert!(check_stable(&Assert::stabilize(read), &u, 1).is_ok());
    }

    #[test]
    fn stabilize_is_a_strengthening() {
        let u = uni();
        let read = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));
        let stab = Assert::stabilize(read.clone());
        assert!(entails(&stab, &read, &u, 1).is_ok());
        assert!(entails(&read, &stab, &u, 1).is_err());
    }

    #[test]
    fn destab_is_a_weakening() {
        let u = uni();
        let read = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));
        let destab = Assert::destab(read.clone());
        assert!(entails(&read, &destab, &u, 1).is_ok());
        assert!(check_stable(&destab, &u, 1).is_ok());
    }

    #[test]
    fn perm_introspection_is_stable_but_not_monotone() {
        let u = uni();
        let perm = Assert::PermEq(Term::loc(Loc(0)), Q::HALF);
        assert!(check_stable(&perm, &u, 1).is_ok());
        // Non-monotone: the half chunk satisfies it, the full chunk does
        // not — so it does NOT follow from the full points-to.
        let full = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        assert!(entails(&full, &perm, &u, 1).is_err());
        let half = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let perm_ge = Assert::PermGe(Term::loc(Loc(0)), Q::HALF);
        assert!(entails(&half, &perm_ge, &u, 1).is_ok());
        assert!(entails(&full, &perm_ge, &u, 1).is_ok());
    }

    #[test]
    fn sep_splits_permissions() {
        let u = uni();
        let full = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        let half = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let split = Assert::sep(half.clone(), half.clone());
        assert!(entails(&full, &split, &u, 1).is_ok());
        assert!(entails(&split, &full, &u, 1).is_ok());
    }

    #[test]
    fn wand_modus_ponens() {
        let u = uni();
        let half = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let full = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        let w = Assert::wand(half.clone(), full.clone());
        // (half −∗ full) ∗ half ⊢ full
        assert!(entails(&Assert::sep(w, half.clone()), &full, &u, 1).is_ok());
    }

    #[test]
    fn later_and_loeb_shape() {
        let u = uni();
        let p = Assert::points_to(Term::loc(Loc(0)), Term::int(0));
        // P ⊢ ▷P (later is a weakening).
        assert!(entails(&p, &Assert::later(p.clone()), &u, 3).is_ok());
        // ▷P ⊬ P in general.
        assert!(entails(&Assert::later(p.clone()), &p, &u, 3).is_err());
        // But ▷⊥ holds at step 0 — check the index semantics directly.
        let ctx = EvalCtx::new(&u);
        let w = World::solo(Res::empty());
        assert!(holds(
            &Assert::later(Assert::falsity()),
            &w,
            &Env::new(),
            0,
            &ctx
        ));
    }

    #[test]
    fn bupd_cannot_rewrite_heap_values() {
        let u = uni();
        // Changing the agreed value is a physical write, not a ghost
        // update: l ↦ 1 ⊬ |==> l ↦ 0.
        let before = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        let after = Assert::bupd(Assert::points_to(Term::loc(Loc(0)), Term::int(0)));
        assert!(entails(&before, &after, &u, 1).is_err());
        // A half permission cannot be upgraded to full either.
        let half = Assert::points_to_frac(Term::loc(Loc(0)), Q::HALF, Term::int(1));
        let upgrade = Assert::bupd(Assert::points_to(Term::loc(Loc(0)), Term::int(1)));
        assert!(entails(&half, &upgrade, &u, 1).is_err());
    }

    #[test]
    fn bupd_allows_discarding_permissions() {
        let u = uni();
        // Persisting a points-to (Iris's `pointsto_persist`): any owned
        // fraction may be discarded.
        let before = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        let after = Assert::bupd(Assert::PointsTo(
            Term::loc(Loc(0)),
            DFrac::discarded(),
            Term::int(1),
        ));
        assert!(entails(&before, &after, &u, 1).is_ok());
    }

    #[test]
    fn bupd_updates_exclusive_ghost_state() {
        use crate::world::{CameraKind, GhostName, GhostVal};
        use daenerys_algebra::Excl;
        let u = UniverseSpec::with_ghost(CameraKind::ExclVal).build();
        let g = GhostName(0);
        let before = Assert::Own(g, GhostVal::ExclVal(Excl::new(Val::int(0))));
        let after = Assert::bupd(Assert::Own(g, GhostVal::ExclVal(Excl::new(Val::int(1)))));
        // Exclusive ghost state updates freely.
        assert!(entails(&before, &after, &u, 1).is_ok());
        // But agreement ghost state cannot change (it is duplicable, so
        // a frame may hold a copy).
        let u2 = UniverseSpec::with_ghost(CameraKind::AgreeVal).build();
        use daenerys_algebra::Agree;
        let ag0 = Assert::Own(g, GhostVal::AgreeVal(Agree::new(Val::int(0))));
        let ag1 = Assert::bupd(Assert::Own(g, GhostVal::AgreeVal(Agree::new(Val::int(1)))));
        assert!(entails(&ag0, &ag1, &u2, 1).is_err());
    }

    #[test]
    fn bupd_intro_and_idempotence() {
        let u = uni();
        let p = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        assert!(entails(&p, &Assert::bupd(p.clone()), &u, 1).is_ok());
        assert!(entails(
            &Assert::bupd(Assert::bupd(p.clone())),
            &Assert::bupd(p.clone()),
            &u,
            1
        )
        .is_ok());
    }

    #[test]
    fn persistently_keeps_discarded_chunks() {
        let u = uni();
        let disc = Assert::PointsTo(Term::loc(Loc(0)), DFrac::discarded(), Term::int(1));
        assert!(entails(&disc, &Assert::persistently(disc.clone()), &u, 1).is_ok());
        let owned = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        assert!(entails(&owned, &Assert::persistently(owned.clone()), &u, 1).is_err());
    }

    #[test]
    fn quantifiers_range_over_domains() {
        let u = uni();
        let dom = vec![Val::int(0), Val::int(1)];
        let ex = Assert::exists(
            "x",
            dom.clone(),
            Assert::points_to(Term::loc(Loc(0)), Term::var("x")),
        );
        let pt0 = Assert::points_to(Term::loc(Loc(0)), Term::int(0));
        assert!(entails(&pt0, &ex, &u, 1).is_ok());
        let fa = Assert::forall(
            "x",
            dom,
            Assert::eq(Term::mul(Term::var("x"), Term::int(0)), Term::int(0)),
        );
        assert!(entails(&Assert::truth(), &fa, &u, 1).is_ok());
    }
}
