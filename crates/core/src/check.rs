//! The kernel soundness harness (experiment T2).
//!
//! Enumerates instances of every proof rule over an assertion corpus and
//! model-checks each produced [`Entails`] against the semantic
//! evaluator. In the original artifact this assurance comes from Rocq
//! proofs; here it comes from exhaustive finite-model validation.

use crate::assert::Assert;
use crate::eval::entails;
use crate::proof::{self, destab, heap, modal, update, Entails};
use crate::term::Term;
use crate::universe::WorldUniverse;
use crate::world::{CameraKind, GhostName, GhostVal};
use daenerys_algebra::{Auth, DFrac, Excl, Frac, StepIdx, SumNat, Q};
use daenerys_heaplang::{Loc, Val};

/// The default assertion corpus for rule instantiation (over location 0
/// and values 0/1, matching [`crate::universe::UniverseSpec::tiny`]).
pub fn corpus() -> Vec<Assert> {
    let l = Term::loc(Loc(0));
    vec![
        Assert::truth(),
        Assert::falsity(),
        Assert::Emp,
        Assert::points_to(l.clone(), Term::int(1)),
        Assert::points_to_frac(l.clone(), Q::HALF, Term::int(0)),
        Assert::PointsTo(l.clone(), DFrac::discarded(), Term::int(1)),
        Assert::read_eq(l.clone(), Term::int(1)),
        Assert::PermGe(l.clone(), Q::HALF),
        Assert::PermEq(l.clone(), Q::ONE),
        Assert::Framed(Term::read(l.clone())),
        Assert::stabilize(Assert::read_eq(l.clone(), Term::int(0))),
        Assert::later(Assert::points_to(l, Term::int(0))),
    ]
}

/// One rule's verification summary.
#[derive(Clone, Debug)]
pub struct RuleReport {
    /// Rule name.
    pub rule: &'static str,
    /// Number of instances generated.
    pub instances: usize,
    /// Number of instances that passed semantic validation.
    pub verified: usize,
    /// Pretty-printed failing instances (empty on success).
    pub failures: Vec<String>,
}

impl RuleReport {
    /// Whether every instance verified.
    pub fn ok(&self) -> bool {
        self.instances == self.verified
    }
}

/// Generates kernel derivations for every axiom-style rule over the
/// corpus. Conditional rules contribute only the instances whose side
/// conditions hold (that is the point of the side condition).
pub fn catalog(ps: &[Assert]) -> Vec<Entails> {
    let l = || Term::loc(Loc(0));
    let v0 = || Term::int(0);
    let v1 = || Term::int(1);
    let mut out: Vec<Entails> = Vec::new();

    for p in ps {
        out.push(proof::refl(p.clone()));
        out.push(proof::true_intro(p.clone()));
        out.push(proof::false_elim(p.clone()));
        out.push(proof::emp_sep_intro(p.clone()));
        out.push(proof::emp_sep_elim(p.clone()));
        out.push(proof::sep_true_intro(p.clone()));
        out.push(modal::later_intro(p.clone()));
        out.push(modal::persistently_idem(p.clone()));
        out.push(modal::persistently_unidem(p.clone()));
        out.push(modal::persistently_dup(p.clone()));
        out.push(destab::stab_elim(p.clone()));
        out.push(destab::stab_idem(p.clone()));
        out.push(destab::destab_intro(p.clone()));
        out.push(update::bupd_intro(p.clone()));
        out.push(update::bupd_trans(p.clone()));
        if let Ok(d) = destab::stab_intro(p.clone()) {
            out.push(d);
        }
        if let Ok(d) = destab::destab_elim(p.clone()) {
            out.push(d);
        }
        if let Ok(d) = modal::persistent_intro(p.clone()) {
            out.push(d);
        }
        if let Ok(d) = modal::persistently_elim_persistent(p.clone()) {
            out.push(d);
        }
        out.push(destab::stabilize_fast_sound(p.clone()));
        out.push(destab::stab_later_split(p.clone()));
        out.push(destab::stab_later_merge(p.clone()));
        out.push(destab::stab_persistently_merge(p.clone()));
    }

    for p in ps {
        for q in ps {
            out.push(proof::and_elim_l(p.clone(), q.clone()));
            out.push(proof::and_elim_r(p.clone(), q.clone()));
            out.push(proof::or_intro_l(p.clone(), q.clone()));
            out.push(proof::or_intro_r(p.clone(), q.clone()));
            out.push(proof::impl_elim(p.clone(), q.clone()));
            out.push(proof::sep_comm(p.clone(), q.clone()));
            out.push(proof::wand_elim(p.clone(), q.clone()));
            out.push(modal::later_sep_split(p.clone(), q.clone()));
            out.push(modal::later_sep_merge(p.clone(), q.clone()));
            out.push(modal::later_and_split(p.clone(), q.clone()));
            out.push(destab::stab_sep(p.clone(), q.clone()));
            out.push(destab::stab_and_split(p.clone(), q.clone()));
            out.push(destab::stab_and_merge(p.clone(), q.clone()));
            out.push(destab::destab_or_split(p.clone(), q.clone()));
            out.push(destab::destab_or_merge(p.clone(), q.clone()));
            out.push(destab::destab_and_split(p.clone(), q.clone()));
            out.push(destab::stab_or_merge(p.clone(), q.clone()));
            out.push(destab::destab_mono(&proof::refl(p.clone())));
            if let Ok(d) = update::bupd_frame(p.clone(), q.clone()) {
                out.push(d);
            }
        }
    }

    // A few associativity triples (full cube is too large).
    for (i, p) in ps.iter().take(4).enumerate() {
        let q = &ps[(i + 1) % ps.len()];
        let r = &ps[(i + 2) % ps.len()];
        out.push(proof::sep_assoc(p.clone(), q.clone(), r.clone()));
        out.push(proof::sep_assoc_rev(p.clone(), q.clone(), r.clone()));
    }

    // Heap rules with concrete parameters.
    for dq in [DFrac::own(Q::HALF), DFrac::FULL, DFrac::discarded()] {
        for v in [v0(), v1()] {
            out.extend(heap::points_to_read(l(), dq, v.clone()).ok());
            out.extend(heap::points_to_welldef(l(), dq, v.clone()).ok());
            out.extend(heap::points_to_framed(l(), dq, v.clone()).ok());
            out.extend(destab::points_to_stable_read(l(), dq, v.clone()).ok());
        }
    }
    out.extend(heap::points_to_perm(l(), Q::HALF, v1()).ok());
    out.extend(heap::points_to_perm(l(), Q::ONE, v0()).ok());
    out.extend(heap::perm_weaken(l(), Q::ONE, Q::HALF).ok());
    out.push(heap::perm_eq_ge(l(), Q::HALF));
    out.extend(
        heap::points_to_agree(l(), DFrac::own(Q::HALF), v0(), DFrac::own(Q::HALF), v1()).ok(),
    );
    out.extend(heap::points_to_invalid_sum(l(), Q::ONE, Q::HALF, v1()).ok());
    out.extend(heap::points_to_split(l(), Q::HALF, Q::HALF, v1()).ok());
    out.extend(heap::points_to_combine(l(), Q::HALF, Q::HALF, v0()).ok());
    out.extend(update::points_to_discard(l(), Q::ONE, v1()).ok());
    out.extend(update::points_to_discard(l(), Q::HALF, v0()).ok());

    // Self-framing instances.
    for v in [v0(), v1()] {
        out.push(destab::self_framing(Term::eq(Term::read(l()), v)));
    }

    // Derivation-transformer rules, exercised on kernel-built premises.
    let half = Assert::points_to_frac(l(), Q::HALF, v1());
    let full = Assert::points_to(l(), v1());
    let combine = heap::points_to_combine(l(), Q::HALF, Q::HALF, v1()).unwrap();
    out.push(proof::sep_mono(
        &proof::refl(half.clone()),
        &proof::refl(half.clone()),
    ));
    out.push(proof::frame(
        &destab::stab_elim(Assert::read_eq(l(), v1())),
        half.clone(),
    ));
    out.extend(proof::trans(&proof::sep_comm(half.clone(), half.clone()), &combine).ok());
    out.extend(proof::wand_intro(&combine).ok());
    out.extend(proof::and_intro(&proof::refl(half.clone()), &proof::true_intro(half.clone())).ok());
    out.extend(
        proof::or_elim(
            &proof::true_intro(half.clone()),
            &proof::true_intro(full.clone()),
        )
        .ok(),
    );
    out.extend(proof::impl_intro(&proof::and_elim_r(half.clone(), full.clone())).ok());
    out.push(modal::later_mono(&destab::stab_elim(half.clone())));
    out.push(modal::persistently_mono(&proof::true_intro(half.clone())));
    out.push(destab::stab_mono(&proof::true_intro(half.clone())));
    out.push(update::bupd_mono(&proof::true_intro(half)));

    // Quantifier rules.
    let dom = vec![Val::int(0), Val::int(1)];
    let body = Assert::points_to(l(), Term::var("x"));
    for v in &dom {
        out.extend(proof::forall_elim("x", dom.clone(), body.clone(), v.clone()).ok());
        out.extend(proof::exists_intro("x", dom.clone(), body.clone(), v.clone()).ok());
    }
    // Quantifier/∗ commutation (x free only on the left).
    let frame = Assert::PermGe(l(), Q::HALF);
    out.extend(proof::sep_exists_out("x", dom.clone(), body.clone(), frame.clone()).ok());
    out.extend(proof::sep_exists_in("x", dom.clone(), body.clone(), frame).ok());

    out
}

/// Ghost-state rule instances (verified against a universe containing
/// the matching ghost cell).
pub fn ghost_catalog(kind: CameraKind) -> Vec<Entails> {
    let g = GhostName(0);
    let mut out = Vec::new();
    match kind {
        CameraKind::ExclVal => {
            let a = GhostVal::ExclVal(Excl::new(Val::int(0)));
            let b = GhostVal::ExclVal(Excl::new(Val::int(1)));
            out.extend(update::ghost_update(g, a.clone(), b.clone()).ok());
            out.extend(update::ghost_update(g, b.clone(), a.clone()).ok());
            out.push(heap::own_combine(g, a.clone(), b));
            out.extend(heap::own_invalid(g, a.op(&a)).ok());
        }
        CameraKind::Frac => {
            let half = GhostVal::Frac(Frac::new(Q::HALF));
            let full = GhostVal::Frac(Frac::new(Q::ONE));
            out.push(heap::own_split(g, half.clone(), half.clone()));
            out.push(heap::own_combine(g, half.clone(), half.clone()));
            out.extend(update::ghost_update(g, full, half).ok());
        }
        CameraKind::AuthNat => {
            let both = |a: u64, f: u64| GhostVal::AuthNat(Auth::both(SumNat(a), SumNat(f)));
            out.extend(update::ghost_update(g, both(1, 1), both(2, 2)).ok());
            out.extend(update::ghost_update(g, both(2, 0), both(2, 0)).ok());
            out.push(heap::own_split(
                g,
                GhostVal::AuthNat(Auth::auth(SumNat(2))),
                GhostVal::AuthNat(Auth::frag(SumNat(1))),
            ));
            out.extend(
                heap::own_invalid(
                    g,
                    GhostVal::AuthNat(Auth::auth(SumNat(1)).op(&Auth::auth(SumNat(1)))),
                )
                .ok(),
            );
        }
        _ => {}
    }
    out
}

use daenerys_algebra::Ra;

/// Verifies a batch of kernel derivations against the model; groups the
/// outcome per rule name.
pub fn verify_catalog(
    derivations: &[Entails],
    uni: &WorldUniverse,
    n_max: StepIdx,
) -> Vec<RuleReport> {
    let mut reports: Vec<RuleReport> = Vec::new();
    for d in derivations {
        let idx = match reports.iter().position(|r| r.rule == d.rule()) {
            Some(i) => i,
            None => {
                reports.push(RuleReport {
                    rule: d.rule(),
                    instances: 0,
                    verified: 0,
                    failures: Vec::new(),
                });
                reports.len() - 1
            }
        };
        reports[idx].instances += 1;
        match entails(d.lhs(), d.rhs(), uni, n_max) {
            Ok(()) => reports[idx].verified += 1,
            Err(ce) => reports[idx].failures.push(format!(
                "{}  [world own={:?} frame={:?} n={}]",
                d, ce.world.own, ce.world.frame, ce.n
            )),
        }
    }
    reports.sort_by_key(|r| r.rule);
    reports
}
