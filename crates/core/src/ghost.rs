//! Ghost theories: packaged protocols over the supported cameras.
//!
//! Iris developments rarely use raw `own γ a`; they use *ghost theories*
//! — small APIs of assertions and kernel-certified update lemmas over a
//! camera. This module packages the three classics used by the examples
//! and case studies:
//!
//! * [`ContribCounter`] — the authoritative sum counter: an authority
//!   `●n` (total) against duplicable-by-splitting contributions `◯k`;
//! * [`MonoCounter`] — the monotone counter: the authority only grows,
//!   fragments are persistent lower bounds;
//! * [`ExclToken`] — exclusive ghost variables.
//!
//! Every operation returns a kernel [`Entails`], so uses of a theory are
//! checkable derivations, not trusted shortcuts.

use crate::assert::Assert;
use crate::proof::{heap, update, Entails, ProofError};
use crate::world::{GhostName, GhostVal};
use daenerys_algebra::{Auth, MaxNat, SumNat};
use daenerys_heaplang::Val;

/// The authoritative *contribution* counter (sum camera).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ContribCounter {
    /// The ghost name of the counter.
    pub name: GhostName,
}

impl ContribCounter {
    /// Creates the theory at a ghost name.
    pub fn new(name: GhostName) -> ContribCounter {
        ContribCounter { name }
    }

    /// The authority `●total ⋅ ◯own` (held by the coordinator).
    pub fn authority(&self, total: u64, own: u64) -> Assert {
        Assert::Own(
            self.name,
            GhostVal::AuthNat(Auth::both(SumNat(total), SumNat(own))),
        )
    }

    /// A pure contribution `◯k` (held by a worker).
    pub fn contribution(&self, k: u64) -> Assert {
        Assert::Own(self.name, GhostVal::AuthNat(Auth::frag(SumNat(k))))
    }

    /// Contributions merge: `◯a ∗ ◯b ⊢ ◯(a+b)`.
    pub fn merge(&self, a: u64, b: u64) -> Entails {
        heap::own_combine(
            self.name,
            GhostVal::AuthNat(Auth::frag(SumNat(a))),
            GhostVal::AuthNat(Auth::frag(SumNat(b))),
        )
    }

    /// Contributions split: `◯(a+b) ⊢ ◯a ∗ ◯b`.
    pub fn split(&self, a: u64, b: u64) -> Entails {
        heap::own_split(
            self.name,
            GhostVal::AuthNat(Auth::frag(SumNat(a))),
            GhostVal::AuthNat(Auth::frag(SumNat(b))),
        )
    }

    /// The coordinator registers `k` new contributions:
    /// `●total ⋅ ◯own ⊢ |==> ●(total+k) ⋅ ◯(own+k)`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's frame-preservation check.
    pub fn contribute(&self, total: u64, own: u64, k: u64) -> Result<Entails, ProofError> {
        update::ghost_update(
            self.name,
            GhostVal::AuthNat(Auth::both(SumNat(total), SumNat(own))),
            GhostVal::AuthNat(Auth::both(SumNat(total + k), SumNat(own + k))),
        )
    }

    /// Overdraft is impossible: `●total ⋅ ◯k ⊢ ⌜false⌝` when `k > total`.
    ///
    /// # Errors
    ///
    /// Rejects when `k <= total` (no contradiction).
    pub fn overdraft(&self, total: u64, k: u64) -> Result<Entails, ProofError> {
        heap::own_invalid(
            self.name,
            GhostVal::AuthNat(Auth::both(SumNat(total), SumNat(k))),
        )
    }
}

/// The monotone counter (max camera): lower bounds are persistent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MonoCounter {
    /// The ghost name of the counter.
    pub name: GhostName,
}

impl MonoCounter {
    /// Creates the theory at a ghost name.
    pub fn new(name: GhostName) -> MonoCounter {
        MonoCounter { name }
    }

    /// The authority `●n ⋅ ◯n`.
    pub fn authority(&self, n: u64) -> Assert {
        Assert::Own(
            self.name,
            GhostVal::AuthMax(Auth::both(MaxNat(n), MaxNat(n))),
        )
    }

    /// A persistent lower bound `◯k`.
    pub fn at_least(&self, k: u64) -> Assert {
        Assert::Own(self.name, GhostVal::AuthMax(Auth::frag(MaxNat(k))))
    }

    /// The counter grows: `●n ⋅ ◯n ⊢ |==> ●m ⋅ ◯m` for `m ≥ n`.
    ///
    /// # Errors
    ///
    /// Rejects shrinking the authority.
    pub fn advance(&self, n: u64, m: u64) -> Result<Entails, ProofError> {
        update::ghost_update(
            self.name,
            GhostVal::AuthMax(Auth::both(MaxNat(n), MaxNat(n))),
            GhostVal::AuthMax(Auth::both(MaxNat(m), MaxNat(m))),
        )
    }

    /// Lower bounds weaken: `◯k ⊢ |==> ◯j` for `j ≤ k`.
    ///
    /// # Errors
    ///
    /// Rejects strengthening the bound.
    pub fn weaken_bound(&self, k: u64, j: u64) -> Result<Entails, ProofError> {
        update::ghost_update(
            self.name,
            GhostVal::AuthMax(Auth::frag(MaxNat(k))),
            GhostVal::AuthMax(Auth::frag(MaxNat(j))),
        )
    }

    /// Lower bounds are persistent: `◯k ⊢ □ ◯k`.
    ///
    /// # Errors
    ///
    /// Never fails for fragments (they are cores); the `Result` comes
    /// from the kernel's generic check.
    pub fn bound_persistent(&self, k: u64) -> Result<Entails, ProofError> {
        crate::proof::modal::persistent_intro(self.at_least(k))
    }
}

/// An exclusive ghost variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExclToken {
    /// The ghost name of the variable.
    pub name: GhostName,
}

impl ExclToken {
    /// Creates the theory at a ghost name.
    pub fn new(name: GhostName) -> ExclToken {
        ExclToken { name }
    }

    /// Exclusive ownership holding `v`.
    pub fn holds(&self, v: Val) -> Assert {
        Assert::Own(self.name, GhostVal::ExclVal(daenerys_algebra::Excl::new(v)))
    }

    /// The variable updates freely: `γ ↦ v ⊢ |==> γ ↦ w`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's frame-preservation check (never fails for
    /// valid values).
    pub fn set(&self, from: Val, to: Val) -> Result<Entails, ProofError> {
        update::ghost_update(
            self.name,
            GhostVal::ExclVal(daenerys_algebra::Excl::new(from)),
            GhostVal::ExclVal(daenerys_algebra::Excl::new(to)),
        )
    }

    /// Two copies are contradictory: `γ ↦ v ∗ γ ↦ w ⊢ ⌜false⌝`.
    ///
    /// # Errors
    ///
    /// Never fails (the composition is always invalid); kernel-generic.
    pub fn exclusive(&self, v: Val, w: Val) -> Result<Entails, ProofError> {
        use daenerys_algebra::Ra;
        heap::own_invalid(
            self.name,
            GhostVal::ExclVal(daenerys_algebra::Excl::new(v))
                .op(&GhostVal::ExclVal(daenerys_algebra::Excl::new(w))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::entails;
    use crate::universe::UniverseSpec;
    use crate::world::CameraKind;

    #[test]
    fn contrib_counter_protocol() {
        let c = ContribCounter::new(GhostName(0));
        let uni = UniverseSpec::with_ghost(CameraKind::AuthNat).build();

        // Contribute one: semantically valid update.
        let d = c.contribute(1, 1, 1).unwrap();
        assert!(entails(d.lhs(), d.rhs(), &uni, 1).is_ok());

        // Merge and split within the universe bounds.
        let m = c.merge(1, 1);
        assert!(entails(m.lhs(), m.rhs(), &uni, 1).is_ok());
        let s = c.split(1, 1);
        assert!(entails(s.lhs(), s.rhs(), &uni, 1).is_ok());

        // Overdraft contradiction.
        let o = c.overdraft(1, 2).unwrap();
        assert!(entails(o.lhs(), o.rhs(), &uni, 1).is_ok());
        assert!(c.overdraft(2, 1).is_err());
    }

    #[test]
    fn mono_counter_protocol() {
        let c = MonoCounter::new(GhostName(0));
        let uni = UniverseSpec::with_ghost(CameraKind::AuthMax).build();

        let d = c.advance(1, 2).unwrap();
        assert!(entails(d.lhs(), d.rhs(), &uni, 1).is_ok());
        assert!(c.advance(2, 1).is_err());

        let w = c.weaken_bound(2, 1).unwrap();
        assert!(entails(w.lhs(), w.rhs(), &uni, 1).is_ok());
        assert!(c.weaken_bound(1, 2).is_err());

        let p = c.bound_persistent(1).unwrap();
        assert!(entails(p.lhs(), p.rhs(), &uni, 1).is_ok());
    }

    #[test]
    fn excl_token_protocol() {
        let t = ExclToken::new(GhostName(0));
        let uni = UniverseSpec::with_ghost(CameraKind::ExclVal).build();

        let d = t.set(Val::int(0), Val::int(1)).unwrap();
        assert!(entails(d.lhs(), d.rhs(), &uni, 1).is_ok());

        let x = t.exclusive(Val::int(0), Val::int(1)).unwrap();
        assert!(entails(x.lhs(), x.rhs(), &uni, 1).is_ok());
    }
}
