//! Rules for the stabilization modalities `⌊·⌋` and `⌈·⌉`.
//!
//! `⌊P⌋` is the greatest stable strengthening of `P`; `⌈P⌉` the least
//! stable weakening. These are the paper's device for moving between the
//! unstable world of heap-dependent assertions and the stable fragment
//! where classical Iris reasoning applies.

use crate::assert::Assert;
use crate::proof::{reject, Entails, ProofError};
use crate::stability::{stabilize_fast, syntactically_stable};
use crate::term::Term;

/// `⌊P⌋ ⊢ P` — stabilization is a strengthening.
pub fn stab_elim(p: Assert) -> Entails {
    Entails::axiom(Assert::stabilize(p.clone()), p, "stab-elim")
}

/// From `P ⊢ Q`, conclude `⌊P⌋ ⊢ ⌊Q⌋`.
pub fn stab_mono(a: &Entails) -> Entails {
    Entails::make(
        Assert::stabilize(a.lhs().clone()),
        Assert::stabilize(a.rhs().clone()),
        "stab-mono",
        a.steps() + 1,
    )
}

/// Stability introduction on the syntactic stable fragment:
/// `P ⊢ ⌊P⌋` when `P` is syntactically stable.
///
/// # Errors
///
/// Rejects assertions outside the stable fragment.
pub fn stab_intro(p: Assert) -> Result<Entails, ProofError> {
    if !syntactically_stable(&p) {
        return reject("stab-intro", format!("{} is not syntactically stable", p));
    }
    Ok(Entails::axiom(
        p.clone(),
        Assert::stabilize(p),
        "stab-intro",
    ))
}

/// `⌊P⌋ ⊢ ⌊⌊P⌋⌋` — stabilization is idempotent.
pub fn stab_idem(p: Assert) -> Entails {
    let s = Assert::stabilize(p);
    Entails::axiom(s.clone(), Assert::stabilize(s), "stab-idem")
}

/// `⌊P⌋ ∗ ⌊Q⌋ ⊢ ⌊P ∗ Q⌋` — stabilization distributes over ∗.
pub fn stab_sep(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(Assert::stabilize(p.clone()), Assert::stabilize(q.clone())),
        Assert::stabilize(Assert::sep(p, q)),
        "stab-sep",
    )
}

/// `⌊P ∧ Q⌋ ⊢ ⌊P⌋ ∧ ⌊Q⌋`.
pub fn stab_and_split(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::stabilize(Assert::and(p.clone(), q.clone())),
        Assert::and(Assert::stabilize(p), Assert::stabilize(q)),
        "stab-and-split",
    )
}

/// `⌊P⌋ ∧ ⌊Q⌋ ⊢ ⌊P ∧ Q⌋`.
pub fn stab_and_merge(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::and(Assert::stabilize(p.clone()), Assert::stabilize(q.clone())),
        Assert::stabilize(Assert::and(p, q)),
        "stab-and-merge",
    )
}

/// `P ⊢ ⌈P⌉` — destabilization is a weakening.
pub fn destab_intro(p: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::destab(p), "destab-intro")
}

/// From `P ⊢ Q`, conclude `⌈P⌉ ⊢ ⌈Q⌉`.
pub fn destab_mono(a: &Entails) -> Entails {
    Entails::make(
        Assert::destab(a.lhs().clone()),
        Assert::destab(a.rhs().clone()),
        "destab-mono",
        a.steps() + 1,
    )
}

/// `⌈P⌉ ⊢ P` on the syntactic stable fragment (for stable `P`, some
/// frame satisfying `P` means every frame does).
///
/// # Errors
///
/// Rejects assertions outside the stable fragment.
pub fn destab_elim(p: Assert) -> Result<Entails, ProofError> {
    if !syntactically_stable(&p) {
        return reject("destab-elim", format!("{} is not syntactically stable", p));
    }
    Ok(Entails::axiom(Assert::destab(p.clone()), p, "destab-elim"))
}

/// **Self-framing** (the IDF transfer rule):
/// `framed(t) ∧ ⌜t⌝ ⊢ ⌊⌜t⌝⌋` — a heap-dependent fact whose reads are
/// all covered by owned permission is stable.
pub fn self_framing(t: Term) -> Entails {
    Entails::axiom(
        Assert::and(Assert::Framed(t.clone()), Assert::Pure(t.clone())),
        Assert::stabilize(Assert::Pure(t)),
        "self-framing",
    )
}

/// The syntactic stabilizer is sound: `stabilize_fast(P) ⊢ ⌊P⌋`.
pub fn stabilize_fast_sound(p: Assert) -> Entails {
    Entails::axiom(
        stabilize_fast(&p),
        Assert::stabilize(p),
        "stabilize-fast-sound",
    )
}

/// The derived rule that makes heap-dependent specs usable:
/// `l ↦{dq} v ⊢ ⌊⌜!l = v⌝⌋ ∧ l ↦{dq} v` — read a location, keeping both
/// the (stable!) fact and the permission.
///
/// The conjunction is **∧, not ∗**: the stabilized fact is only stable
/// *because* the owned permission pins the value, so it cannot be
/// separated from that permission. (The ∗-version of this rule is
/// refuted by the model checker — see the kernel soundness tests. This
/// is the IDF lesson that self-framing is conjunctive.)
///
/// # Errors
///
/// Rejects unreadable permissions or heap-dependent terms.
pub fn points_to_stable_read(
    l: Term,
    dq: daenerys_algebra::DFrac,
    v: Term,
) -> Result<Entails, ProofError> {
    if l.has_read() || v.has_read() {
        return reject("points-to-stable-read", "terms must be read-free");
    }
    if !dq.allows_read() {
        return reject("points-to-stable-read", "permission does not allow reading");
    }
    let pt = Assert::PointsTo(l.clone(), dq, v.clone());
    Ok(Entails::axiom(
        pt.clone(),
        Assert::and(
            Assert::stabilize(Assert::Pure(Term::eq(Term::read(l), v))),
            pt,
        ),
        "points-to-stable-read",
    ))
}

/// `⌈P ∨ Q⌉ ⊢ ⌈P⌉ ∨ ⌈Q⌉` — destabilization distributes over ∨.
pub fn destab_or_split(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::destab(Assert::or(p.clone(), q.clone())),
        Assert::or(Assert::destab(p), Assert::destab(q)),
        "destab-or-split",
    )
}

/// `⌈P⌉ ∨ ⌈Q⌉ ⊢ ⌈P ∨ Q⌉`.
pub fn destab_or_merge(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::or(Assert::destab(p.clone()), Assert::destab(q.clone())),
        Assert::destab(Assert::or(p, q)),
        "destab-or-merge",
    )
}

/// `⌈P ∧ Q⌉ ⊢ ⌈P⌉ ∧ ⌈Q⌉` (the converse fails: the witnesses may be
/// different frames).
pub fn destab_and_split(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::destab(Assert::and(p.clone(), q.clone())),
        Assert::and(Assert::destab(p), Assert::destab(q)),
        "destab-and-split",
    )
}

/// `⌊P⌋ ∨ ⌊Q⌋ ⊢ ⌊P ∨ Q⌋` (the converse fails: which disjunct holds may
/// depend on the frame).
pub fn stab_or_merge(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::or(Assert::stabilize(p.clone()), Assert::stabilize(q.clone())),
        Assert::stabilize(Assert::or(p, q)),
        "stab-or-merge",
    )
}

/// `⌊▷P⌋ ⊢ ▷⌊P⌋` — stabilization commutes with later.
pub fn stab_later_split(p: Assert) -> Entails {
    Entails::axiom(
        Assert::stabilize(Assert::later(p.clone())),
        Assert::later(Assert::stabilize(p)),
        "stab-later-split",
    )
}

/// `▷⌊P⌋ ⊢ ⌊▷P⌋`.
pub fn stab_later_merge(p: Assert) -> Entails {
    Entails::axiom(
        Assert::later(Assert::stabilize(p.clone())),
        Assert::stabilize(Assert::later(p)),
        "stab-later-merge",
    )
}

/// `□⌊P⌋ ⊢ ⌊□P⌋` — persistence under stabilization. (The converse
/// fails: the core tolerates more frames than the full resource.)
pub fn stab_persistently_merge(p: Assert) -> Entails {
    Entails::axiom(
        Assert::persistently(Assert::stabilize(p.clone())),
        Assert::stabilize(Assert::persistently(p)),
        "stab-persistently-merge",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_algebra::{DFrac, Q};
    use daenerys_heaplang::Loc;

    fn read() -> Assert {
        Assert::read_eq(Term::loc(Loc(0)), Term::int(1))
    }

    #[test]
    fn stab_intro_requires_stable() {
        assert!(stab_intro(Assert::truth()).is_ok());
        assert!(stab_intro(read()).is_err());
        assert!(stab_intro(Assert::stabilize(read())).is_ok());
    }

    #[test]
    fn destab_elim_requires_stable() {
        assert!(destab_elim(Assert::Emp).is_ok());
        assert!(destab_elim(read()).is_err());
    }

    #[test]
    fn self_framing_shape() {
        let t = Term::eq(Term::read(Term::loc(Loc(0))), Term::int(1));
        let d = self_framing(t.clone());
        assert_eq!(d.rhs(), &Assert::stabilize(Assert::Pure(t)));
    }

    #[test]
    fn stable_read_keeps_permission() {
        let d =
            points_to_stable_read(Term::loc(Loc(0)), DFrac::own(Q::HALF), Term::int(1)).unwrap();
        match d.rhs() {
            Assert::And(fact, pt) => {
                assert!(matches!(&**fact, Assert::Stabilize(_)));
                assert_eq!(&**pt, d.lhs());
            }
            _ => panic!("expected ∧"),
        }
        assert!(points_to_stable_read(
            Term::loc(Loc(0)),
            DFrac::own(Q::HALF),
            Term::read(Term::loc(Loc(0)))
        )
        .is_err());
    }
}
