//! The proof kernel: entailments as abstract certificates.
//!
//! In the Rocq artifact, proof rules are lemmas and derivations are
//! checked terms. Here we reproduce that architecture LCF-style: an
//! [`Entails`] value can only be created through the rule constructors in
//! this module tree, each of which checks its side conditions. The test
//! suite model-checks *every rule* against the semantic evaluator
//! (experiment T2), so a kernel derivation carries the same assurance
//! the finite model can provide.
//!
//! Rule inventory:
//!
//! * [`mod@self`] — structural/BI rules (conjunction, disjunction,
//!   implication, quantifiers, separating conjunction, the
//!   world-bounded wand);
//! * [`modal`] — `later` (with Löb induction) and `persistently`;
//! * [`heap`] — points-to rules and the destabilized heap-dependent
//!   rules (heap reads, permission introspection);
//! * [`destab`] — the stabilization modalities `⌊·⌋`, `⌈·⌉` and the
//!   self-framing rule;
//! * [`update`] — basic updates and ghost-state updates, including the
//!   stability side condition on framing updates.

pub mod auto;
pub mod destab;
pub mod heap;
pub mod modal;
pub mod update;

use crate::assert::Assert;
use crate::term::{eval_term, Env, Term};
use crate::world::{Res, World};
use daenerys_heaplang::Val;
use std::fmt;

/// A proof-rule failure: the rule's side condition was not met.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProofError {
    /// The rule that rejected the application.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for ProofError {}

pub(crate) fn reject<T>(rule: &'static str, message: impl Into<String>) -> Result<T, ProofError> {
    Err(ProofError {
        rule,
        message: message.into(),
    })
}

/// A certified entailment `P ⊢ Q`.
///
/// Values of this type can only be produced by the rule constructors of
/// the [`crate::proof`] module tree — the kernel boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entails {
    lhs: Assert,
    rhs: Assert,
    rule: &'static str,
    steps: usize,
}

impl Entails {
    pub(crate) fn make(lhs: Assert, rhs: Assert, rule: &'static str, steps: usize) -> Entails {
        Entails {
            lhs,
            rhs,
            rule,
            steps,
        }
    }

    pub(crate) fn axiom(lhs: Assert, rhs: Assert, rule: &'static str) -> Entails {
        Entails::make(lhs, rhs, rule, 1)
    }

    /// The premise.
    pub fn lhs(&self) -> &Assert {
        &self.lhs
    }

    /// The conclusion.
    pub fn rhs(&self) -> &Assert {
        &self.rhs
    }

    /// The name of the outermost rule.
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// Total number of rule applications in the derivation — the "proof
    /// size" metric reported by the evaluation (T1).
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl fmt::Display for Entails {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊢ {}   [{} rule(s)]", self.lhs, self.rhs, self.steps)
    }
}

// ---------------------------------------------------------------------
// Structural rules
// ---------------------------------------------------------------------

/// `P ⊢ P`.
pub fn refl(p: Assert) -> Entails {
    Entails::axiom(p.clone(), p, "refl")
}

/// From `P ⊢ Q` and `Q ⊢ R`, conclude `P ⊢ R`.
///
/// # Errors
///
/// Rejects when the middle assertions differ.
pub fn trans(a: &Entails, b: &Entails) -> Result<Entails, ProofError> {
    if a.rhs != b.lhs {
        return reject("trans", format!("middle mismatch: {} vs {}", a.rhs, b.lhs));
    }
    Ok(Entails::make(
        a.lhs.clone(),
        b.rhs.clone(),
        "trans",
        a.steps + b.steps + 1,
    ))
}

/// `P ⊢ ⌜true⌝`.
pub fn true_intro(p: Assert) -> Entails {
    Entails::axiom(p, Assert::truth(), "true-intro")
}

/// `⌜false⌝ ⊢ P`.
pub fn false_elim(p: Assert) -> Entails {
    Entails::axiom(Assert::falsity(), p, "false-elim")
}

/// A closed, read-free tautology: `P ⊢ ⌜t⌝` when `t` evaluates to `true`
/// in the empty world.
///
/// # Errors
///
/// Rejects heap-dependent or non-true terms.
pub fn pure_intro(p: Assert, t: Term) -> Result<Entails, ProofError> {
    if t.has_read() {
        return reject("pure-intro", "term contains a heap read");
    }
    let w = World::solo(Res::empty());
    match eval_term(&t, &w, &Env::new()) {
        Ok(out) if out.value == Val::bool(true) => {
            Ok(Entails::axiom(p, Assert::Pure(t), "pure-intro"))
        }
        Ok(out) => reject("pure-intro", format!("term evaluated to {}", out.value)),
        Err(e) => reject("pure-intro", format!("term not closed: {}", e)),
    }
}

/// From `P ⊢ Q` and `P ⊢ R`, conclude `P ⊢ Q ∧ R`.
///
/// # Errors
///
/// Rejects when the premises' left-hand sides differ.
pub fn and_intro(a: &Entails, b: &Entails) -> Result<Entails, ProofError> {
    if a.lhs != b.lhs {
        return reject("and-intro", "premises have different antecedents");
    }
    Ok(Entails::make(
        a.lhs.clone(),
        Assert::and(a.rhs.clone(), b.rhs.clone()),
        "and-intro",
        a.steps + b.steps + 1,
    ))
}

/// `P ∧ Q ⊢ P`.
pub fn and_elim_l(p: Assert, q: Assert) -> Entails {
    Entails::axiom(Assert::and(p.clone(), q), p, "and-elim-l")
}

/// `P ∧ Q ⊢ Q`.
pub fn and_elim_r(p: Assert, q: Assert) -> Entails {
    Entails::axiom(Assert::and(p, q.clone()), q, "and-elim-r")
}

/// `P ⊢ P ∨ Q`.
pub fn or_intro_l(p: Assert, q: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::or(p, q), "or-intro-l")
}

/// `Q ⊢ P ∨ Q`.
pub fn or_intro_r(p: Assert, q: Assert) -> Entails {
    Entails::axiom(q.clone(), Assert::or(p, q), "or-intro-r")
}

/// From `P ⊢ R` and `Q ⊢ R`, conclude `P ∨ Q ⊢ R`.
///
/// # Errors
///
/// Rejects when the conclusions differ.
pub fn or_elim(a: &Entails, b: &Entails) -> Result<Entails, ProofError> {
    if a.rhs != b.rhs {
        return reject("or-elim", "premises have different conclusions");
    }
    Ok(Entails::make(
        Assert::or(a.lhs.clone(), b.lhs.clone()),
        a.rhs.clone(),
        "or-elim",
        a.steps + b.steps + 1,
    ))
}

/// From `R ∧ P ⊢ Q`, conclude `R ⊢ P → Q`.
///
/// # Errors
///
/// Rejects when the premise is not a conjunction.
pub fn impl_intro(a: &Entails) -> Result<Entails, ProofError> {
    match &a.lhs {
        Assert::And(r, p) => Ok(Entails::make(
            (**r).clone(),
            Assert::impl_((**p).clone(), a.rhs.clone()),
            "impl-intro",
            a.steps + 1,
        )),
        other => reject("impl-intro", format!("premise LHS is not ∧: {}", other)),
    }
}

/// `(P → Q) ∧ P ⊢ Q`.
pub fn impl_elim(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::and(Assert::impl_(p.clone(), q.clone()), p),
        q,
        "impl-elim",
    )
}

/// `∀ x ∈ dom. P ⊢ P[v/x]` for `v ∈ dom`.
///
/// # Errors
///
/// Rejects when `v` is outside the domain.
pub fn forall_elim(x: &str, dom: Vec<Val>, body: Assert, v: Val) -> Result<Entails, ProofError> {
    if !dom.contains(&v) {
        return reject("forall-elim", format!("{} not in domain", v));
    }
    let inst = body.subst(x, &v);
    Ok(Entails::axiom(
        Assert::forall(x, dom, body),
        inst,
        "forall-elim",
    ))
}

/// From a premise `P ⊢ Q[v/x]` for *each* `v ∈ dom`, conclude
/// `P ⊢ ∀ x ∈ dom. Q`.
///
/// # Errors
///
/// Rejects when the premises do not line up with the domain.
pub fn forall_intro(
    premises: &[Entails],
    p: Assert,
    x: &str,
    dom: Vec<Val>,
    body: Assert,
) -> Result<Entails, ProofError> {
    if premises.len() != dom.len() {
        return reject("forall-intro", "one premise required per domain element");
    }
    let mut steps = 1;
    for (prem, v) in premises.iter().zip(dom.iter()) {
        if prem.lhs != p {
            return reject("forall-intro", "premise antecedent mismatch");
        }
        if prem.rhs != body.subst(x, v) {
            return reject(
                "forall-intro",
                format!("premise for {} does not match instantiated body", v),
            );
        }
        steps += prem.steps;
    }
    Ok(Entails::make(
        p,
        Assert::forall(x, dom, body),
        "forall-intro",
        steps,
    ))
}

/// `P[v/x] ⊢ ∃ x ∈ dom. P` for `v ∈ dom`.
///
/// # Errors
///
/// Rejects when `v` is outside the domain.
pub fn exists_intro(x: &str, dom: Vec<Val>, body: Assert, v: Val) -> Result<Entails, ProofError> {
    if !dom.contains(&v) {
        return reject("exists-intro", format!("{} not in domain", v));
    }
    let inst = body.subst(x, &v);
    Ok(Entails::axiom(
        inst,
        Assert::exists(x, dom, body),
        "exists-intro",
    ))
}

/// From a premise `Q[v/x] ⊢ R` for *each* `v ∈ dom`, conclude
/// `(∃ x ∈ dom. Q) ⊢ R`.
///
/// # Errors
///
/// Rejects when the premises do not line up with the domain.
pub fn exists_elim(
    premises: &[Entails],
    x: &str,
    dom: Vec<Val>,
    body: Assert,
    r: Assert,
) -> Result<Entails, ProofError> {
    if premises.len() != dom.len() {
        return reject("exists-elim", "one premise required per domain element");
    }
    let mut steps = 1;
    for (prem, v) in premises.iter().zip(dom.iter()) {
        if prem.rhs != r {
            return reject("exists-elim", "premise conclusion mismatch");
        }
        if prem.lhs != body.subst(x, v) {
            return reject(
                "exists-elim",
                format!("premise for {} does not match instantiated body", v),
            );
        }
        steps += prem.steps;
    }
    Ok(Entails::make(
        Assert::exists(x, dom, body),
        r,
        "exists-elim",
        steps,
    ))
}

// ---------------------------------------------------------------------
// Separating conjunction and wand
// ---------------------------------------------------------------------

/// `P ∗ Q ⊢ Q ∗ P`.
pub fn sep_comm(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(p.clone(), q.clone()),
        Assert::sep(q, p),
        "sep-comm",
    )
}

/// `(P ∗ Q) ∗ R ⊢ P ∗ (Q ∗ R)`.
pub fn sep_assoc(p: Assert, q: Assert, r: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(Assert::sep(p.clone(), q.clone()), r.clone()),
        Assert::sep(p, Assert::sep(q, r)),
        "sep-assoc",
    )
}

/// `P ∗ (Q ∗ R) ⊢ (P ∗ Q) ∗ R`.
pub fn sep_assoc_rev(p: Assert, q: Assert, r: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(p.clone(), Assert::sep(q.clone(), r.clone())),
        Assert::sep(Assert::sep(p, q), r),
        "sep-assoc-rev",
    )
}

/// From `P1 ⊢ Q1` and `P2 ⊢ Q2`, conclude `P1 ∗ P2 ⊢ Q1 ∗ Q2`.
pub fn sep_mono(a: &Entails, b: &Entails) -> Entails {
    Entails::make(
        Assert::sep(a.lhs.clone(), b.lhs.clone()),
        Assert::sep(a.rhs.clone(), b.rhs.clone()),
        "sep-mono",
        a.steps + b.steps + 1,
    )
}

/// Frame on the right: from `P ⊢ Q` conclude `P ∗ R ⊢ Q ∗ R`.
pub fn frame(a: &Entails, r: Assert) -> Entails {
    Entails::make(
        Assert::sep(a.lhs.clone(), r.clone()),
        Assert::sep(a.rhs.clone(), r),
        "frame",
        a.steps + 1,
    )
}

/// `P ⊢ emp ∗ P`.
pub fn emp_sep_intro(p: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::sep(Assert::Emp, p), "emp-sep-intro")
}

/// `emp ∗ P ⊢ P`.
pub fn emp_sep_elim(p: Assert) -> Entails {
    Entails::axiom(Assert::sep(Assert::Emp, p.clone()), p, "emp-sep-elim")
}

/// `P ⊢ P ∗ ⌜true⌝`.
pub fn sep_true_intro(p: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::sep(p, Assert::truth()), "sep-true-intro")
}

/// From `P ∗ Q ⊢ R`, conclude `P ⊢ Q −∗ R`.
///
/// # Errors
///
/// Rejects when the premise is not a separating conjunction.
pub fn wand_intro(a: &Entails) -> Result<Entails, ProofError> {
    match &a.lhs {
        Assert::Sep(p, q) => Ok(Entails::make(
            (**p).clone(),
            Assert::wand((**q).clone(), a.rhs.clone()),
            "wand-intro",
            a.steps + 1,
        )),
        other => reject("wand-intro", format!("premise LHS is not ∗: {}", other)),
    }
}

/// `(P −∗ Q) ∗ P ⊢ Q`.
pub fn wand_elim(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(Assert::wand(p.clone(), q.clone()), p),
        q,
        "wand-elim",
    )
}

/// `(∃ x ∈ dom. P) ∗ Q ⊢ ∃ x ∈ dom. (P ∗ Q)` when `x` is not free in
/// `Q`.
///
/// # Errors
///
/// Rejects when `x` occurs free in `Q`.
pub fn sep_exists_out(x: &str, dom: Vec<Val>, p: Assert, q: Assert) -> Result<Entails, ProofError> {
    if q.mentions_var(x) {
        return reject("sep-exists-out", format!("{} occurs free in the frame", x));
    }
    Ok(Entails::axiom(
        Assert::sep(Assert::exists(x, dom.clone(), p.clone()), q.clone()),
        Assert::exists(x, dom, Assert::sep(p, q)),
        "sep-exists-out",
    ))
}

/// `∃ x ∈ dom. (P ∗ Q) ⊢ (∃ x ∈ dom. P) ∗ Q` when `x` is not free in
/// `Q`.
///
/// # Errors
///
/// Rejects when `x` occurs free in `Q`.
pub fn sep_exists_in(x: &str, dom: Vec<Val>, p: Assert, q: Assert) -> Result<Entails, ProofError> {
    if q.mentions_var(x) {
        return reject("sep-exists-in", format!("{} occurs free in the frame", x));
    }
    Ok(Entails::axiom(
        Assert::exists(x, dom.clone(), Assert::sep(p.clone(), q.clone())),
        Assert::sep(Assert::exists(x, dom, p), q),
        "sep-exists-in",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_heaplang::Loc;

    fn pt() -> Assert {
        Assert::points_to(Term::loc(Loc(0)), Term::int(1))
    }

    #[test]
    fn refl_and_trans() {
        let a = refl(pt());
        let b = true_intro(pt());
        let c = trans(&a, &b).unwrap();
        assert_eq!(c.lhs(), &pt());
        assert_eq!(c.rhs(), &Assert::truth());
        assert_eq!(c.steps(), 3);
        // Mismatched middles are rejected.
        assert!(trans(&b, &a).is_err());
    }

    #[test]
    fn and_rules() {
        let a = refl(pt());
        let b = true_intro(pt());
        let c = and_intro(&a, &b).unwrap();
        assert_eq!(c.rhs(), &Assert::and(pt(), Assert::truth()));
        assert!(and_intro(&refl(pt()), &refl(Assert::Emp)).is_err());
    }

    #[test]
    fn impl_rules() {
        let prem = and_elim_r(pt(), Assert::Emp);
        let d = impl_intro(&prem).unwrap();
        assert_eq!(d.lhs(), &pt());
        assert_eq!(d.rhs(), &Assert::impl_(Assert::Emp, Assert::Emp));
        assert!(impl_intro(&refl(pt())).is_err());
    }

    #[test]
    fn quantifier_side_conditions() {
        let dom = vec![Val::int(0), Val::int(1)];
        let body = Assert::eq(Term::var("x"), Term::var("x"));
        assert!(forall_elim("x", dom.clone(), body.clone(), Val::int(0)).is_ok());
        assert!(forall_elim("x", dom.clone(), body.clone(), Val::int(9)).is_err());
        assert!(exists_intro("x", dom.clone(), body.clone(), Val::int(1)).is_ok());
        assert!(exists_intro("x", dom, body, Val::int(9)).is_err());
    }

    #[test]
    fn forall_intro_checks_premises() {
        let dom = vec![Val::int(0), Val::int(1)];
        let body = Assert::truth(); // closed body: all instances identical
        let prems: Vec<Entails> = dom.iter().map(|_| true_intro(pt())).collect();
        let d = forall_intro(&prems, pt(), "x", dom.clone(), body.clone()).unwrap();
        assert_eq!(d.rhs(), &Assert::forall("x", dom.clone(), body.clone()));
        // Wrong number of premises.
        assert!(forall_intro(&prems[..1], pt(), "x", dom, body).is_err());
    }

    #[test]
    fn pure_intro_side_conditions() {
        assert!(pure_intro(pt(), Term::eq(Term::int(1), Term::int(1))).is_ok());
        assert!(pure_intro(pt(), Term::eq(Term::int(1), Term::int(2))).is_err());
        assert!(pure_intro(pt(), Term::eq(Term::read(Term::loc(Loc(0))), Term::int(1))).is_err());
        assert!(pure_intro(pt(), Term::var("x")).is_err());
    }

    #[test]
    fn wand_intro_requires_sep() {
        let d = wand_elim(pt(), Assert::truth());
        assert!(wand_intro(&d).is_ok());
        assert!(wand_intro(&refl(pt())).is_err());
    }

    #[test]
    fn derivation_steps_accumulate() {
        let a = sep_mono(&refl(pt()), &true_intro(pt()));
        assert_eq!(a.steps(), 3);
        let f = frame(&a, Assert::Emp);
        assert_eq!(f.steps(), 4);
        assert_eq!(f.rule(), "frame");
    }
}
