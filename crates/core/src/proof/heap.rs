//! Heap rules — including the destabilized heap-dependent rules.
//!
//! The rules in this module are where the paper's contribution becomes
//! visible in the proof system: from a points-to one may conclude facts
//! about the *heap-dependent expression* `!l` directly
//! ([`points_to_read`]), and permission introspection is related to
//! ownership ([`points_to_perm`], [`perm_weaken`]).

use crate::assert::Assert;
use crate::proof::{reject, Entails, ProofError};
use crate::term::Term;
use daenerys_algebra::{DFrac, Ra, Q};

fn no_reads(rule: &'static str, ts: &[&Term]) -> Result<(), ProofError> {
    for t in ts {
        if t.has_read() {
            return reject(rule, format!("term {} contains a heap read", t));
        }
    }
    Ok(())
}

/// **Heap-read introduction** (the hallmark destabilized rule):
/// `l ↦{dq} v ⊢ ⌜!l = v⌝` for any readable `dq`.
///
/// # Errors
///
/// Rejects unreadable permissions and heap-dependent `l`/`v` terms.
pub fn points_to_read(l: Term, dq: DFrac, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-read", &[&l, &v])?;
    if !dq.allows_read() {
        return reject("points-to-read", "permission does not allow reading");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), dq, v.clone()),
        Assert::Pure(Term::eq(Term::read(l), v)),
        "points-to-read",
    ))
}

/// `l ↦{dq} v ⊢ wd(!l)` — the read is well-defined.
///
/// # Errors
///
/// Rejects unreadable permissions and heap-dependent terms.
pub fn points_to_welldef(l: Term, dq: DFrac, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-welldef", &[&l, &v])?;
    if !dq.allows_read() {
        return reject("points-to-welldef", "permission does not allow reading");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), dq, v),
        Assert::WellDef(Term::read(l)),
        "points-to-welldef",
    ))
}

/// `l ↦{dq} v ⊢ framed(!l)` — the read is covered by owned permission.
///
/// # Errors
///
/// Rejects unreadable permissions and heap-dependent terms.
pub fn points_to_framed(l: Term, dq: DFrac, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-framed", &[&l, &v])?;
    if !dq.allows_read() {
        return reject("points-to-framed", "permission does not allow reading");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), dq, v),
        Assert::Framed(Term::read(l)),
        "points-to-framed",
    ))
}

/// **Permission introspection introduction**:
/// `l ↦{q} v ⊢ perm(l) ≥ q`.
///
/// # Errors
///
/// Rejects heap-dependent terms.
pub fn points_to_perm(l: Term, q: Q, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-perm", &[&l, &v])?;
    if !q.is_valid_permission() {
        return reject("points-to-perm", "not a valid fraction");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), DFrac::own(q), v),
        Assert::PermGe(l, q),
        "points-to-perm",
    ))
}

/// `perm(l) ≥ q ⊢ perm(l) ≥ q'` for `q' ≤ q`.
///
/// # Errors
///
/// Rejects when `q' > q`.
pub fn perm_weaken(l: Term, q: Q, q2: Q) -> Result<Entails, ProofError> {
    no_reads("perm-weaken", &[&l])?;
    if q2 > q {
        return reject("perm-weaken", "cannot strengthen a permission bound");
    }
    Ok(Entails::axiom(
        Assert::PermGe(l.clone(), q),
        Assert::PermGe(l, q2),
        "perm-weaken",
    ))
}

/// `perm(l) = q ⊢ perm(l) ≥ q`.
pub fn perm_eq_ge(l: Term, q: Q) -> Entails {
    Entails::axiom(
        Assert::PermEq(l.clone(), q),
        Assert::PermGe(l, q),
        "perm-eq-ge",
    )
}

/// Agreement: `l ↦{d1} v1 ∗ l ↦{d2} v2 ⊢ ⌜v1 = v2⌝`.
///
/// # Errors
///
/// Rejects heap-dependent terms.
pub fn points_to_agree(
    l: Term,
    d1: DFrac,
    v1: Term,
    d2: DFrac,
    v2: Term,
) -> Result<Entails, ProofError> {
    no_reads("points-to-agree", &[&l, &v1, &v2])?;
    Ok(Entails::axiom(
        Assert::sep(
            Assert::PointsTo(l.clone(), d1, v1.clone()),
            Assert::PointsTo(l, d2, v2.clone()),
        ),
        Assert::Pure(Term::eq(v1, v2)),
        "points-to-agree",
    ))
}

/// Validity: `l ↦{q1} v ∗ l ↦{q2} v ⊢ ⌜false⌝` when `q1 + q2 > 1`.
///
/// # Errors
///
/// Rejects when the fractions actually compose validly.
pub fn points_to_invalid_sum(l: Term, q1: Q, q2: Q, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-invalid-sum", &[&l, &v])?;
    if (q1 + q2).is_valid_permission() {
        return reject("points-to-invalid-sum", "the fractions are compatible");
    }
    Ok(Entails::axiom(
        Assert::sep(
            Assert::PointsTo(l.clone(), DFrac::own(q1), v.clone()),
            Assert::PointsTo(l, DFrac::own(q2), v),
        ),
        Assert::falsity(),
        "points-to-invalid-sum",
    ))
}

/// Splitting: `l ↦{q1+q2} v ⊢ l ↦{q1} v ∗ l ↦{q2} v`.
///
/// # Errors
///
/// Rejects non-positive fractions.
pub fn points_to_split(l: Term, q1: Q, q2: Q, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-split", &[&l, &v])?;
    if !q1.is_positive() || !q2.is_positive() {
        return reject("points-to-split", "fractions must be positive");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), DFrac::own(q1 + q2), v.clone()),
        Assert::sep(
            Assert::PointsTo(l.clone(), DFrac::own(q1), v.clone()),
            Assert::PointsTo(l, DFrac::own(q2), v),
        ),
        "points-to-split",
    ))
}

/// Combining: `l ↦{q1} v ∗ l ↦{q2} v ⊢ l ↦{q1+q2} v`.
///
/// # Errors
///
/// Rejects non-positive fractions.
pub fn points_to_combine(l: Term, q1: Q, q2: Q, v: Term) -> Result<Entails, ProofError> {
    no_reads("points-to-combine", &[&l, &v])?;
    if !q1.is_positive() || !q2.is_positive() {
        return reject("points-to-combine", "fractions must be positive");
    }
    Ok(Entails::axiom(
        Assert::sep(
            Assert::PointsTo(l.clone(), DFrac::own(q1), v.clone()),
            Assert::PointsTo(l.clone(), DFrac::own(q2), v.clone()),
        ),
        Assert::PointsTo(l, DFrac::own(q1 + q2), v),
        "points-to-combine",
    ))
}

/// Ghost composition: `own γ (a ⋅ b) ⊣⊢ own γ a ∗ own γ b` — the
/// splitting direction.
pub fn own_split(
    g: crate::world::GhostName,
    a: crate::world::GhostVal,
    b: crate::world::GhostVal,
) -> Entails {
    Entails::axiom(
        Assert::Own(g, a.op(&b)),
        Assert::sep(Assert::Own(g, a), Assert::Own(g, b)),
        "own-split",
    )
}

/// Ghost composition, combining direction.
pub fn own_combine(
    g: crate::world::GhostName,
    a: crate::world::GhostVal,
    b: crate::world::GhostVal,
) -> Entails {
    Entails::axiom(
        Assert::sep(Assert::Own(g, a.clone()), Assert::Own(g, b.clone())),
        Assert::Own(g, a.op(&b)),
        "own-combine",
    )
}

/// Ghost validity: `own γ a ⊢ ⌜false⌝` for invalid `a`.
///
/// # Errors
///
/// Rejects valid elements.
pub fn own_invalid(
    g: crate::world::GhostName,
    a: crate::world::GhostVal,
) -> Result<Entails, ProofError> {
    if a.valid() {
        return reject("own-invalid", "element is valid");
    }
    Ok(Entails::axiom(
        Assert::Own(g, a),
        Assert::falsity(),
        "own-invalid",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{GhostName, GhostVal};
    use daenerys_algebra::{Agree, Frac};
    use daenerys_heaplang::{Loc, Val};

    fn l() -> Term {
        Term::loc(Loc(0))
    }

    #[test]
    fn read_rule_side_conditions() {
        assert!(points_to_read(l(), DFrac::own(Q::HALF), Term::int(1)).is_ok());
        assert!(points_to_read(l(), DFrac::discarded(), Term::int(1)).is_ok());
        // A heap-dependent value term is rejected.
        assert!(points_to_read(l(), DFrac::FULL, Term::read(l())).is_err());
    }

    #[test]
    fn perm_rules() {
        assert!(points_to_perm(l(), Q::HALF, Term::int(0)).is_ok());
        assert!(points_to_perm(l(), Q::ZERO, Term::int(0)).is_err());
        assert!(perm_weaken(l(), Q::HALF, Q::new(1, 3)).is_ok());
        assert!(perm_weaken(l(), Q::new(1, 3), Q::HALF).is_err());
    }

    #[test]
    fn split_combine_shapes() {
        let d = points_to_split(l(), Q::HALF, Q::HALF, Term::int(1)).unwrap();
        match d.rhs() {
            Assert::Sep(a, b) => assert_eq!(a, b),
            _ => panic!("expected ∗"),
        }
        assert!(points_to_combine(l(), Q::HALF, Q::HALF, Term::int(1)).is_ok());
        assert!(points_to_split(l(), Q::ZERO, Q::HALF, Term::int(1)).is_err());
    }

    #[test]
    fn invalid_sum_requires_overflow() {
        assert!(points_to_invalid_sum(l(), Q::ONE, Q::HALF, Term::int(1)).is_ok());
        assert!(points_to_invalid_sum(l(), Q::HALF, Q::HALF, Term::int(1)).is_err());
    }

    #[test]
    fn ghost_rules() {
        let g = GhostName(0);
        let half = GhostVal::Frac(Frac::new(Q::HALF));
        let d = own_split(g, half.clone(), half.clone());
        assert_eq!(d.lhs(), &Assert::Own(g, GhostVal::Frac(Frac::new(Q::ONE))));
        let bad = GhostVal::AgreeVal(Agree::new(Val::int(0)))
            .op(&GhostVal::AgreeVal(Agree::new(Val::int(1))));
        assert!(own_invalid(g, bad).is_ok());
        assert!(own_invalid(g, half).is_err());
    }
}
