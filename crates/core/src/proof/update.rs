//! Rules for the basic update modality and ghost-state updates.
//!
//! The destabilized twist lives in [`bupd_frame`]: framing an assertion
//! around an update is only sound when the framed assertion is *stable*
//! — the update may change the part of the world an unstable assertion
//! was looking at. In stable Iris every assertion satisfies the side
//! condition, which is why the classical rule carries none.

use crate::assert::Assert;
use crate::proof::{reject, Entails, ProofError};
use crate::stability::syntactically_stable;
use crate::world::{GhostName, GhostVal};
use daenerys_algebra::{Auth, DFrac, MaxNat, Ra, SumNat, Q};

/// `P ⊢ |==> P`.
pub fn bupd_intro(p: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::bupd(p), "bupd-intro")
}

/// From `P ⊢ Q`, conclude `|==> P ⊢ |==> Q`.
pub fn bupd_mono(a: &Entails) -> Entails {
    Entails::make(
        Assert::bupd(a.lhs().clone()),
        Assert::bupd(a.rhs().clone()),
        "bupd-mono",
        a.steps() + 1,
    )
}

/// `|==> |==> P ⊢ |==> P`.
pub fn bupd_trans(p: Assert) -> Entails {
    Entails::axiom(
        Assert::bupd(Assert::bupd(p.clone())),
        Assert::bupd(p),
        "bupd-trans",
    )
}

/// **Framing around an update — with the stability side condition**:
/// `P ∗ |==> Q ⊢ |==> (P ∗ Q)` requires `P` syntactically stable.
///
/// # Errors
///
/// Rejects unstable frames — the destabilized logic's key restriction.
pub fn bupd_frame(p: Assert, q: Assert) -> Result<Entails, ProofError> {
    if !syntactically_stable(&p) {
        return reject(
            "bupd-frame",
            format!("frame {} is not syntactically stable", p),
        );
    }
    Ok(Entails::axiom(
        Assert::sep(p.clone(), Assert::bupd(q.clone())),
        Assert::bupd(Assert::sep(p, q)),
        "bupd-frame",
    ))
}

/// Whether `a ~~> b` is a known frame-preserving update for the
/// supported ghost cameras. This is the analytic counterpart of the
/// FPU check the semantic model performs against the enumerated
/// universe; the test suite confirms they agree.
pub fn ghost_fpu(a: &GhostVal, b: &GhostVal) -> bool {
    use GhostVal::*;
    if a == b {
        return a.valid();
    }
    match (a, b) {
        // Exclusive state updates freely.
        (ExclVal(x), ExclVal(y)) => x.valid() && y.valid(),
        // Agreement can never change (frames may hold copies).
        (AgreeVal(_), AgreeVal(_)) => false,
        // Fraction tokens may shrink (give up part of a token)...
        (Frac(x), Frac(y)) => x.valid() && y.valid() && y.amount() <= x.amount(),
        // Authoritative sum-counter: with full ownership (auth + the
        // whole fragment) any simultaneous change is fine; otherwise
        // auth and fragment may grow together (a local update).
        (AuthNat(x), AuthNat(y)) => auth_nat_fpu(x, y),
        // Monotone counter: the authority may only grow; fragments are
        // lower bounds and may shrink.
        (AuthMax(x), AuthMax(y)) => auth_max_fpu(x, y),
        _ => false,
    }
}

fn auth_nat_fpu(x: &Auth<SumNat>, y: &Auth<SumNat>) -> bool {
    match (x.authority(), y.authority()) {
        (Some(a), Some(a2)) => {
            let (f, f2) = (x.fragment().0, y.fragment().0);
            // Frames hold a - f; preservation needs a2 - f2 = a - f and
            // no shrinking of either side below the frame.
            a.0 >= f && a2.0 >= f2 && a2.0 - f2 == a.0 - f
        }
        (None, None) => {
            // Pure fragments may only shrink.
            y.fragment().0 <= x.fragment().0
        }
        _ => false,
    }
}

fn auth_max_fpu(x: &Auth<MaxNat>, y: &Auth<MaxNat>) -> bool {
    match (x.authority(), y.authority()) {
        (Some(a), Some(a2)) => {
            // Authority only grows; the new fragment must be bounded by
            // the new authority. Old fragment bound: frames hold at most
            // a, which stays ≤ a2.
            a2.0 >= a.0 && y.fragment().0 <= a2.0 && x.fragment().0 <= a.0
        }
        (None, None) => y.fragment().0 <= x.fragment().0,
        _ => false,
    }
}

/// Ghost update: `own γ a ⊢ |==> own γ b` when `a ~~> b` is a known
/// frame-preserving update.
///
/// # Errors
///
/// Rejects unknown or non-frame-preserving updates.
pub fn ghost_update(g: GhostName, a: GhostVal, b: GhostVal) -> Result<Entails, ProofError> {
    if !ghost_fpu(&a, &b) {
        return reject(
            "ghost-update",
            format!("{:?} ~~> {:?} is not a known frame-preserving update", a, b),
        );
    }
    Ok(Entails::axiom(
        Assert::Own(g, a),
        Assert::bupd(Assert::Own(g, b)),
        "ghost-update",
    ))
}

/// Ghost allocation: `emp ⊢ |==> own γ a` for a valid *exclusive-or-
/// authoritative* element at a name assumed fresh.
///
/// In the finite model, freshness cannot be expressed inside the logic,
/// so allocation is only admissible when the caller can guarantee the
/// name is unused; the program-logic layer tracks a name supply. The
/// rule still checks validity.
///
/// # Errors
///
/// Rejects invalid elements.
pub fn ghost_alloc(g: GhostName, a: GhostVal) -> Result<Entails, ProofError> {
    if !a.valid() {
        return reject("ghost-alloc", "cannot allocate an invalid element");
    }
    Ok(Entails::axiom(
        Assert::Emp,
        Assert::bupd(Assert::Own(g, a)),
        "ghost-alloc",
    ))
}

/// Points-to persistence (`pointsto_persist`): any owned fraction may be
/// discarded: `l ↦{q} v ⊢ |==> l ↦□ v`.
///
/// # Errors
///
/// Rejects heap-dependent terms and invalid fractions.
pub fn points_to_discard(
    l: crate::term::Term,
    q: Q,
    v: crate::term::Term,
) -> Result<Entails, ProofError> {
    if l.has_read() || v.has_read() {
        return reject("points-to-discard", "terms must be read-free");
    }
    if !q.is_valid_permission() {
        return reject("points-to-discard", "not a valid fraction");
    }
    Ok(Entails::axiom(
        Assert::PointsTo(l.clone(), DFrac::own(q), v.clone()),
        Assert::bupd(Assert::PointsTo(l, DFrac::discarded(), v)),
        "points-to-discard",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;
    use daenerys_algebra::{Agree, Excl};
    use daenerys_heaplang::{Loc, Val};

    #[test]
    fn bupd_frame_requires_stable_frame() {
        let stable = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
        let unstable = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));
        let q = Assert::Emp;
        assert!(bupd_frame(stable, q.clone()).is_ok());
        assert!(bupd_frame(unstable, q).is_err());
    }

    #[test]
    fn ghost_fpu_cases() {
        use GhostVal::*;
        let e0 = ExclVal(Excl::new(Val::int(0)));
        let e1 = ExclVal(Excl::new(Val::int(1)));
        assert!(ghost_fpu(&e0, &e1));
        let a0 = AgreeVal(Agree::new(Val::int(0)));
        let a1 = AgreeVal(Agree::new(Val::int(1)));
        assert!(ghost_fpu(&a0, &a0));
        assert!(!ghost_fpu(&a0, &a1));
        assert!(ghost_fpu(
            &Frac(daenerys_algebra::Frac::new(Q::ONE)),
            &Frac(daenerys_algebra::Frac::new(Q::HALF))
        ));
        assert!(!ghost_fpu(
            &Frac(daenerys_algebra::Frac::new(Q::HALF)),
            &Frac(daenerys_algebra::Frac::new(Q::ONE))
        ));
    }

    #[test]
    fn auth_counter_increments() {
        use GhostVal::AuthNat;
        // ● n ⋅ ◯ k  ~~>  ● (n+1) ⋅ ◯ (k+1): add a contribution.
        let before = AuthNat(Auth::both(SumNat(3), SumNat(1)));
        let after = AuthNat(Auth::both(SumNat(4), SumNat(2)));
        assert!(ghost_fpu(&before, &after));
        // Growing only the fragment is not frame-preserving.
        let bad = AuthNat(Auth::both(SumNat(3), SumNat(2)));
        assert!(!ghost_fpu(&before, &bad));
        // A pure fragment cannot grow.
        assert!(!ghost_fpu(
            &AuthNat(Auth::frag(SumNat(1))),
            &AuthNat(Auth::frag(SumNat(2)))
        ));
    }

    #[test]
    fn auth_max_grows() {
        use GhostVal::AuthMax;
        let before = AuthMax(Auth::both(MaxNat(3), MaxNat(3)));
        let after = AuthMax(Auth::both(MaxNat(5), MaxNat(5)));
        assert!(ghost_fpu(&before, &after));
        let shrink = AuthMax(Auth::both(MaxNat(2), MaxNat(2)));
        assert!(!ghost_fpu(&before, &shrink));
    }

    #[test]
    fn ghost_update_rule() {
        let g = GhostName(0);
        let d = ghost_update(
            g,
            GhostVal::ExclVal(Excl::new(Val::int(0))),
            GhostVal::ExclVal(Excl::new(Val::int(1))),
        )
        .unwrap();
        assert_eq!(d.rule(), "ghost-update");
        assert!(ghost_update(
            g,
            GhostVal::AgreeVal(Agree::new(Val::int(0))),
            GhostVal::AgreeVal(Agree::new(Val::int(1))),
        )
        .is_err());
    }

    #[test]
    fn discard_rule() {
        assert!(points_to_discard(Term::loc(Loc(0)), Q::HALF, Term::int(1)).is_ok());
        assert!(points_to_discard(Term::loc(Loc(0)), Q::ZERO, Term::int(1)).is_err());
    }
}
