//! Rules for the `later` and `persistently` modalities.
//!
//! Notable deviations from stable Iris, both consequences of dropping
//! monotonicity:
//!
//! * `□ P ⊢ P` is **unsound** here (the core of the owned resource may
//!   satisfy `P` while the resource itself — e.g. under exact
//!   permission introspection — does not); persistence elimination is
//!   only available through [`persistently_elim_persistent`] on the
//!   syntactically persistent fragment.

use crate::assert::Assert;
use crate::proof::{reject, Entails, ProofError};
use crate::stability::{syntactically_elim_persistent, syntactically_persistent};

/// `P ⊢ ▷ P`.
pub fn later_intro(p: Assert) -> Entails {
    Entails::axiom(p.clone(), Assert::later(p), "later-intro")
}

/// From `P ⊢ Q`, conclude `▷ P ⊢ ▷ Q`.
pub fn later_mono(a: &Entails) -> Entails {
    Entails::make(
        Assert::later(a.lhs().clone()),
        Assert::later(a.rhs().clone()),
        "later-mono",
        a.steps() + 1,
    )
}

/// `▷(P ∗ Q) ⊢ ▷P ∗ ▷Q`.
pub fn later_sep_split(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::later(Assert::sep(p.clone(), q.clone())),
        Assert::sep(Assert::later(p), Assert::later(q)),
        "later-sep-split",
    )
}

/// `▷P ∗ ▷Q ⊢ ▷(P ∗ Q)`.
pub fn later_sep_merge(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::sep(Assert::later(p.clone()), Assert::later(q.clone())),
        Assert::later(Assert::sep(p, q)),
        "later-sep-merge",
    )
}

/// `▷(P ∧ Q) ⊢ ▷P ∧ ▷Q`.
pub fn later_and_split(p: Assert, q: Assert) -> Entails {
    Entails::axiom(
        Assert::later(Assert::and(p.clone(), q.clone())),
        Assert::and(Assert::later(p), Assert::later(q)),
        "later-and-split",
    )
}

/// Löb induction: from `Q ∧ ▷P ⊢ P`, conclude `Q ⊢ P`.
///
/// # Errors
///
/// Rejects when the premise does not have the shape `Q ∧ ▷P ⊢ P`.
pub fn loeb(a: &Entails) -> Result<Entails, ProofError> {
    match a.lhs() {
        Assert::And(q, lat) => match &**lat {
            Assert::Later(p) if **p == *a.rhs() => Ok(Entails::make(
                (**q).clone(),
                a.rhs().clone(),
                "loeb",
                a.steps() + 1,
            )),
            _ => reject("loeb", "premise must be Q ∧ ▷P ⊢ P"),
        },
        _ => reject("loeb", "premise must be Q ∧ ▷P ⊢ P"),
    }
}

/// From `P ⊢ Q`, conclude `□ P ⊢ □ Q`.
pub fn persistently_mono(a: &Entails) -> Entails {
    Entails::make(
        Assert::persistently(a.lhs().clone()),
        Assert::persistently(a.rhs().clone()),
        "persistently-mono",
        a.steps() + 1,
    )
}

/// `□ P ⊢ □ □ P`.
pub fn persistently_idem(p: Assert) -> Entails {
    Entails::axiom(
        Assert::persistently(p.clone()),
        Assert::persistently(Assert::persistently(p)),
        "persistently-idem",
    )
}

/// `□ □ P ⊢ □ P`.
pub fn persistently_unidem(p: Assert) -> Entails {
    Entails::axiom(
        Assert::persistently(Assert::persistently(p.clone())),
        Assert::persistently(p),
        "persistently-unidem",
    )
}

/// `□ P ⊢ □ P ∗ □ P` — persistent assertions duplicate.
pub fn persistently_dup(p: Assert) -> Entails {
    let bp = Assert::persistently(p);
    Entails::axiom(bp.clone(), Assert::sep(bp.clone(), bp), "persistently-dup")
}

/// Persistence introduction on the syntactically persistent fragment:
/// `P ⊢ □ P` when `P` describes only core resources.
///
/// # Errors
///
/// Rejects assertions outside the persistent fragment.
pub fn persistent_intro(p: Assert) -> Result<Entails, ProofError> {
    if !syntactically_persistent(&p) {
        return reject(
            "persistent-intro",
            format!("{} is not syntactically persistent", p),
        );
    }
    Ok(Entails::axiom(
        p.clone(),
        Assert::persistently(p),
        "persistent-intro",
    ))
}

/// Persistence elimination on the *elim-persistent* fragment:
/// `□ P ⊢ P` when `P` is syntactically elim-persistent. (The
/// unrestricted rule is unsound in the destabilized, non-monotone,
/// non-affine logic — e.g. `□ emp ⊬ emp`.)
///
/// # Errors
///
/// Rejects assertions outside the elim-persistent fragment.
pub fn persistently_elim_persistent(p: Assert) -> Result<Entails, ProofError> {
    if !syntactically_elim_persistent(&p) {
        return reject(
            "persistently-elim-persistent",
            format!("{} is not syntactically persistent", p),
        );
    }
    Ok(Entails::axiom(
        Assert::persistently(p.clone()),
        p,
        "persistently-elim-persistent",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::{and_elim_r, refl};
    use crate::term::Term;
    use daenerys_algebra::DFrac;
    use daenerys_heaplang::Loc;

    fn pt() -> Assert {
        Assert::points_to(Term::loc(Loc(0)), Term::int(1))
    }

    fn disc() -> Assert {
        Assert::PointsTo(Term::loc(Loc(0)), DFrac::discarded(), Term::int(1))
    }

    #[test]
    fn loeb_shape_checking() {
        // Q ∧ ▷P ⊢ P with P = Q-independent truth: use and-elim shape.
        let p = Assert::later(Assert::truth());
        // Build Q ∧ ▷(▷⊤) ⊢ ▷⊤ via and_elim_r then later-elim shape:
        // simplest: and_elim_r gives (Q ∧ ▷P) ⊢ ▷P — wrong conclusion.
        // Construct a premise with the right shape directly:
        let prem = and_elim_r(pt(), Assert::later(p.clone()));
        // prem : pt ∧ ▷▷⊤ ⊢ ▷▷⊤ — not Löb shape (conclusion is ▷P, not P).
        assert!(loeb(&prem).is_err());
        // A correct Löb shape: (Q ∧ ▷P) ⊢ P where P = ⊤... use true_intro.
        let prem2 = crate::proof::true_intro(Assert::and(pt(), Assert::later(Assert::truth())));
        let d = loeb(&prem2).unwrap();
        assert_eq!(d.lhs(), &pt());
        assert_eq!(d.rhs(), &Assert::truth());
    }

    #[test]
    fn persistence_side_conditions() {
        assert!(persistent_intro(disc()).is_ok());
        assert!(persistent_intro(pt()).is_err());
        assert!(persistently_elim_persistent(disc()).is_ok());
        assert!(persistently_elim_persistent(pt()).is_err());
    }

    #[test]
    fn later_mono_composes() {
        let d = later_mono(&refl(pt()));
        assert_eq!(d.lhs(), &Assert::later(pt()));
        assert_eq!(d.steps(), 2);
    }

    #[test]
    fn dup_shape() {
        let d = persistently_dup(disc());
        match d.rhs() {
            Assert::Sep(a, b) => assert_eq!(a, b),
            _ => panic!("expected ∗"),
        }
    }
}
