//! Proof automation on top of the kernel.
//!
//! [`auto_entails`] proves entailments between separating conjunctions
//! of chunks (points-to, ghost ownership, pure facts) **by composing
//! primitive kernel rules** — commutativity, associativity, monotonicity,
//! fraction splitting — rather than by appealing to the model. The
//! resulting [`Entails`] is an ordinary kernel derivation whose `steps()`
//! counts every primitive application, so automated proofs are as
//! checkable as manual ones (and considerably longer, which T1's
//! proof-size metric reflects).
//!
//! Supported fragment: `∗`-trees whose leaves are
//!
//! * `l ↦{q} v` with literal locations and read-free value terms
//!   (fractions may be split to match the goal),
//! * `own γ a`,
//! * `emp` (dropped/introduced freely),
//! * pure facts (matched syntactically, or proved by evaluation when
//!   closed), and
//! * `⌜true⌝` on the right absorbs any leftover resources.

use crate::assert::Assert;
use crate::proof::{
    self, emp_sep_elim, emp_sep_intro, heap, refl, reject, sep_assoc, sep_assoc_rev, sep_comm,
    sep_mono, sep_true_intro, trans, true_intro, Entails, ProofError,
};
use crate::term::Term;
use daenerys_algebra::{DFrac, Q};

/// Flattens a `∗`-tree into leaves (left-to-right order).
fn leaves(a: &Assert) -> Vec<Assert> {
    match a {
        Assert::Sep(p, q) => {
            let mut out = leaves(p);
            out.extend(leaves(q));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rebuilds the right-nested canonical form of a leaf list.
fn right_nested(ls: &[Assert]) -> Assert {
    match ls {
        [] => Assert::Emp,
        [x] => x.clone(),
        [x, rest @ ..] => Assert::sep(x.clone(), right_nested(rest)),
    }
}

/// Derives `a ⊢ RN(leaves(a))` and its converse, by primitive rules.
fn normalize(a: &Assert) -> (Vec<Assert>, Entails, Entails) {
    match a {
        Assert::Sep(p, q) => {
            let (lp, dp, rp) = normalize(p);
            let (lq, dq, rq) = normalize(q);
            // a = P ∗ Q ⊢ RN(lp) ∗ RN(lq)   (monotonicity)
            let step1 = sep_mono(&dp, &dq);
            let back1 = sep_mono(&rp, &rq);
            // RN(lp) ∗ RN(lq) ⊢ RN(lp ++ lq) (merge by reassociation)
            let (merged, fwd, back) = merge(&lp, &lq);
            let forward = trans(&step1, &fwd).expect("normalize chain");
            let backward = trans(&back, &back1).expect("normalize chain");
            (merged, forward, backward)
        }
        other => {
            let d = refl(other.clone());
            (vec![other.clone()], d.clone(), d)
        }
    }
}

/// Derives `RN(xs) ∗ RN(ys) ⊣⊢ RN(xs ++ ys)`.
fn merge(xs: &[Assert], ys: &[Assert]) -> (Vec<Assert>, Entails, Entails) {
    let mut combined = xs.to_vec();
    combined.extend(ys.to_vec());
    match xs {
        [] => {
            // emp ∗ RN(ys) ⊢ RN(ys) and back.
            let fwd = emp_sep_elim(right_nested(ys));
            let back = emp_sep_intro(right_nested(ys));
            (combined, fwd, back)
        }
        [x] if ys.is_empty() => {
            // x ∗ emp ⊢ x: comm then emp-elim.
            let c1 = sep_comm(x.clone(), Assert::Emp);
            let e1 = emp_sep_elim(x.clone());
            let fwd = trans(&c1, &e1).expect("merge chain");
            let i1 = emp_sep_intro(x.clone());
            let c2 = sep_comm(Assert::Emp, x.clone());
            let back = trans(&i1, &c2).expect("merge chain");
            (combined, fwd, back)
        }
        [x] => {
            // x ∗ RN(ys) is already RN([x] ++ ys).
            let d = refl(Assert::sep(x.clone(), right_nested(ys)));
            (combined, d.clone(), d)
        }
        [x, rest @ ..] => {
            // (x ∗ RN(rest)) ∗ RN(ys) ⊢ x ∗ (RN(rest) ∗ RN(ys))
            //                         ⊢ x ∗ RN(rest ++ ys).
            let a1 = sep_assoc(x.clone(), right_nested(rest), right_nested(ys));
            let (_, sub_fwd, sub_back) = merge(rest, ys);
            let m1 = sep_mono(&refl(x.clone()), &sub_fwd);
            let fwd = trans(&a1, &m1).expect("merge chain");
            let m2 = sep_mono(&refl(x.clone()), &sub_back);
            let a2 = sep_assoc_rev(x.clone(), right_nested(rest), right_nested(ys));
            let back = trans(&m2, &a2).expect("merge chain");
            (combined, fwd, back)
        }
    }
}

/// Derives `RN(ls) ⊢ RN([ls[i]] ++ ls \ i)` (bring element `i` to the
/// front), plus the reordered list.
fn bring_to_front(ls: &[Assert], i: usize) -> (Vec<Assert>, Entails) {
    assert!(i < ls.len());
    if i == 0 {
        return (ls.to_vec(), refl(right_nested(ls)));
    }
    // RN(ls) = head ∗ RN(tail); recursively bring (i-1) of tail forward:
    let head = ls[0].clone();
    let tail = &ls[1..];
    let (tail2, d_tail) = bring_to_front(tail, i - 1);
    // head ∗ RN(tail) ⊢ head ∗ (target ∗ RN(rest))
    let step1 = sep_mono(&refl(head.clone()), &d_tail);
    let target = tail2[0].clone();
    let rest = &tail2[1..];
    let d = if rest.is_empty() {
        // head ∗ target ⊢ target ∗ head.
        let step2 = sep_comm(head.clone(), target.clone());
        trans(&step1, &step2).expect("btf")
    } else {
        // head ∗ (target ∗ RN(rest)) ⊢ (head ∗ target) ∗ RN(rest)
        let step2 = sep_assoc_rev(head.clone(), target.clone(), right_nested(rest));
        // (head ∗ target) ∗ RN(rest) ⊢ (target ∗ head) ∗ RN(rest)
        let step3 = proof::frame(&sep_comm(head.clone(), target.clone()), right_nested(rest));
        // (target ∗ head) ∗ RN(rest) ⊢ target ∗ (head ∗ RN(rest)) = RN(out)
        let step4 = sep_assoc(target.clone(), head.clone(), right_nested(rest));
        trans(
            &trans(&trans(&step1, &step2).expect("btf"), &step3).expect("btf"),
            &step4,
        )
        .expect("btf")
    };
    let mut out = vec![target];
    out.push(head);
    out.extend(rest.to_vec());
    (out, d)
}

/// How a goal leaf is satisfied from the available leaves.
enum MatchPlan {
    /// Use leaf `i` verbatim.
    Exact(usize),
    /// Split fraction `q_goal` off points-to leaf `i` (which has more).
    Split(usize, Q, Q),
    /// Prove a closed pure fact by evaluation.
    PureTautology,
}

fn pointsto_parts(a: &Assert) -> Option<(&Term, DFrac, &Term)> {
    match a {
        Assert::PointsTo(l, dq, v) => Some((l, *dq, v)),
        _ => None,
    }
}

/// Finds a plan for one goal leaf against the remaining available
/// leaves.
fn plan_for(goal: &Assert, avail: &[Option<Assert>]) -> Option<MatchPlan> {
    // Exact syntactic match first.
    for (i, slot) in avail.iter().enumerate() {
        if slot.as_ref() == Some(goal) {
            return Some(MatchPlan::Exact(i));
        }
    }
    // Fraction splitting on points-to.
    if let Some((gl, DFrac::Own(gq), gv)) = pointsto_parts(goal) {
        for (i, slot) in avail.iter().enumerate() {
            let Some(have) = slot else { continue };
            if let Some((hl, DFrac::Own(hq), hv)) = pointsto_parts(have) {
                if hl == gl && hv == gv && hq > gq {
                    return Some(MatchPlan::Split(i, gq, hq - gq));
                }
            }
        }
    }
    // Closed pure tautologies.
    if let Assert::Pure(t) = goal {
        if proof::pure_intro(Assert::Emp, t.clone()).is_ok() {
            return Some(MatchPlan::PureTautology);
        }
    }
    None
}

/// Automatically proves `lhs ⊢ rhs` for chunk-shaped assertions by
/// composing primitive kernel rules.
///
/// # Errors
///
/// Rejects goals outside the supported fragment or with unmatched
/// resources (e.g. leftover exact chunks when the goal has no `⌜true⌝`
/// sink, or insufficient fractions).
pub fn auto_entails(lhs: &Assert, rhs: &Assert) -> Result<Entails, ProofError> {
    let (raw_list, to_norm, _from_norm) = normalize(lhs);
    let goal_leaves: Vec<Assert> = leaves(rhs)
        .into_iter()
        .filter(|l| *l != Assert::Emp)
        .collect();
    // Remove emp leaves with an explicit derivation.
    let (avail_list, strip) = strip_emps(&raw_list);
    let mut current = trans(&to_norm, &strip).expect("strip emp chain");
    debug_assert_eq!(leaves_no_emp(current.rhs()), avail_list);

    let mut avail: Vec<Option<Assert>> = avail_list.into_iter().map(Some).collect();

    // Plan every goal leaf.
    let mut plans = Vec::new();
    for g in &goal_leaves {
        match plan_for(g, &avail) {
            Some(MatchPlan::Exact(i)) => {
                avail[i] = None;
                plans.push((g.clone(), MatchPlan::Exact(i)));
            }
            Some(MatchPlan::Split(i, want, rest)) => {
                // Shrink the available chunk.
                let (l, _, v) = pointsto_parts(avail[i].as_ref().expect("planned"))
                    .map(|(l, d, v)| (l.clone(), d, v.clone()))
                    .expect("points-to");
                avail[i] = Some(Assert::PointsTo(l, DFrac::Own(rest), v));
                plans.push((g.clone(), MatchPlan::Split(i, want, rest)));
            }
            Some(MatchPlan::PureTautology) => {
                plans.push((g.clone(), MatchPlan::PureTautology));
            }
            None => {
                return reject(
                    "auto-entails",
                    format!("no way to derive goal conjunct {}", g),
                );
            }
        }
    }
    let leftovers: Vec<Assert> = avail.iter().flatten().cloned().collect();
    let has_sink = goal_leaves.iter().any(|g| *g == Assert::truth());
    if !leftovers.is_empty() && !has_sink {
        return reject(
            "auto-entails",
            format!(
                "{} unconsumed resource(s) and no ⌜true⌝ sink",
                leftovers.len()
            ),
        );
    }

    // Execute the plans: repeatedly bring the needed leaf to the front,
    // transform it (split/taut), and peel it off.
    let mut produced: Vec<Assert> = Vec::new();
    for (goal, plan) in plans {
        let cur_leaves = leaves_no_emp(current.rhs());
        match plan {
            MatchPlan::Exact(_) => {
                let idx = cur_leaves
                    .iter()
                    .position(|l| *l == goal)
                    .expect("planned leaf present");
                let (_, d) = bring_to_front(&cur_leaves, idx);
                current = trans(&current, &d).expect("auto chain");
            }
            MatchPlan::Split(_, want, rest) => {
                let (l, _, v) = pointsto_parts(&goal)
                    .map(|(l, d, v)| (l.clone(), d, v.clone()))
                    .expect("pt");
                let source = Assert::PointsTo(l.clone(), DFrac::Own(want + rest), v.clone());
                let idx = cur_leaves
                    .iter()
                    .position(|x| *x == source)
                    .expect("source chunk present");
                let (after, d) = bring_to_front(&cur_leaves, idx);
                current = trans(&current, &d).expect("auto chain");
                // Split the head chunk.
                let rem_chunk = Assert::PointsTo(l.clone(), DFrac::Own(rest), v.clone());
                let split = heap::points_to_split(l, want, rest, v)?;
                let rest_assert = right_nested(&after[1..]);
                if after.len() == 1 {
                    current = trans(&current, &split).expect("auto chain");
                    // Result: goal ∗ remainder — already right-nested.
                } else {
                    let framed = proof::frame(&split, rest_assert.clone());
                    current = trans(&current, &framed).expect("auto chain");
                    // ((goal ∗ remainder) ∗ rest) ⊢ goal ∗ (remainder ∗ rest)
                    let reassoc = sep_assoc(goal.clone(), rem_chunk, rest_assert);
                    current = trans(&current, &reassoc).expect("auto chain");
                }
            }
            MatchPlan::PureTautology => {
                // RN(cur) ⊢ RN(cur) ∗ ⌜true⌝ ⊢ RN(cur) ∗ goal
                //         ⊢ RN(cur ++ [goal]) ⊢ RN([goal] ++ cur).
                let t = match &goal {
                    Assert::Pure(t) => t.clone(),
                    _ => unreachable!("taut plan only for pure"),
                };
                let rn_cur = current.rhs().clone();
                let intro = sep_true_intro(rn_cur.clone());
                current = trans(&current, &intro).expect("auto chain");
                let strengthen = proof::pure_intro(Assert::truth(), t)?;
                let mono = sep_mono(&refl(rn_cur), &strengthen);
                current = trans(&current, &mono).expect("auto chain");
                // Reassociate RN(cur) ∗ goal into the canonical list.
                let (_, fwd, _) = merge(&cur_leaves, std::slice::from_ref(&goal));
                current = trans(&current, &fwd).expect("auto chain");
                let cur_leaves2 = leaves_no_emp(current.rhs());
                let idx = cur_leaves2
                    .iter()
                    .position(|l| *l == goal)
                    .expect("taut introduced");
                let (_, d) = bring_to_front(&cur_leaves2, idx);
                current = trans(&current, &d).expect("auto chain");
            }
        }
        produced.push(goal);
        // Peel: keep the head aside by rotating it to the back? Instead,
        // maintain the invariant that produced goals accumulate at the
        // *back* in order: rotate the head to the back.
        let cur_leaves = leaves_no_emp(current.rhs());
        if cur_leaves.len() > 1 {
            let d = rotate_front_to_back(&cur_leaves);
            current = trans(&current, &d).expect("auto chain");
        }
    }

    // Drop leftovers into the ⌜true⌝ sink if present... handled by
    // absorbing: any leftover leaves now sit before the produced goals.
    let cur_leaves = leaves_no_emp(current.rhs());
    let n_left = cur_leaves.len() - produced.len();
    if n_left > 0 {
        // Collapse the leftover prefix into ⌜true⌝ and fold it into the
        // goal's ⌜true⌝ sink (whose presence was checked above).
        // First split the right-nested list into prefix ∗ suffix.
        let (_, _, back_m) = merge(&cur_leaves[..n_left], &cur_leaves[n_left..]);
        current = trans(&current, &back_m).expect("auto chain");
        let prefix = right_nested(&cur_leaves[..n_left]);
        let suffix = right_nested(&cur_leaves[n_left..]);
        let absorb = sep_mono(&true_intro(prefix), &refl(suffix.clone()));
        current = trans(&current, &absorb).expect("auto chain");
        // ⌜true⌝ ∗ suffix where suffix contains the goal's own ⌜true⌝:
        // merge the two ⊤ leaves by dropping ours... our ⊤ must replace
        // the goal's ⊤ leaf: bring the goal's ⊤ to front and collapse
        // ⊤ ∗ ⊤ ⊢ ⊤ by true_intro framing.
        let ls = leaves_no_emp(current.rhs());
        // ls = [⊤, goal-leaves...] where goal-leaves include one ⊤.
        let goal_t_idx = 1 + leaves_no_emp(&suffix)
            .iter()
            .position(|l| *l == Assert::truth())
            .expect("sink checked");
        let (ls2, d) = bring_to_front(&ls, goal_t_idx);
        current = trans(&current, &d).expect("auto chain");
        // Now ls2 = [⊤(goal), ⊤(ours), rest...]; collapse index 0&1.
        let rest = right_nested(&ls2[2..]);
        if ls2.len() > 2 {
            let a = sep_assoc_rev(ls2[0].clone(), ls2[1].clone(), rest.clone());
            current = trans(&current, &a).expect("auto chain");
            let collapse = proof::frame(
                &true_intro(Assert::sep(ls2[0].clone(), ls2[1].clone())),
                rest,
            );
            current = trans(&current, &collapse).expect("auto chain");
        } else {
            let collapse = true_intro(Assert::sep(ls2[0].clone(), ls2[1].clone()));
            current = trans(&current, &collapse).expect("auto chain");
        }
    }

    // Finally, reorder the produced form into the goal's exact tree.
    let goal_rn_leaves = leaves_no_emp(current.rhs());
    let target_leaves = goal_leaves;
    let mut order_deriv = refl(current.rhs().clone());
    let mut working = goal_rn_leaves;
    for (pos, want) in target_leaves.iter().enumerate() {
        let idx = working[pos..]
            .iter()
            .position(|l| l == want)
            .map(|k| k + pos)
            .ok_or_else(|| ProofError {
                rule: "auto-entails",
                message: format!("final ordering lost conjunct {}", want),
            })?;
        if idx != pos {
            // Bring to position `pos`: rotate within the suffix.
            let (suffix2, d) = bring_to_front(&working[pos..], idx - pos);
            let prefix = &working[..pos];
            let framed = frame_under_prefix(prefix, &d);
            order_deriv = trans(&order_deriv, &framed).expect("auto chain");
            working = prefix.iter().cloned().chain(suffix2).collect();
        }
    }
    current = trans(&current, &order_deriv).expect("auto chain");
    // The right-nested form of the goal leaves must now match rhs up to
    // reassociation.
    let (_, _, rhs_back) = normalize(rhs);
    let final_d = trans(&current, &rhs_back).map_err(|_| ProofError {
        rule: "auto-entails",
        message: "final reassociation mismatch".to_string(),
    })?;
    Ok(final_d)
}

// --- small helpers over derivation endpoints ---

fn leaves_no_emp(a: &Assert) -> Vec<Assert> {
    leaves(a)
        .into_iter()
        .filter(|l| *l != Assert::Emp)
        .collect()
}

/// Builds `RN(ls) ⊢ RN(ls without emp leaves)` together with the cleaned
/// leaf list.
fn strip_emps(ls: &[Assert]) -> (Vec<Assert>, Entails) {
    match ls {
        [] => (Vec::new(), refl(Assert::Emp)),
        [x] => {
            if *x == Assert::Emp {
                (Vec::new(), refl(Assert::Emp))
            } else {
                (vec![x.clone()], refl(x.clone()))
            }
        }
        [x, rest @ ..] => {
            let (cleaned, d_rest) = strip_emps(rest);
            if *x == Assert::Emp {
                // emp ∗ RN(rest) ⊢ RN(rest) ⊢ RN(cleaned).
                let e = emp_sep_elim(right_nested(rest));
                (cleaned, trans(&e, &d_rest).expect("strip chain"))
            } else if cleaned.is_empty() {
                // x ∗ RN(rest) ⊢ x ∗ emp ⊢ emp ∗ x ⊢ x.
                let step1 = sep_mono(&refl(x.clone()), &d_rest);
                let step2 = sep_comm(x.clone(), Assert::Emp);
                let step3 = emp_sep_elim(x.clone());
                let d = trans(&trans(&step1, &step2).expect("strip"), &step3).expect("strip");
                (vec![x.clone()], d)
            } else {
                let d = sep_mono(&refl(x.clone()), &d_rest);
                let mut out = vec![x.clone()];
                out.extend(cleaned);
                (out, d)
            }
        }
    }
}

/// Derives `RN([h, rest...]) ⊢ RN([rest..., h])` — the left rotation —
/// by repeatedly bringing the element that belongs at each position to
/// the front of the remaining suffix.
fn rotate_front_to_back(ls: &[Assert]) -> Entails {
    let mut working = ls.to_vec();
    let mut d = refl(right_nested(ls));
    let n = working.len();
    let mut target: Vec<Assert> = working[1..].to_vec();
    target.push(working[0].clone());
    for pos in 0..n {
        let want = &target[pos];
        let idx = working[pos..]
            .iter()
            .position(|l| l == want)
            .expect("rotation element")
            + pos;
        if idx != pos {
            let (suffix2, step) = bring_to_front(&working[pos..], idx - pos);
            let framed = frame_under_prefix(&working[..pos], &step);
            d = trans(&d, &framed).expect("rotate chain");
            working = working[..pos].iter().cloned().chain(suffix2).collect();
        }
    }
    d
}

/// Lifts `d : RN(s) ⊢ RN(s')` under a prefix: `RN(p ++ s) ⊢ RN(p ++ s')`.
fn frame_under_prefix(prefix: &[Assert], d: &Entails) -> Entails {
    match prefix {
        [] => d.clone(),
        [x, rest @ ..] => {
            let inner = frame_under_prefix(rest, d);
            sep_mono(&refl(x.clone()), &inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::entails as semantic_entails;
    use crate::universe::UniverseSpec;
    use daenerys_heaplang::Loc;

    fn pt(q: Q, v: i64) -> Assert {
        Assert::points_to_frac(Term::loc(Loc(0)), q, Term::int(v))
    }

    fn check(d: &Entails) {
        let uni = UniverseSpec::tiny().build();
        assert!(
            semantic_entails(d.lhs(), d.rhs(), &uni, 1).is_ok(),
            "automation produced an unsound derivation: {}",
            d
        );
    }

    #[test]
    fn reorders_chunks() {
        let a = Assert::sep(pt(Q::HALF, 1), Assert::Emp);
        let b = pt(Q::HALF, 1);
        let d = auto_entails(&a, &b).unwrap();
        check(&d);

        let lhs = Assert::sep(Assert::Emp, Assert::sep(pt(Q::HALF, 1), Assert::truth()));
        let rhs = Assert::sep(Assert::truth(), pt(Q::HALF, 1));
        let d = auto_entails(&lhs, &rhs).unwrap();
        check(&d);
        assert!(d.steps() > 3, "composition should take several rules");
    }

    #[test]
    fn splits_fractions() {
        let lhs = pt(Q::ONE, 1);
        let rhs = Assert::sep(pt(Q::HALF, 1), pt(Q::HALF, 1));
        let d = auto_entails(&lhs, &rhs).unwrap();
        check(&d);
    }

    #[test]
    fn proves_closed_pure_goals() {
        let lhs = pt(Q::HALF, 1);
        let rhs = Assert::sep(
            pt(Q::HALF, 1),
            Assert::Pure(Term::eq(Term::int(2), Term::int(2))),
        );
        let d = auto_entails(&lhs, &rhs).unwrap();
        check(&d);
    }

    #[test]
    fn absorbs_leftovers_into_true() {
        let rhs = Assert::sep(pt(Q::HALF, 1), Assert::truth());
        // A ghost leftover is absorbed by the goal's ⌜true⌝ sink.
        let lhs = Assert::sep(
            pt(Q::HALF, 1),
            Assert::Own(
                crate::world::GhostName(0),
                crate::world::GhostVal::Frac(daenerys_algebra::Frac::new(Q::HALF)),
            ),
        );
        let d = auto_entails(&lhs, &rhs).unwrap();
        check(&d);
    }

    #[test]
    fn rejects_unprovable_goals() {
        // Missing resources.
        assert!(auto_entails(&pt(Q::HALF, 1), &pt(Q::ONE, 1)).is_err());
        // Leftovers without a sink.
        assert!(auto_entails(
            &Assert::sep(pt(Q::HALF, 1), pt(Q::HALF, 1)),
            &pt(Q::HALF, 1)
        )
        .is_err());
        // Unknown pure goal.
        assert!(auto_entails(
            &pt(Q::HALF, 1),
            &Assert::sep(
                pt(Q::HALF, 1),
                Assert::read_eq(Term::loc(Loc(0)), Term::int(1))
            )
        )
        .is_err());
    }

    #[test]
    fn big_permutation() {
        // Five chunks, reversed.
        let locs: Vec<Assert> = (0..5)
            .map(|i| {
                Assert::Own(
                    crate::world::GhostName(i),
                    crate::world::GhostVal::Frac(daenerys_algebra::Frac::new(Q::HALF)),
                )
            })
            .collect();
        let lhs = locs.iter().cloned().reduce(Assert::sep).expect("nonempty");
        let rhs = locs
            .iter()
            .rev()
            .cloned()
            .reduce(Assert::sep)
            .expect("nonempty");
        let d = auto_entails(&lhs, &rhs).unwrap();
        assert!(d.steps() > 10);
        // Semantic check with a ghost universe would need all five
        // names; the kernel composition itself is the point here, and
        // each primitive is already T2-verified.
        assert_eq!(d.lhs(), &lhs);
        assert_eq!(d.rhs(), &rhs);
    }
}
