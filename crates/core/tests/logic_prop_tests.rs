//! Property-based tests of the destabilized logic's metatheory over
//! randomly generated assertions.

use daenerys_algebra::{DFrac, Q};
use daenerys_core::{
    check_stable, entails, equivalent, holds, stabilize_fast, syntactically_persistent,
    syntactically_stable, Assert, Env, EvalCtx, Term, UniverseSpec, WorldUniverse,
};
use daenerys_heaplang::{Loc, Val};
use proptest::prelude::*;

fn uni() -> WorldUniverse {
    UniverseSpec::tiny().build()
}

/// Terms over the tiny universe's constants (location 0, values 0/1),
/// optionally mentioning the free variable `x`.
fn arb_term(with_var: bool) -> impl Strategy<Value = Term> {
    let leaf = if with_var {
        prop_oneof![
            Just(Term::int(0)),
            Just(Term::int(1)),
            Just(Term::loc(Loc(0))),
            Just(Term::var("x")),
        ]
        .boxed()
    } else {
        prop_oneof![
            Just(Term::int(0)),
            Just(Term::int(1)),
            Just(Term::loc(Loc(0))),
        ]
        .boxed()
    };
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Term::read),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::eq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::le(a, b)),
        ]
    })
}

fn arb_assert(with_var: bool) -> impl Strategy<Value = Assert> {
    let l = || Term::loc(Loc(0));
    let leaf = prop_oneof![
        Just(Assert::truth()),
        Just(Assert::falsity()),
        Just(Assert::Emp),
        arb_term(with_var).prop_map(Assert::Pure),
        arb_term(with_var).prop_map(Assert::WellDef),
        arb_term(with_var).prop_map(Assert::Framed),
        Just(Assert::points_to(l(), Term::int(1))),
        Just(Assert::points_to_frac(l(), Q::HALF, Term::int(0))),
        Just(Assert::PointsTo(l(), DFrac::discarded(), Term::int(1))),
        Just(Assert::PermGe(l(), Q::HALF)),
        Just(Assert::PermEq(l(), Q::ONE)),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Assert::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Assert::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Assert::impl_(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Assert::sep(a, b)),
            inner.clone().prop_map(Assert::later),
            inner.clone().prop_map(Assert::persistently),
            inner.clone().prop_map(Assert::stabilize),
            inner.clone().prop_map(Assert::destab),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the syntactic stable fragment on random assertions.
    #[test]
    fn syntactic_stability_sound(p in arb_assert(false)) {
        if syntactically_stable(&p) {
            let u = uni();
            prop_assert!(
                check_stable(&p, &u, 1).is_ok(),
                "syntactically stable but unstable: {p}"
            );
        }
    }

    /// Soundness of the persistent fragment: `P ⊢ □P`.
    #[test]
    fn syntactic_persistence_sound(p in arb_assert(false)) {
        if syntactically_persistent(&p) {
            let u = uni();
            prop_assert!(
                entails(&p, &Assert::persistently(p.clone()), &u, 1).is_ok(),
                "persistent-intro fails for {p}"
            );
        }
    }

    /// The fast stabilizer always lands in the stable fragment and under
    /// the semantic modality.
    #[test]
    fn stabilize_fast_sound_and_stable(p in arb_assert(false)) {
        let u = uni();
        let s = stabilize_fast(&p);
        prop_assert!(check_stable(&s, &u, 1).is_ok(), "unstable: {s}");
        prop_assert!(
            entails(&s, &Assert::stabilize(p.clone()), &u, 1).is_ok(),
            "{s} does not entail ⌊{p}⌋"
        );
    }

    /// The stabilization sandwich: ⌊P⌋ ⊢ P ⊢ ⌈P⌉.
    #[test]
    fn stabilization_sandwich(p in arb_assert(false)) {
        let u = uni();
        prop_assert!(entails(&Assert::stabilize(p.clone()), &p, &u, 1).is_ok());
        prop_assert!(entails(&p, &Assert::destab(p.clone()), &u, 1).is_ok());
    }

    /// Both modalities are idempotent up to semantic equivalence.
    #[test]
    fn stabilization_idempotent(p in arb_assert(false)) {
        let u = uni();
        let s = Assert::stabilize(p.clone());
        prop_assert!(equivalent(&s, &Assert::stabilize(s.clone()), &u, 1));
        let d = Assert::destab(p);
        prop_assert!(equivalent(&d, &Assert::destab(d.clone()), &u, 1));
    }

    /// Separating conjunction is commutative in the model.
    #[test]
    fn sep_commutative(p in arb_assert(false), q in arb_assert(false)) {
        let u = uni();
        prop_assert!(equivalent(
            &Assert::sep(p.clone(), q.clone()),
            &Assert::sep(q, p),
            &u,
            1
        ));
    }

    /// Substitution agrees with environment extension.
    #[test]
    fn substitution_lemma(p in arb_assert(true), bit in any::<bool>()) {
        let u = uni();
        let v = Val::int(if bit { 1 } else { 0 });
        let ctx = EvalCtx::new(&u);
        let substituted = p.subst("x", &v);
        let mut env = Env::new();
        env.insert("x".to_string(), v);
        for w in u.worlds().into_iter().take(24) {
            prop_assert_eq!(
                holds(&substituted, &w, &Env::new(), 1, &ctx),
                holds(&p, &w, &env, 1, &ctx),
                "substitution mismatch for {} at {:?}", p, w
            );
        }
    }

    /// Persistently is idempotent semantically.
    #[test]
    fn persistently_idempotent(p in arb_assert(false)) {
        let u = uni();
        let b = Assert::persistently(p);
        prop_assert!(equivalent(&b, &Assert::persistently(b.clone()), &u, 1));
    }

    /// And/Or are lattice operations w.r.t. entailment.
    #[test]
    fn lattice_shape(p in arb_assert(false), q in arb_assert(false)) {
        let u = uni();
        let conj = Assert::and(p.clone(), q.clone());
        prop_assert!(entails(&conj, &p, &u, 1).is_ok());
        prop_assert!(entails(&conj, &q, &u, 1).is_ok());
        prop_assert!(entails(&p, &Assert::or(p.clone(), q.clone()), &u, 1).is_ok());
        prop_assert!(entails(&q, &Assert::or(p.clone(), q.clone()), &u, 1).is_ok());
    }
}

/// A documented non-property: truth need NOT be downward-closed in the
/// step index once non-monotone implication is in the language — e.g.
/// `¬▷⊥` holds at 1 but not at 0. Classical uPred bakes in closure by
/// restricting implication; the destabilized model does not.
#[test]
fn step_indexing_is_not_downward_closed_with_impl() {
    let u = uni();
    let ctx = EvalCtx::new(&u);
    let p = Assert::impl_(Assert::later(Assert::falsity()), Assert::falsity());
    let w = daenerys_core::World::solo(daenerys_core::Res::empty());
    assert!(!holds(&p, &w, &Env::new(), 0, &ctx));
    assert!(holds(&p, &w, &Env::new(), 1, &ctx));
}
