//! Experiment T2: every kernel rule is model-checked against the
//! semantic evaluator over finite universes.

use daenerys_core::check::{catalog, corpus, ghost_catalog, verify_catalog};
use daenerys_core::{CameraKind, UniverseSpec};

#[test]
fn all_structural_and_heap_rules_are_sound() {
    let uni = UniverseSpec::tiny().build();
    let derivations = catalog(&corpus());
    assert!(
        derivations.len() > 300,
        "catalog too small: {}",
        derivations.len()
    );
    let reports = verify_catalog(&derivations, &uni, 1);
    let mut all_ok = true;
    for r in &reports {
        if !r.ok() {
            all_ok = false;
            eprintln!(
                "rule {} failed {}/{} instances:",
                r.rule,
                r.instances - r.verified,
                r.instances
            );
            for f in r.failures.iter().take(3) {
                eprintln!("  {}", f);
            }
        }
    }
    assert!(all_ok, "unsound kernel rules detected");
    // Sanity: a healthy number of distinct rules was exercised.
    assert!(
        reports.len() >= 40,
        "only {} rules exercised",
        reports.len()
    );
}

#[test]
fn exclusive_ghost_rules_are_sound() {
    let uni = UniverseSpec::with_ghost(CameraKind::ExclVal).build();
    let reports = verify_catalog(&ghost_catalog(CameraKind::ExclVal), &uni, 1);
    for r in &reports {
        assert!(r.ok(), "rule {} failed: {:?}", r.rule, r.failures);
    }
}

#[test]
fn frac_ghost_rules_are_sound() {
    let uni = UniverseSpec::with_ghost(CameraKind::Frac).build();
    let reports = verify_catalog(&ghost_catalog(CameraKind::Frac), &uni, 1);
    for r in &reports {
        assert!(r.ok(), "rule {} failed: {:?}", r.rule, r.failures);
    }
}

#[test]
fn auth_nat_ghost_rules_are_sound() {
    let uni = UniverseSpec::with_ghost(CameraKind::AuthNat).build();
    let reports = verify_catalog(&ghost_catalog(CameraKind::AuthNat), &uni, 1);
    for r in &reports {
        assert!(r.ok(), "rule {} failed: {:?}", r.rule, r.failures);
    }
}

/// The deliberately-unsound classical rules must indeed fail
/// semantically — the destabilized logic *rejects* them, and this test
/// pins that down.
#[test]
fn classical_rules_fail_without_side_conditions() {
    use daenerys_algebra::Q;
    use daenerys_core::{entails, Assert, Term};
    use daenerys_heaplang::Loc;
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));

    // □P ⊢ P fails for P = emp: the core of a nonempty resource is
    // empty, so □emp holds while emp does not (the logic is not affine).
    assert!(entails(&Assert::persistently(Assert::Emp), &Assert::Emp, &uni, 1).is_err());

    // P ∗ ⊤ ⊢ P fails for introspective P: owning 1 splits into a half
    // satisfying perm(l) = 1/2 plus a ⊤-absorbed remainder.
    let perm = Assert::PermEq(l.clone(), Q::HALF);
    assert!(entails(&Assert::sep(perm.clone(), Assert::truth()), &perm, &uni, 1).is_err());

    // Framing an *unstable* assertion around an update is unsound:
    // read ∗ |==> pt(0) ⊬ |==> (read ∗ pt(0)) — where the update
    // discards the permission backing the read... construct with
    // discard: P = ⌜!l = 1⌝ (true via frame), Q = l ↦□ 1 update.
    let read = Assert::read_eq(l.clone(), Term::int(1));
    let pt = Assert::points_to(l.clone(), Term::int(1));
    let lhs = Assert::sep(read.clone(), Assert::bupd(pt.clone()));
    let rhs = Assert::bupd(Assert::sep(read, pt.clone()));
    // (This particular instance may or may not have a counterexample in
    // the tiny universe; the *rule schema* is rejected by the kernel.)
    let _ = entails(&lhs, &rhs, &uni, 1);
    assert!(
        daenerys_core::proof::update::bupd_frame(Assert::read_eq(l, Term::int(1)), pt).is_err()
    );
}
