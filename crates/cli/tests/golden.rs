//! Golden tests for `daenerys` diagnostic rendering: exact byte
//! comparisons of `--no-color` output, which the CLI guarantees is
//! deterministic (no wall-clock figures, dirty cones in program
//! order). Each test drives the built binary from a scratch directory
//! with relative file names so paths in the output are stable.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daenerys-golden-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daenerys(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_daenerys"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 output")
}

#[test]
fn caret_underlines_point_at_the_offending_read() {
    let dir = scratch("caret");
    std::fs::write(
        dir.join("unstable.idf"),
        "field val: Int\n\nmethod peek(c: Ref)\n  requires c.val > 0\n  ensures c.val > 0\n{\n}\n",
    )
    .unwrap();
    let out = daenerys(&dir, &["check", "unstable.idf", "--no-color"]);
    assert_eq!(out.status.code(), Some(0), "lints alone do not fail check");
    let text = stdout(&out);
    let expected = "warning: precondition of method `peek` is unstable\n\
                    \x20 --> unstable.idf:4:12\n\
                    \x20    |\n\
                    \x20  4 |   requires c.val > 0\n\
                    \x20    |            ^^^^^\n\
                    \x20 = help: at 4:12: heap read `c.val` has no covering permission in scope; \
                    precede `c.val` with `acc(c.val, _)` or wrap it in `old(..)`\n";
    assert!(
        text.starts_with(expected),
        "caret block renders byte-exactly:\n{text}"
    );
    assert!(
        text.contains("0 stable, 0 framed-stable, 2 unstable"),
        "summary tallies classes: {text}"
    );
}

#[test]
fn multi_error_recovery_renders_every_parse_error() {
    let dir = scratch("recovery");
    std::fs::write(
        dir.join("two.idf"),
        "method a( {\nmethod b() { }\nmethod c( {\n",
    )
    .unwrap();
    let out = daenerys(&dir, &["check", "two.idf", "--no-color"]);
    assert_eq!(out.status.code(), Some(1), "parse errors fail check");
    let text = stdout(&out);
    assert!(
        text.contains("--> two.idf:1:11"),
        "first error located: {text}"
    );
    assert!(
        text.contains("--> two.idf:3:11"),
        "recovery reaches the second error past the healthy method: {text}"
    );
    assert!(
        text.contains("error: 2 parse error(s) in two.idf"),
        "trailing count: {text}"
    );
    let carets = text.matches("|           ^").count();
    assert_eq!(carets, 2, "one caret row per error: {text}");
}

#[test]
fn stability_lints_carry_actionable_fix_hints() {
    let dir = scratch("hints");
    std::fs::write(
        dir.join("mix.idf"),
        "field v: Int\n\nmethod stable_one(c: Ref)\n  requires acc(c.v) && c.v > 0\n  ensures acc(c.v)\n{\n}\n\nmethod shaky(c: Ref)\n  requires c.v > 0\n{\n}\n",
    )
    .unwrap();
    let out = daenerys(&dir, &["check", "mix.idf", "--no-color"]);
    let text = stdout(&out);
    assert!(
        text.contains("precede `c.v` with `acc(c.v, _)` or wrap it in `old(..)`"),
        "fix hint names the concrete subject: {text}"
    );
    assert!(
        !text.contains("is stable\n"),
        "stable sites stay quiet outside explain: {text}"
    );
    let explained = stdout(&daenerys(&dir, &["explain", "mix.idf", "--no-color"]));
    assert!(
        explained.contains("is stable\n"),
        "explain renders every site, stable ones included: {explained}"
    );
    // Lints become hard failures under --deny-unstable.
    let denied = daenerys(&dir, &["check", "mix.idf", "--no-color", "--deny-unstable"]);
    assert_eq!(denied.status.code(), Some(1));
}

#[test]
fn verify_output_is_byte_stable_across_thread_counts() {
    let dir = scratch("threads");
    let source: String = (0..24)
        .map(|i| {
            format!(
                "method m{i}(c: Ref) requires acc(c.v) ensures acc(c.v) && c.v == {i} {{ c.v := {i} }}\n"
            )
        })
        .collect();
    std::fs::write(dir.join("wide.idf"), format!("field v: Int\n{source}")).unwrap();
    let mut renders = Vec::new();
    for threads in ["1", "2", "8"] {
        let store = format!("store-{threads}");
        let out = daenerys(
            &dir,
            &[
                "verify",
                "wide.idf",
                "--no-color",
                "--threads",
                threads,
                "--cache-dir",
                &store,
            ],
        );
        assert_eq!(out.status.code(), Some(0), "all methods verify");
        renders.push(stdout(&out));
    }
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[1], renders[2], "2 vs 8 threads");
    assert!(
        renders[0].contains("re-verified 24"),
        "cold store re-verifies everything: {}",
        renders[0]
    );
    assert!(
        renders[0].contains("dirty cone: m0, m1, m2"),
        "cone in program order regardless of schedule: {}",
        renders[0]
    );
}

#[test]
fn failure_reports_render_the_structured_evidence() {
    let dir = scratch("failure");
    std::fs::write(
        dir.join("bad.idf"),
        "field v: Int\n\nmethod bad(c: Ref)\n  requires acc(c.v, 1/2)\n  ensures acc(c.v, 1/2)\n{\n  c.v := 1\n}\n",
    )
    .unwrap();
    let out = daenerys(&dir, &["verify", "bad.idf", "--no-color"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains("error: method `bad` failed"),
        "headline names the method: {text}"
    );
    assert!(
        text.contains("first failure:"),
        "report sections render: {text}"
    );
    assert!(text.contains("heap chunks in scope:"), "{text}");
    assert!(text.contains("verified 0/1 method(s)"), "{text}");
}

#[test]
fn cost_report_is_deterministic_and_json_mode_parses() {
    let dir = scratch("cost");
    std::fs::write(
        dir.join("prog.idf"),
        "field v: Int\nmethod hot(c: Ref, d: Ref) requires acc(c.v) && d.v > 0 ensures acc(c.v) { c.v := 1; c.v := 2 }\nmethod calm(c: Ref) requires acc(c.v) ensures acc(c.v) { }\n",
    )
    .unwrap();
    let a = stdout(&daenerys(&dir, &["cost", "prog.idf", "--no-color"]));
    let b = stdout(&daenerys(&dir, &["cost", "prog.idf", "--no-color"]));
    assert_eq!(a, b, "table output is byte-stable");
    assert!(a.contains("destabilize or stabilize its spec"), "{a}");
    let json = stdout(&daenerys(&dir, &["cost", "prog.idf", "--json"]));
    let parsed = daenerys_obs::parse_json(&json).expect("cost JSON parses");
    drop(parsed);
    assert!(json.contains("\"summary\""), "{json}");
}

#[test]
fn watch_once_gates_on_the_exact_dirty_cone() {
    let dir = scratch("watch");
    let base: String = (0..12)
        .map(|i| {
            format!(
                "method w{i}(c: Ref) requires acc(c.v) ensures acc(c.v) && c.v == {i} {{ c.v := {i} }}\n"
            )
        })
        .collect();
    std::fs::write(dir.join("w.idf"), format!("field v: Int\n{base}")).unwrap();
    let cold = daenerys(
        &dir,
        &["verify", "w.idf", "--no-color", "--cache-dir", "store"],
    );
    assert_eq!(cold.status.code(), Some(0));
    // Leaf-body edit: only w3's body changes; its spec fingerprint is
    // untouched so the cone is exactly {w3}.
    let edited = format!(
        "field v: Int\n{}",
        base.replace("{ c.v := 3 }", "{ c.v := 2; c.v := 3 }")
    );
    std::fs::write(dir.join("w.idf"), edited).unwrap();
    let warm = daenerys(
        &dir,
        &[
            "watch",
            "w.idf",
            "--once",
            "--no-color",
            "--cache-dir",
            "store",
            "--expect-reverified",
            "1",
        ],
    );
    let text = stdout(&warm);
    assert_eq!(warm.status.code(), Some(0), "gate passes: {text}");
    assert!(
        text.contains("dirty cone: w3\n"),
        "cone is exactly the edited leaf: {text}"
    );
    // The same gate trips when the expectation is wrong.
    let tripped = daenerys(
        &dir,
        &[
            "watch",
            "w.idf",
            "--once",
            "--no-color",
            "--cache-dir",
            "store",
            "--expect-reverified",
            "5",
        ],
    );
    assert_eq!(
        tripped.status.code(),
        Some(1),
        "mismatched cone fails the gate"
    );
}
