//! Pretty terminal diagnostics: source excerpts with caret underlines
//! for every span-carrying diagnostic the pipeline produces — parse
//! errors (with multi-error recovery), well-formedness errors,
//! stability lints with fix hints, and the structured
//! [`FailureReport`] attached to failed verdicts.
//!
//! Rendering is deterministic and color-transparent: the text is
//! byte-identical under [`ColorMode::Never`] whatever the thread
//! count, and color mode only wraps escape sequences around the same
//! bytes (see `daenerys_obs::render`).

use daenerys_idf::{FailureReport, ParseError, SpecVerdict, StabilityClass, Verdict, WfError};
use daenerys_obs::{caret_line, gutter, ColorMode, Style};
use std::fmt::Write as _;

/// A loaded source file: display name plus its lines, the substrate
/// every excerpt is cut from.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Name shown in `--> name:line:col` location lines.
    pub name: String,
    lines: Vec<String>,
}

impl SourceFile {
    /// Wraps already-read source text.
    pub fn new(name: impl Into<String>, text: &str) -> SourceFile {
        SourceFile {
            name: name.into(),
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    /// The 1-based source line, when it exists.
    fn line(&self, line: u32) -> Option<&str> {
        (line >= 1)
            .then(|| self.lines.get(line as usize - 1).map(String::as_str))
            .flatten()
    }
}

/// Renders diagnostics against one source file.
#[derive(Debug)]
pub struct Renderer {
    /// Color mode for every `paint` call.
    pub color: ColorMode,
}

impl Renderer {
    /// A renderer in the given color mode.
    pub fn new(color: ColorMode) -> Renderer {
        Renderer { color }
    }

    fn paint(&self, style: Style, text: &str) -> String {
        style.paint(self.color, text)
    }

    /// One source excerpt: location line, gutter, the source line, and
    /// a caret underline of `width` starting at `col`. Lines the file
    /// does not contain (synthesized spans) render location-only.
    fn excerpt(&self, out: &mut String, file: &SourceFile, line: u32, col: u32, width: usize) {
        let _ = writeln!(
            out,
            "  {} {}:{}:{}",
            self.paint(Style::GUTTER, "-->"),
            file.name,
            line,
            col
        );
        let Some(text) = file.line(line) else {
            return;
        };
        let gut = gutter(line, 4);
        let pad = " ".repeat(gut.len());
        // Clamp the underline to what the line actually holds so long
        // subjects never overshoot the text.
        let avail = text.len().saturating_sub(col.max(1) as usize - 1).max(1);
        let _ = writeln!(out, "{} {}", pad, self.paint(Style::GUTTER, "|"));
        let _ = writeln!(
            out,
            "{} {} {}",
            self.paint(Style::GUTTER, &gut),
            self.paint(Style::GUTTER, "|"),
            text
        );
        let _ = writeln!(
            out,
            "{} {} {}",
            pad,
            self.paint(Style::GUTTER, "|"),
            self.paint(Style::ERROR, &caret_line(col, width.min(avail)))
        );
    }

    /// Renders every parse error the recovery parser collected.
    pub fn parse_errors(&self, file: &SourceFile, errors: &[ParseError]) -> String {
        let mut out = String::new();
        for e in errors {
            let _ = writeln!(
                out,
                "{}{} {}",
                self.paint(Style::ERROR, "error"),
                self.paint(Style::BOLD, ":"),
                self.paint(Style::BOLD, &e.message)
            );
            if e.line > 0 {
                self.excerpt(&mut out, file, e.line as u32, e.col as u32, 1);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{}: {} parse error(s) in {}",
            self.paint(Style::ERROR, "error"),
            errors.len(),
            file.name
        );
        out
    }

    /// Renders well-formedness errors.
    pub fn wf_errors(&self, file: &SourceFile, errors: &[WfError]) -> String {
        let mut out = String::new();
        for e in errors {
            let method = if e.method.is_empty() {
                String::new()
            } else {
                format!(" in method `{}`", e.method)
            };
            let _ = writeln!(
                out,
                "{}{} {}",
                self.paint(Style::ERROR, "error"),
                self.paint(Style::BOLD, ":"),
                self.paint(Style::BOLD, &format!("{}{}", e.message, method))
            );
            if e.span.is_known() {
                self.excerpt(&mut out, file, e.span.line, e.span.col, 1);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{}: {} well-formedness error(s) in {}",
            self.paint(Style::ERROR, "error"),
            errors.len(),
            file.name
        );
        out
    }

    /// Renders one stability verdict as a lint: classification header,
    /// per-finding excerpts with caret underlines, and fix hints.
    /// Stable sites render nothing (they are the quiet default);
    /// `verbose` renders them too (the `explain` subcommand).
    pub fn stability_verdict(&self, file: &SourceFile, v: &SpecVerdict, verbose: bool) -> String {
        let mut out = String::new();
        if v.class == StabilityClass::Stable && !verbose {
            return out;
        }
        let (label, style) = match v.class {
            StabilityClass::Stable => ("stable", Style::OK),
            StabilityClass::FramedStable => ("framed-stable", Style::HEAD),
            StabilityClass::Unstable => ("unstable", Style::WARN),
        };
        let severity = if v.class == StabilityClass::Unstable {
            self.paint(Style::WARN, "warning")
        } else {
            self.paint(Style::HEAD, "note")
        };
        let _ = writeln!(
            out,
            "{}{} {} of method `{}` is {}",
            severity,
            self.paint(Style::BOLD, ":"),
            v.site,
            v.method,
            self.paint(style, label)
        );
        for f in &v.findings {
            if f.span.is_known() {
                self.excerpt(
                    &mut out,
                    file,
                    f.span.line,
                    f.span.col,
                    f.subject.len().max(1),
                );
            }
            let _ = writeln!(out, "  {} {}", self.paint(Style::GUTTER, "= help:"), f);
        }
        out.push('\n');
        out
    }

    /// Renders a method's failed/unknown verdict: headline plus the
    /// structured failure report (first failure, path condition, heap
    /// chunks, hottest queries).
    pub fn verdict(&self, method: &str, verdict: &Verdict) -> String {
        let mut out = String::new();
        match verdict {
            Verdict::Verified(stats) => {
                let _ = writeln!(
                    out,
                    "  {} {} ({} obligation(s))",
                    self.paint(Style::OK, "verified"),
                    self.paint(Style::BOLD, method),
                    stats.obligations
                );
            }
            Verdict::Failed { failures, report } => {
                let _ = writeln!(
                    out,
                    "{}{} method `{}` failed {} obligation(s)",
                    self.paint(Style::ERROR, "error"),
                    self.paint(Style::BOLD, ":"),
                    method,
                    failures.len()
                );
                self.report(&mut out, report);
            }
            Verdict::Unknown { reason, report, .. } => {
                let _ = writeln!(
                    out,
                    "{}{} method `{}` is unknown: {}",
                    self.paint(Style::WARN, "warning"),
                    self.paint(Style::BOLD, ":"),
                    method,
                    reason
                );
                self.report(&mut out, report);
            }
            Verdict::CrashedInternal { message } => {
                let _ = writeln!(
                    out,
                    "{}{} method `{}` crashed the verifier internally: {}",
                    self.paint(Style::ERROR, "error"),
                    self.paint(Style::BOLD, ":"),
                    method,
                    message
                );
            }
        }
        out
    }

    fn report(&self, out: &mut String, report: &FailureReport) {
        if report.is_empty() {
            return;
        }
        let _ = writeln!(
            out,
            "  {} {}",
            self.paint(Style::HEAD, "first failure:"),
            report.first_failure
        );
        if !report.path_condition.is_empty() {
            let _ = writeln!(out, "  {}", self.paint(Style::HEAD, "path condition:"));
            for c in &report.path_condition {
                let _ = writeln!(out, "    {}", c);
            }
        }
        if !report.chunks.is_empty() {
            let _ = writeln!(
                out,
                "  {}",
                self.paint(Style::HEAD, "heap chunks in scope:")
            );
            for c in &report.chunks {
                let _ = writeln!(out, "    {}", c);
            }
        }
        if !report.hot_queries.is_empty() {
            let _ = writeln!(
                out,
                "  {}",
                self.paint(Style::HEAD, "hottest solver queries:")
            );
            for q in &report.hot_queries {
                let _ = writeln!(
                    out,
                    "    fuel={:<6} {} {}",
                    q.fuel,
                    if q.cache_hit { "[cache]" } else { "[fresh]" },
                    q.description
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_idf::analyze_program;

    #[test]
    fn excerpt_clamps_underline_to_line_end() {
        let file = SourceFile::new("t.idf", "short\n");
        let r = Renderer::new(ColorMode::Never);
        let mut out = String::new();
        r.excerpt(&mut out, &file, 1, 4, 80);
        assert!(out.contains("   ^^"), "caret clamped to 2 columns: {out}");
        assert!(!out.contains("^^^"), "never overshoots the line");
    }

    #[test]
    fn unstable_lint_carries_fix_hint_and_caret() {
        let src = "field val: Int\nmethod get(c: Ref) requires true ensures c.val == 1 { }\n";
        let prog = daenerys_idf::parse_program(src).unwrap();
        let verdicts = analyze_program(&prog);
        let v = verdicts
            .iter()
            .find(|v| v.class == StabilityClass::Unstable)
            .expect("the postcondition is unstable");
        let file = SourceFile::new("t.idf", src);
        let out = Renderer::new(ColorMode::Never).stability_verdict(&file, v, false);
        assert!(out.contains("unstable"), "{out}");
        assert!(out.contains("^^^^^"), "caret spans `c.val`: {out}");
        assert!(out.contains("acc("), "fix hint suggests acc: {out}");
    }
}
