//! Rendering for the static cost report (`daenerys cost`): a text
//! table sorted by predicted fuel, and a hand-rendered JSON form for
//! machine consumers (the repo carries no serde).

use daenerys_idf::{MethodCost, StabilityClass};
use daenerys_obs::{fmt_count, ColorMode, Style, TextTable};
use std::fmt::Write as _;

/// Renders the cost report as an aligned table plus a hot-spec
/// summary. Deterministic: the input is already sorted (fuel desc,
/// name asc) and no wall-clock figures appear.
pub fn render_table(costs: &[MethodCost], color: ColorMode) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        Style::HEAD.paint(color, "predicted static cost (fuel desc)")
    );
    let mut table = TextTable::new(&[
        "method",
        "fuel",
        "queries",
        "paths",
        "splits",
        "scans",
        "stability",
    ]);
    for c in costs {
        table.row(&[
            c.method.clone(),
            fmt_count(c.fuel),
            fmt_count(c.queries),
            fmt_count(c.paths),
            fmt_count(c.splits),
            fmt_count(c.invalidation_scans),
            c.worst_class.to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    let hot: Vec<&MethodCost> = costs.iter().filter(|c| c.is_hot_unstable()).collect();
    if hot.is_empty() {
        let _ = writeln!(
            out,
            "{}",
            Style::OK.paint(color, "no hot unstable specs predicted")
        );
    } else {
        let _ = writeln!(
            out,
            "{} {} method(s) predict baseline invalidation traffic:",
            Style::WARN.paint(color, "hot:"),
            hot.len()
        );
        for c in &hot {
            let _ = writeln!(
                out,
                "  {} ({} predicted scans) — destabilize or stabilize its spec",
                Style::BOLD.paint(color, &c.method),
                fmt_count(c.invalidation_scans)
            );
        }
    }
    out
}

/// Renders the cost report as JSON (one object per method, report
/// order preserved).
pub fn render_json(file: &str, costs: &[MethodCost]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"file\": \"{}\",", json_escape(file));
    let _ = writeln!(out, "  \"methods\": [");
    for (i, c) in costs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"method\": \"{}\", \"fuel\": {}, \"queries\": {}, \"paths\": {}, \
             \"splits\": {}, \"invalidation_scans\": {}, \"branches\": {}, \"loops\": {}, \
             \"calls\": {}, \"writes\": {}, \"spec_reads\": {}, \"accs\": {}, \
             \"stability\": \"{}\", \"hot_unstable\": {}}}{}",
            json_escape(&c.method),
            c.fuel,
            c.queries,
            c.paths,
            c.splits,
            c.invalidation_scans,
            c.branches,
            c.loops,
            c.calls,
            c.writes,
            c.spec_reads,
            c.accs,
            c.worst_class,
            c.is_hot_unstable(),
            if i + 1 < costs.len() { "," } else { "" },
        );
    }
    let hot = costs.iter().filter(|c| c.is_hot_unstable()).count();
    let unstable = costs
        .iter()
        .filter(|c| c.worst_class == StabilityClass::Unstable)
        .count();
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"methods\": {}, \"unstable\": {}, \"hot_unstable\": {}, \"total_fuel\": {}}}",
        costs.len(),
        unstable,
        hot,
        costs.iter().map(|c| c.fuel).fold(0u64, u64::saturating_add),
    );
    out.push_str("}\n");
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_idf::{estimate_program, parse_program};

    #[test]
    fn table_and_json_are_deterministic_and_sorted() {
        let src = "field val: Int
method hot(c: Ref, d: Ref) requires acc(c.val) && d.val > 0 ensures acc(c.val) { c.val := 1; c.val := 2 }
method calm(c: Ref) requires acc(c.val) ensures acc(c.val) { }";
        let prog = parse_program(src).unwrap();
        let costs = estimate_program(&prog);
        let t1 = render_table(&costs, ColorMode::Never);
        let t2 = render_table(&costs, ColorMode::Never);
        assert_eq!(t1, t2);
        assert!(t1.contains("hot"), "{t1}");
        assert!(t1.contains("destabilize"), "hot spec flagged: {t1}");
        let j = render_json("x.idf", &costs);
        assert!(j.contains("\"hot_unstable\": true"), "{j}");
        assert!(j.contains("\"summary\""));
        daenerys_obs::parse_json(&j).expect("cost JSON parses");
    }
}
