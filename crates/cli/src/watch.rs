//! The watch engine: content-hash polling with a deterministic
//! debounce.
//!
//! Watch mode never trusts mtimes alone — editors truncate-then-write,
//! build tools touch without changing bytes, clocks skew. The engine
//! hashes file contents on every poll and re-verifies only when a
//! *changed* hash has held still for two consecutive polls (the
//! debounce): a save observed mid-write produces a different hash next
//! poll and keeps settling, while a byte-identical touch never fires
//! at all. The rule is a pure function of the observed hash sequence —
//! no timers, no racy "quiet period" — so tests drive it with
//! synthetic sequences and get the same decisions the CLI makes.

/// FNV-1a 64-bit content hash — stable, dependency-free, and fast
/// enough to run per poll on monorepo-scale sources.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The debounce state machine over observed content hashes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Debounce {
    verified: u64,
    pending: Option<u64>,
}

impl Debounce {
    /// A debouncer considering `initial` already verified.
    pub fn new(initial: u64) -> Debounce {
        Debounce {
            verified: initial,
            pending: None,
        }
    }

    /// Feeds one observed hash; `true` means "re-verify now" (the
    /// changed hash held for two consecutive polls). The fired hash
    /// becomes the new verified baseline.
    pub fn observe(&mut self, hash: u64) -> bool {
        if hash == self.verified {
            // Reverted (or never really changed): cancel any pending
            // edit.
            self.pending = None;
            return false;
        }
        match self.pending {
            Some(p) if p == hash => {
                self.verified = hash;
                self.pending = None;
                true
            }
            _ => {
                // First sight of this hash — wait one poll for the
                // write to settle.
                self.pending = Some(hash);
                false
            }
        }
    }

    /// The hash of the content last re-verified.
    pub fn verified(&self) -> u64 {
        self.verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_distinguishes() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }

    #[test]
    fn debounce_fires_only_after_a_settled_change() {
        let a = content_hash(b"a");
        let b = content_hash(b"b");
        let c = content_hash(b"c");
        let mut d = Debounce::new(a);
        assert!(!d.observe(a), "unchanged never fires");
        assert!(!d.observe(b), "first sight of an edit settles");
        assert!(d.observe(b), "second consecutive sight fires");
        assert!(!d.observe(b), "fired hash is the new baseline");
        // A write captured mid-save keeps settling until stable.
        assert!(!d.observe(c));
        assert!(!d.observe(a), "bytes moved again: still settling");
        assert!(d.observe(a), "settled on the final content");
        // Revert-before-settle cancels the pending edit.
        let mut d = Debounce::new(a);
        assert!(!d.observe(b));
        assert!(!d.observe(a), "revert cancels");
        assert!(!d.observe(b), "the edit must settle again from scratch");
        assert!(d.observe(b));
    }
}
