//! The `daenerys` binary: `check`, `verify`, `explain`, `watch`, and
//! `cost` subcommands over IDF source files.
//!
//! ```text
//! daenerys check   FILE...  [common flags]
//! daenerys verify  FILE...  [common flags]
//! daenerys explain FILE...  [common flags]
//! daenerys cost    FILE...  [common flags]
//! daenerys watch   FILE     [common flags] [--once] [--interval-ms N]
//!                           [--expect-reverified N] [--max-wall-ms MS]
//! ```
//!
//! Common flags: `--json`, `--no-color`, `--backend destabilized|stable`,
//! `--threads N`, `--timeout-ms N`, `--fuel N`, `--solver dpll|cdcl`,
//! `--deny-unstable`, `--cache-dir PATH`, `--store-format daes1|jsonl`,
//! `--max-errors N`.
//!
//! Every subcommand is a [`daenerys_idf::Session`] client: the binary
//! never touches
//! verifier internals, so CLI runs exercise exactly the library
//! surface the daemon and the bench harness share. Exit codes: 0 clean,
//! 1 diagnostics or failed verdicts (or a tripped watch gate), 2 usage.

use daenerys_cli::{render_cost_json, render_cost_table, Debounce, Renderer, SourceFile};
use daenerys_idf::{
    analyze_program, check_program, estimate_program, parse_program_with_recovery_capped, Backend,
    Budget, Program, SessionHost, SolverCore, StabilityClass, StoreFormat, VerifierConfig,
    VerifyOutcome, DEFAULT_MAX_ERRORS,
};
use daenerys_obs::ColorMode;
use std::io::IsTerminal;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cmd {
    Check,
    Verify,
    Explain,
    Cost,
    Watch,
}

struct Cli {
    cmd: Cmd,
    files: Vec<PathBuf>,
    json: bool,
    color: ColorMode,
    max_errors: usize,
    backend: Backend,
    config: VerifierConfig,
    // watch-only knobs
    once: bool,
    interval_ms: u64,
    expect_reverified: Option<usize>,
    max_wall_ms: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: daenerys <check|verify|explain|cost|watch> FILE... [flags]\n\
         \n\
         common flags:\n\
         \x20 --json                 machine-readable output\n\
         \x20 --no-color             plain text (byte-stable for tests/pipes)\n\
         \x20 --backend B            destabilized (default) | stable\n\
         \x20 --threads N            verification fan-out (0 = one per CPU)\n\
         \x20 --timeout-ms N         per-method wall-clock budget\n\
         \x20 --fuel N               per-method solver-fuel budget\n\
         \x20 --solver CORE          cdcl (default) | dpll\n\
         \x20 --deny-unstable        fail methods with unstable contracts\n\
         \x20 --cache-dir PATH       persistent verdict store (incremental)\n\
         \x20 --store-format FMT     daes1 | jsonl\n\
         \x20 --max-errors N         parse-diagnostic cap (default {DEFAULT_MAX_ERRORS})\n\
         \n\
         watch flags:\n\
         \x20 --once                 one warm pass, print the dirty cone, exit\n\
         \x20 --interval-ms N        poll interval (default 50)\n\
         \x20 --expect-reverified N  gate: exact re-verified count (exit 1 on mismatch)\n\
         \x20 --max-wall-ms MS       gate: pass wall-time ceiling (exit 1 when over)"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args.first().map(String::as_str) {
        Some("check") => Cmd::Check,
        Some("verify") => Cmd::Verify,
        Some("explain") => Cmd::Explain,
        Some("cost") => Cmd::Cost,
        Some("watch") => Cmd::Watch,
        _ => usage(),
    };
    let mut cli = Cli {
        cmd,
        files: Vec::new(),
        json: false,
        color: if std::io::stdout().is_terminal() {
            ColorMode::Always
        } else {
            ColorMode::Never
        },
        max_errors: DEFAULT_MAX_ERRORS,
        backend: Backend::Destabilized,
        config: VerifierConfig::default(),
        once: false,
        interval_ms: 50,
        expect_reverified: None,
        max_wall_ms: None,
    };
    let mut i = 1;
    let mut budget = Budget::unlimited();
    while i < args.len() {
        let a = args[i].as_str();
        let mut value = |what: &str| -> String {
            i += 1;
            match args.get(i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    eprintln!("daenerys: {a} needs {what}");
                    std::process::exit(2);
                }
            }
        };
        match a {
            "--json" => cli.json = true,
            "--no-color" => cli.color = ColorMode::Never,
            "--once" => cli.once = true,
            "--deny-unstable" => cli.config.deny_unstable = true,
            "--backend" => {
                cli.backend = match value("a backend").as_str() {
                    "destabilized" => Backend::Destabilized,
                    "stable" => Backend::StableBaseline,
                    other => {
                        eprintln!("daenerys: unknown backend {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => cli.config.threads = parse_num(&value("a count"), a),
            "--timeout-ms" => budget = budget.with_deadline_ms(parse_num(&value("ms"), a) as u64),
            "--fuel" => budget = budget.with_solver_fuel(parse_num(&value("a budget"), a) as u64),
            "--solver" => {
                cli.config.solver = SolverCore::parse(&value("dpll|cdcl")).unwrap_or_else(|| {
                    eprintln!("daenerys: --solver needs `dpll` or `cdcl`");
                    std::process::exit(2);
                })
            }
            "--cache-dir" => cli.config.cache_dir = Some(PathBuf::from(value("a directory"))),
            "--store-format" => {
                cli.config.store_format = Some(
                    StoreFormat::parse(&value("daes1|jsonl")).unwrap_or_else(|| {
                        eprintln!("daenerys: --store-format needs `daes1` or `jsonl`");
                        std::process::exit(2);
                    }),
                )
            }
            "--max-errors" => cli.max_errors = parse_num(&value("a count"), a),
            "--interval-ms" => cli.interval_ms = parse_num(&value("ms"), a) as u64,
            "--expect-reverified" => cli.expect_reverified = Some(parse_num(&value("a count"), a)),
            "--max-wall-ms" => cli.max_wall_ms = Some(parse_num(&value("ms"), a) as f64),
            _ if a.starts_with("--") => {
                eprintln!("daenerys: unknown flag {a:?}");
                usage();
            }
            path => cli.files.push(PathBuf::from(path)),
        }
        i += 1;
    }
    cli.config.budget = budget;
    if cli.files.is_empty() {
        eprintln!("daenerys: no input files");
        usage();
    }
    if cli.cmd == Cmd::Watch && cli.files.len() != 1 {
        eprintln!("daenerys: watch takes exactly one file");
        std::process::exit(2);
    }
    cli
}

fn parse_num(v: &str, flag: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("daenerys: {flag} wants a number, got {v:?}");
        std::process::exit(2);
    })
}

fn read_file(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("daenerys: cannot read {}: {}", path.display(), e);
        std::process::exit(2);
    })
}

/// Parse (with multi-error recovery) + well-formedness check, rendering
/// every diagnostic. `Err` carries nothing: diagnostics were printed
/// and the file counts as failed.
fn front_end(cli: &Cli, file: &SourceFile, text: &str, renderer: &Renderer) -> Result<Program, ()> {
    let program = match parse_program_with_recovery_capped(text, cli.max_errors) {
        Ok(p) => p,
        Err(errors) => {
            print!("{}", renderer.parse_errors(file, &errors));
            return Err(());
        }
    };
    if let Err(errors) = check_program(&program) {
        print!("{}", renderer.wf_errors(file, &errors));
        return Err(());
    }
    Ok(program)
}

/// `check`/`explain`: front end + stability lints, no solver.
/// `verbose` renders every spec site (explain); otherwise only
/// non-stable sites surface. Returns `false` when the file fails
/// (parse/wf errors, or unstable specs under `--deny-unstable`).
fn check_one(cli: &Cli, path: &PathBuf, renderer: &Renderer, verbose: bool) -> bool {
    let text = read_file(path);
    let file = SourceFile::new(path.display().to_string(), &text);
    let Ok(program) = front_end(cli, &file, &text, renderer) else {
        return false;
    };
    let verdicts = analyze_program(&program);
    let unstable = verdicts
        .iter()
        .filter(|v| v.class == StabilityClass::Unstable)
        .count();
    if cli.json {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"file\": \"{}\",\n  \"methods\": {},\n  \"spec_sites\": {},\n  \"unstable\": {},\n  \"lints\": [\n",
            json_escape(&file.name),
            program.methods.len(),
            verdicts.len(),
            unstable,
        ));
        let shown: Vec<_> = verdicts
            .iter()
            .filter(|v| verbose || v.class != StabilityClass::Stable)
            .collect();
        for (i, v) in shown.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"method\": \"{}\", \"site\": \"{}\", \"class\": \"{}\", \"findings\": [{}]}}{}\n",
                json_escape(&v.method),
                v.site,
                v.class,
                v.findings
                    .iter()
                    .map(|f| format!("\"{}\"", json_escape(&f.to_string())))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 < shown.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    } else {
        for v in &verdicts {
            print!("{}", renderer.stability_verdict(&file, v, verbose));
        }
        let mut counts = [0usize; 3];
        for v in &verdicts {
            counts[match v.class {
                StabilityClass::Stable => 0,
                StabilityClass::FramedStable => 1,
                StabilityClass::Unstable => 2,
            }] += 1;
        }
        println!(
            "{}: {} method(s), {} spec site(s): {} stable, {} framed-stable, {} unstable",
            file.name,
            program.methods.len(),
            verdicts.len(),
            counts[0],
            counts[1],
            counts[2],
        );
    }
    !(cli.config.deny_unstable && unstable > 0)
}

/// `cost`: front end + static cost report.
fn cost_one(cli: &Cli, path: &PathBuf, renderer: &Renderer) -> bool {
    let text = read_file(path);
    let file = SourceFile::new(path.display().to_string(), &text);
    let Ok(program) = front_end(cli, &file, &text, renderer) else {
        return false;
    };
    let costs = estimate_program(&program);
    if cli.json {
        print!("{}", render_cost_json(&file.name, &costs));
    } else {
        println!("{}:", file.name);
        print!("{}", render_cost_table(&costs, renderer.color));
    }
    true
}

/// Prints one verification outcome: failures in full, then the
/// summary line (and the dirty cone for incremental runs).
fn print_outcome(
    cli: &Cli,
    file: &SourceFile,
    outcome: &VerifyOutcome,
    renderer: &Renderer,
) -> bool {
    let mut clean = true;
    let total = outcome.verdicts.len();
    let verified = outcome
        .verdicts
        .values()
        .filter(|v| v.is_verified())
        .count();
    if cli.json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(&file.name)));
        out.push_str("  \"verdicts\": {\n");
        let n = outcome.verdicts.len();
        for (i, (name, v)) in outcome.verdicts.iter().enumerate() {
            clean &= v.is_verified();
            out.push_str(&format!(
                "    \"{}\": \"{}\"{}\n",
                json_escape(name),
                json_escape(&v.to_string()),
                if i + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"verified\": {verified},\n  \"methods\": {total},\n"
        ));
        if let Some(r) = outcome.reverified {
            out.push_str(&format!(
                "  \"reverified\": {r},\n  \"store_hits\": {},\n  \"store_misses\": {},\n  \"store_dirty_transitive\": {},\n",
                outcome.store_hits.unwrap_or(0),
                outcome.store_misses.unwrap_or(0),
                outcome.store_dirty_transitive.unwrap_or(0),
            ));
        }
        out.push_str(&format!(
            "  \"obligations\": {},\n  \"solver_queries\": {}\n}}\n",
            outcome.stats.obligations, outcome.stats.solver_queries,
        ));
        print!("{out}");
    } else {
        for (name, v) in &outcome.verdicts {
            if !v.is_verified() {
                clean = false;
                print!("{}", renderer.verdict(name, v));
            }
        }
        let mut line = format!("{}: verified {verified}/{total} method(s)", file.name);
        if let Some(r) = outcome.reverified {
            line.push_str(&format!(
                " (re-verified {r}, store hits {}, dirty-transitive {})",
                outcome.store_hits.unwrap_or(0),
                outcome.store_dirty_transitive.unwrap_or(0),
            ));
        }
        println!("{line}");
        if let Some(cone) = &outcome.reverified_methods {
            print_cone(cone);
        }
    }
    clean
}

/// Prints the dirty cone, capped so hub edits on monorepo-scale
/// corpora stay readable.
fn print_cone(cone: &[String]) {
    const CAP: usize = 16;
    if cone.is_empty() {
        return;
    }
    let shown: Vec<&str> = cone.iter().take(CAP).map(String::as_str).collect();
    let suffix = if cone.len() > CAP {
        format!(" … (+{} more)", cone.len() - CAP)
    } else {
        String::new()
    };
    println!("  dirty cone: {}{}", shown.join(", "), suffix);
}

/// `verify`: front end + full verification through the warm host.
fn verify_one(cli: &Cli, host: &SessionHost, path: &PathBuf, renderer: &Renderer) -> bool {
    let text = read_file(path);
    let file = SourceFile::new(path.display().to_string(), &text);
    let Ok(program) = front_end(cli, &file, &text, renderer) else {
        return false;
    };
    let outcome = host.session().verify_program(&program);
    print_outcome(cli, &file, &outcome, renderer)
}

/// One watch pass: read, front-end, warm verify, report. Returns
/// `(clean, reverified, wall_ms)`; `None` counts when the host has no
/// store.
fn watch_pass(cli: &Cli, host: &SessionHost, renderer: &Renderer) -> (bool, Option<usize>, f64) {
    let path = &cli.files[0];
    let text = read_file(path);
    let file = SourceFile::new(path.display().to_string(), &text);
    let start = Instant::now();
    let Ok(program) = front_end(cli, &file, &text, renderer) else {
        return (false, None, start.elapsed().as_secs_f64() * 1000.0);
    };
    let outcome = host.session().verify_program(&program);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let clean = print_outcome(cli, &file, &outcome, renderer);
    println!(
        "  pass: re-verified {} in {:.1} ms",
        outcome.reverified.map_or_else(
            || "all (no store)".to_string(),
            |r| format!("{r} method(s)")
        ),
        wall_ms
    );
    (clean, outcome.reverified, wall_ms)
}

/// `watch --once`: one warm pass with CI gates.
fn watch_once(cli: &Cli, host: &SessionHost, renderer: &Renderer) -> i32 {
    let (clean, reverified, wall_ms) = watch_pass(cli, host, renderer);
    let mut code = i32::from(!clean);
    if let Some(want) = cli.expect_reverified {
        match reverified {
            Some(got) if got == want => {}
            Some(got) => {
                eprintln!("daenerys: watch gate: re-verified {got}, expected {want}");
                code = 1;
            }
            None => {
                eprintln!("daenerys: watch gate: --expect-reverified needs --cache-dir");
                code = 2;
            }
        }
    }
    if let Some(cap) = cli.max_wall_ms {
        if wall_ms > cap {
            eprintln!("daenerys: watch gate: pass took {wall_ms:.1} ms, ceiling is {cap} ms");
            code = 1;
        }
    }
    code
}

/// `watch` (continuous): poll content hashes, debounce, re-verify the
/// dirty cone through the warm store on every settled edit.
fn watch_loop(cli: &Cli, host: &SessionHost, renderer: &Renderer) -> i32 {
    let path = &cli.files[0];
    let _ = watch_pass(cli, host, renderer);
    let mut debounce = Debounce::new(daenerys_cli::content_hash(read_file(path).as_bytes()));
    println!(
        "watching {} (every {} ms; ctrl-c to stop)",
        path.display(),
        cli.interval_ms
    );
    loop {
        std::thread::sleep(std::time::Duration::from_millis(cli.interval_ms));
        let Ok(bytes) = std::fs::read(path) else {
            // Editors replace files non-atomically; treat a missing
            // file as "still settling".
            continue;
        };
        if debounce.observe(daenerys_cli::content_hash(&bytes)) {
            let _ = watch_pass(cli, host, renderer);
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let cli = parse_cli();
    let renderer = Renderer::new(cli.color);
    let code = match cli.cmd {
        Cmd::Check | Cmd::Explain => {
            let verbose = cli.cmd == Cmd::Explain;
            let mut ok = true;
            for path in &cli.files {
                ok &= check_one(&cli, path, &renderer, verbose);
            }
            i32::from(!ok)
        }
        Cmd::Cost => {
            let mut ok = true;
            for path in &cli.files {
                ok &= cost_one(&cli, path, &renderer);
            }
            i32::from(!ok)
        }
        Cmd::Verify => {
            let host = SessionHost::new(cli.backend, cli.config.clone());
            let mut ok = true;
            for path in &cli.files {
                ok &= verify_one(&cli, &host, path, &renderer);
            }
            if let Err(e) = host.flush_store() {
                eprintln!("daenerys: store flush failed: {e}");
                ok = false;
            }
            i32::from(!ok)
        }
        Cmd::Watch => {
            let host = SessionHost::new(cli.backend, cli.config.clone());
            if cli.once {
                let mut code = watch_once(&cli, &host, &renderer);
                if let Err(e) = host.flush_store() {
                    eprintln!("daenerys: store flush failed: {e}");
                    code = 1;
                }
                code
            } else {
                watch_loop(&cli, &host, &renderer)
            }
        }
    };
    std::process::exit(code);
}
