//! # `daenerys-cli` — the developer front door
//!
//! Ships the `daenerys` binary: `check`, `verify`, `explain`, `watch`,
//! and `cost` over IDF sources, implemented entirely against the
//! [`daenerys_idf::Session`]/[`daenerys_idf::SessionHost`] API — the
//! CLI never reaches into verifier internals, so it exercises exactly
//! the surface the daemon and the bench harness share.
//!
//! The library half holds everything the binary does that tests want
//! to drive directly: diagnostic rendering ([`diagnostics`]), the
//! static cost report ([`costfmt`]), and the watch engine's
//! deterministic debounce ([`watch`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod costfmt;
pub mod diagnostics;
pub mod watch;

pub use costfmt::{render_json as render_cost_json, render_table as render_cost_table};
pub use diagnostics::{Renderer, SourceFile};
pub use watch::{content_hash, Debounce};
