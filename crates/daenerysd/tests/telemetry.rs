//! The telemetry plane, over real sockets: admin frames must answer
//! while every tenant budget is saturated, scrapes must carry labeled
//! per-tenant metrics with coherent quantiles, and the trace tail must
//! stream events `trace_validate` accepts — all while the conservation
//! ledger `admitted == completed + refused + in_flight` holds at every
//! observation point.

use daenerys_obs::Json;
use daenerysd::client::{Client, ClientError, RetryPolicy};
use daenerysd::protocol::{AdminRequest, Request, Response};
use daenerysd::server::{MetricsSnapshot, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const GOOD: &str = "field val: Int
method set(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1 { c.val := 1 }";

fn test_config() -> ServerConfig {
    ServerConfig {
        read_poll_ms: 5,
        ..ServerConfig::default()
    }
}

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<MetricsSnapshot>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let flag = server.shutdown_flag();
    (addr, flag, std::thread::spawn(move || server.run()))
}

fn stop(
    flag: &Arc<AtomicBool>,
    handle: std::thread::JoinHandle<MetricsSnapshot>,
) -> MetricsSnapshot {
    flag.store(true, Ordering::SeqCst);
    handle.join().expect("server thread")
}

/// Sends one admin frame and returns its parsed body.
fn scrape(client: &Client, req: &AdminRequest) -> Json {
    match client.admin_once(req).expect("admin frame answered") {
        Response::Admin { id, kind, body } => {
            assert_eq!(id, req.id(), "admin id echoes");
            assert_eq!(kind, req.kind(), "admin kind echoes");
            daenerys_obs::parse_json(&body).expect("admin body is JSON")
        }
        other => panic!("expected an admin response, got {:?}", other),
    }
}

fn num(obj: &std::collections::BTreeMap<String, Json>, key: &str) -> f64 {
    obj.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing numeric {:?} in {:?}", key, obj))
}

/// The headline acceptance property: with `max_in_flight = 0` every
/// verification request is refused at admission — the tenant plane is
/// fully saturated — yet all three admin frames keep answering on the
/// same listener, and the ledger still conserves (refusals are counted,
/// nothing leaks in flight).
#[test]
fn admin_frames_answer_while_tenant_budgets_saturated() {
    let mut config = test_config();
    config.policy.max_in_flight = 0;
    let (addr, flag, handle) = start(config);
    let client = Client::new(addr).with_retry(RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    });

    for id in 1..=4u64 {
        match client.request_once(&Request::new(id, "acme", GOOD), 0) {
            Ok(Response::Refused { id: rid, .. }) => assert_eq!(rid, id),
            other => panic!("expected refusal under zero budget, got {:?}", other),
        }
    }
    // And the retry path gives up without ever being admitted.
    match client.request_with_retry(&Request::new(99, "acme", GOOD)) {
        Err(ClientError::Exhausted { last, .. }) => {
            assert!(
                last.contains("refused"),
                "last failure was a refusal: {}",
                last
            );
        }
        other => panic!("expected exhaustion, got {:?}", other),
    }

    // The telemetry plane still answers — admission never saw it.
    let metrics = scrape(&client, &AdminRequest::Metrics { id: 7 });
    let counters = metrics.as_obj().unwrap()["counters"].as_arr().unwrap();
    let refused = counters
        .iter()
        .filter_map(Json::as_obj)
        .find(|c| {
            c["name"].as_str() == Some("daenerysd.refused")
                && c["labels"].as_obj().and_then(|l| l["tenant"].as_str()) == Some("acme")
        })
        .expect("daenerysd.refused{tenant=acme} is stamped");
    assert_eq!(num(refused, "value"), 5.0, "one bump per refusal");

    let health = scrape(&client, &AdminRequest::Health { id: 8 });
    let health = health.as_obj().unwrap();
    assert_eq!(health["conserved"], Json::Bool(true));
    assert_eq!(health["draining"], Json::Bool(false));
    let acme = health["tenants"].as_obj().unwrap()["acme"]
        .as_obj()
        .unwrap();
    assert_eq!(
        num(acme, "admitted"),
        5.0,
        "refusals still count as presented"
    );
    assert_eq!(num(acme, "refused"), 5.0);
    assert_eq!(num(acme, "completed"), 0.0);
    assert_eq!(num(acme, "in_flight"), 0.0);

    let tail = scrape(
        &client,
        &AdminRequest::TraceTail {
            id: 9,
            after_seq: 0,
            max: u64::MAX,
        },
    );
    assert!(tail.as_obj().unwrap().contains_key("latest_seq"));

    let snapshot = stop(&flag, handle);
    assert_eq!(snapshot.requests_refused, 5);
    assert_eq!(
        snapshot.admin_frames, 3,
        "admin frames counted on their own channel"
    );
    assert_eq!(
        snapshot.requests_received, 5,
        "scrapes never inflate the verification-traffic measure"
    );
    assert_eq!(snapshot.leaked_sessions, 0);
}

/// A real workload leaves per-tenant labels on every metric family and
/// quantiles that are coherent (p50 ≤ p95 ≤ p99, count matches the
/// traffic we actually sent).
#[test]
fn metrics_scrape_carries_tenant_labels_and_monotone_quantiles() {
    let (addr, flag, handle) = start(test_config());
    let client = Client::new(addr);

    const N: u64 = 6;
    for id in 1..=N {
        let tenant = if id % 2 == 0 { "even" } else { "odd" };
        let (resp, _) = client
            .request_with_retry(&Request::new(id, tenant, GOOD))
            .expect("verify succeeds");
        assert!(matches!(resp, Response::Ok { .. }));
    }

    let metrics = scrape(&client, &AdminRequest::Metrics { id: 1 });
    let obj = metrics.as_obj().unwrap();
    let counters = obj["counters"].as_arr().unwrap();
    let histograms = obj["histograms"].as_arr().unwrap();

    let counter = |name: &str, tenant: &str| -> f64 {
        counters
            .iter()
            .filter_map(Json::as_obj)
            .find(|c| {
                c["name"].as_str() == Some(name)
                    && c["labels"].as_obj().and_then(|l| l["tenant"].as_str()) == Some(tenant)
            })
            .map(|c| num(c, "value"))
            .unwrap_or_else(|| panic!("missing {}{{tenant={}}}", name, tenant))
    };
    assert_eq!(counter("daenerysd.requests", "even") as u64, N / 2);
    assert_eq!(counter("daenerysd.requests", "odd") as u64, N.div_ceil(2));
    assert_eq!(counter("daenerysd.verdict.verified", "even") as u64, N / 2);

    for tenant in ["even", "odd"] {
        let lat = histograms
            .iter()
            .filter_map(Json::as_obj)
            .find(|h| {
                h["name"].as_str() == Some("daenerysd.latency_us")
                    && h["labels"].as_obj().and_then(|l| l["tenant"].as_str()) == Some(tenant)
            })
            .unwrap_or_else(|| panic!("missing latency histogram for {}", tenant));
        let (p50, p95, p99) = (num(lat, "p50"), num(lat, "p95"), num(lat, "p99"));
        assert!(p50 <= p95 && p95 <= p99, "{} ≤ {} ≤ {}", p50, p95, p99);
        assert!(
            num(lat, "min") <= p50,
            "quantiles clamp to the observed range"
        );
        assert!(
            p99 <= num(lat, "max"),
            "quantiles clamp to the observed range"
        );
    }

    // The run-global trace registry folds in under empty labels.
    assert!(
        counters.iter().filter_map(Json::as_obj).any(|c| c["labels"]
            .as_obj()
            .is_some_and(std::collections::BTreeMap::is_empty)),
        "unlabeled trace-layer counters fold into the scrape"
    );

    let snapshot = stop(&flag, handle);
    assert_eq!(snapshot.responses_ok, N);
}

/// The trace tail pages events in seq order and every element is a
/// standalone line the JSONL validator accepts — the scrape *is* a
/// trace stream.
#[test]
fn trace_tail_streams_validatable_jsonl() {
    let (addr, flag, handle) = start(test_config());
    let client = Client::new(addr);
    for id in 1..=3u64 {
        client
            .request_with_retry(&Request::new(id, "acme", GOOD))
            .expect("verify succeeds");
    }

    let tail = scrape(
        &client,
        &AdminRequest::TraceTail {
            id: 2,
            after_seq: 0,
            max: u64::MAX,
        },
    );
    let obj = tail.as_obj().unwrap();
    let events = obj["events"].as_arr().unwrap();
    assert!(!events.is_empty(), "verification traffic leaves a trace");
    let mut last_seq = 0.0;
    let mut saw_tenant = false;
    for event in events {
        daenerys_obs::validate_event_line(&event.render())
            .expect("tail element revalidates as one JSONL line");
        let e = event.as_obj().unwrap();
        let seq = num(e, "seq");
        assert!(seq >= last_seq, "tail is seq-ordered");
        last_seq = seq;
        saw_tenant |= e["fields"].as_obj().and_then(|f| f.get("tenant")).is_some()
            && e["fields"].as_obj().unwrap()["tenant"].as_str() == Some("acme");
    }
    assert!(saw_tenant, "request context stamps the tenant onto events");
    assert!(num(obj, "latest_seq") >= last_seq);

    // Cursor semantics: paging from the last seq returns only newer
    // events (none, if the daemon is idle).
    let after = scrape(
        &client,
        &AdminRequest::TraceTail {
            id: 3,
            after_seq: last_seq as u64,
            max: u64::MAX,
        },
    );
    for event in after.as_obj().unwrap()["events"].as_arr().unwrap() {
        assert!(num(event.as_obj().unwrap(), "seq") > last_seq);
    }

    let snapshot = stop(&flag, handle);
    assert_eq!(snapshot.leaked_sessions, 0);
}

/// Turning the plane off degrades scrapes to a typed error, not a hang
/// or a protocol desync.
#[test]
fn disabled_telemetry_answers_with_a_typed_error() {
    let mut config = test_config();
    config.telemetry = false;
    let (addr, flag, handle) = start(config);
    let client = Client::new(addr);
    match client.admin_once(&AdminRequest::Metrics { id: 4 }) {
        Ok(Response::Err { id, message, .. }) => {
            assert_eq!(id, 4);
            assert!(message.contains("telemetry"), "{}", message);
        }
        other => panic!("expected a typed error, got {:?}", other),
    }
    // The session survives the rejected scrape: verify still works.
    let (resp, _) = client
        .request_with_retry(&Request::new(5, "acme", GOOD))
        .expect("verify succeeds after rejected scrape");
    assert!(matches!(resp, Response::Ok { .. }));
    stop(&flag, handle);
}
