//! The wire-level chaos gate, over real sockets.
//!
//! Three layers of evidence that the daemon is fault-*tolerant* and
//! not merely fault-*tested*:
//!
//! 1. property tests: any payload round-trips the framing layer, and
//!    any truncation of a valid frame yields a typed error — never a
//!    panic or a hang;
//! 2. the full fault matrix ([`WireFaultPlan::full`]) driven by
//!    concurrent chaos clients at 3× the per-tenant admission width:
//!    zero panics, zero leaked sessions, an uncorrupted store, and —
//!    the bit-identical gate — every request that completes under
//!    chaos reports exactly the verdicts of the fault-free reference
//!    run;
//! 3. drain semantics: a request in flight when SIGTERM-equivalent
//!    shutdown lands is still answered, and the store is flushed.

use daenerys_idf::VerdictStore;
use daenerysd::chaos::WireFaultPlan;
use daenerysd::client::{Client, RetryPolicy};
use daenerysd::protocol::{read_frame, write_frame, Request, Response};
use daenerysd::server::{MetricsSnapshot, Server, ServerConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const GOOD: &str = "field val: Int
method set(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1 { c.val := 1 }";

const FAILING: &str = "field val: Int
method wrong(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2 { c.val := 1 }";

const TWO_METHODS: &str = "field val: Int
method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 3 { c.val := 3 }
method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 4 { c.val := 4 }";

const PARSE_BAD: &str = "method oops {";

fn corpus() -> Vec<(u64, &'static str)> {
    (1..=24u64)
        .map(|id| {
            let src = match id % 4 {
                0 => PARSE_BAD,
                1 => GOOD,
                2 => FAILING,
                _ => TWO_METHODS,
            };
            (id, src)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daenerysd-chaos-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(cache_dir: Option<PathBuf>) -> ServerConfig {
    let mut config = ServerConfig::default();
    config.base.cache_dir = cache_dir;
    config.read_poll_ms = 5;
    config.frame_deadline_ms = 250;
    config
}

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<MetricsSnapshot>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let flag = server.shutdown_flag();
    (addr, flag, std::thread::spawn(move || server.run()))
}

fn stop(
    flag: &Arc<AtomicBool>,
    handle: std::thread::JoinHandle<MetricsSnapshot>,
) -> MetricsSnapshot {
    flag.store(true, Ordering::SeqCst);
    handle.join().expect("server thread")
}

/// Drives the whole corpus through `client` from `threads` concurrent
/// workers (tenants cycle so admission sees several envelopes).
/// Returns, per request id, the outcome of `request_with_retry`.
fn hammer(client: &Client, threads: usize) -> BTreeMap<u64, Result<Response, String>> {
    let work = corpus();
    let results: Arc<Mutex<BTreeMap<u64, Result<Response, String>>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    std::thread::scope(|scope| {
        let per_lane = work.len().div_ceil(threads);
        for (lane, chunk) in work.chunks(per_lane).enumerate() {
            let results = Arc::clone(&results);
            let client = client.clone();
            scope.spawn(move || {
                for (id, src) in chunk {
                    let mut req = Request::new(*id, format!("tenant-{}", lane % 3), *src);
                    req.deadline_ms = Some(5_000);
                    let outcome = client
                        .request_with_retry(&req)
                        .map(|(resp, _attempts)| resp)
                        .map_err(|e| e.to_string());
                    results.lock().unwrap().insert(*id, outcome);
                }
            });
        }
    });
    Arc::try_unwrap(results).unwrap().into_inner().unwrap()
}

/// The comparable core of a response: verdict kinds and details for
/// `ok`, the error code for errors. (Stats like wall time are
/// environment noise and are not on the wire at all.)
fn comparable(resp: &Response) -> String {
    match resp {
        Response::Ok { verdicts, .. } => {
            let kinds: Vec<String> = verdicts
                .iter()
                .map(|(name, v)| format!("{}={}:{}", name, v.kind, v.detail))
                .collect();
            format!("ok[{}]", kinds.join(","))
        }
        Response::Refused { detail, .. } => format!("refused[{}]", detail),
        Response::Err { code, message, .. } => format!("err[{}:{}]", code.name(), message),
        // Admin answers never flow through the verify replay lanes.
        Response::Admin { kind, .. } => format!("admin[{}]", kind),
    }
}

proptest! {
    /// Any payload survives the framing layer byte-for-byte —
    /// including payloads that embed fake frame headers and newlines.
    #[test]
    fn frames_roundtrip_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor, |_| true).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// Any strict truncation of a valid frame is a typed error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncated_frames_are_typed_errors(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut in any::<usize>(),
    ) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).unwrap();
        let cut = cut % frame.len();
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        let result = read_frame(&mut cursor, |_| true);
        prop_assert!(result.is_err(), "truncation at {} parsed: {:?}", cut, result);
    }

    /// Every corruption the chaos plan can produce yields a typed
    /// error from the reader (or, for identity faults, the payload).
    #[test]
    fn corrupted_frames_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        stream in any::<u64>(),
        frame_no in any::<u64>(),
    ) {
        let plan = WireFaultPlan::full(99);
        let fault = plan.fault_for(stream, frame_no);
        let mut frame = Vec::new();
        write_frame(&mut frame, &payload).unwrap();
        if let Some(bytes) = WireFaultPlan::corrupt(fault, &frame) {
            let mut cursor = std::io::Cursor::new(bytes);
            // An Err here is fine — a typed error is exactly what the
            // server sees; only a silently altered parse is a bug.
            if let Ok(back) = read_frame(&mut cursor, |_| true) {
                prop_assert_eq!(back, payload, "fault {} altered bytes yet parsed", fault);
            }
        }
    }
}

/// The headline gate: full fault matrix, concurrent chaos clients at
/// 3× the default per-tenant admission width, verdicts of completed
/// requests bit-identical to a fault-free reference run, store
/// uncorrupted, zero leaks, zero panics.
#[test]
fn full_fault_matrix_is_survivable_and_bit_identical() {
    // Reference: fault-free run.
    let ref_dir = temp_dir("reference");
    let (addr, flag, handle) = start(test_config(Some(ref_dir.clone())));
    let quiet = Client::new(addr).with_retry(RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        seed: 1,
    });
    let reference = hammer(&quiet, 6);
    let snap = stop(&flag, handle);
    assert_eq!(snap.leaked_sessions, 0, "reference leaked: {:?}", snap);
    assert_eq!(snap.internal_crashes, 0, "reference crashed: {:?}", snap);
    for (id, outcome) in &reference {
        assert!(
            outcome.is_ok(),
            "reference request {} failed: {:?}",
            id,
            outcome
        );
    }

    // Chaos: same corpus, full fault matrix on the client send path.
    let chaos_dir = temp_dir("chaos");
    let (addr, flag, handle) = start(test_config(Some(chaos_dir.clone())));
    let chaos = Client::new(addr)
        .with_faults(WireFaultPlan::full(42))
        .with_read_timeout(Duration::from_secs(10))
        .with_retry(RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 5,
            max_backoff_ms: 50,
            seed: 2,
        });
    let unaffected: Vec<u64> = corpus()
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| !chaos.is_affected(*id))
        .collect();
    assert!(
        !unaffected.is_empty(),
        "the plan must spare some requests for the gate to mean anything"
    );
    let hammered = hammer(&chaos, 6);
    let snap = stop(&flag, handle);
    assert_eq!(snap.leaked_sessions, 0, "chaos leaked sessions: {:?}", snap);
    assert_eq!(snap.internal_crashes, 0, "chaos panicked: {:?}", snap);

    // Unaffected requests must have completed; every completed request
    // must match the reference bit-for-bit on the comparable core.
    for id in &unaffected {
        assert!(
            hammered[id].is_ok(),
            "unaffected request {} failed under chaos: {:?}",
            id,
            hammered[id]
        );
    }
    for (id, outcome) in &hammered {
        if let Ok(resp) = outcome {
            let expected = comparable(reference[id].as_ref().unwrap());
            assert_eq!(
                comparable(resp),
                expected,
                "request {} diverged under chaos",
                id
            );
        }
    }

    // The store survived the whole ordeal uncorrupted.
    let store = VerdictStore::open(&chaos_dir);
    assert_eq!(store.corrupt_lines(), 0, "store has corrupt lines");
    assert!(!store.truncated_tail(), "store tail is truncated");
    assert!(!store.is_empty(), "chaos run persisted nothing");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// Server-side injection: the daemon synthesizes the fault matrix in
/// its own framing layer and must still refuse to panic or leak.
#[test]
fn server_side_fault_injection_is_contained() {
    let mut config = test_config(None);
    config.wire_faults = WireFaultPlan::full(7);
    let (addr, flag, handle) = start(config);
    let client = Client::new(addr).with_retry(RetryPolicy {
        max_attempts: 6,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        seed: 3,
    });
    let results = hammer(&client, 4);
    let snap = stop(&flag, handle);
    assert_eq!(snap.leaked_sessions, 0, "leaked: {:?}", snap);
    assert_eq!(snap.internal_crashes, 0, "panicked: {:?}", snap);
    assert!(
        snap.frame_errors > 0,
        "the injected matrix never fired: {:?}",
        snap
    );
    // Sessions died, but requests retried onto fresh connections (new
    // stream ids → new fault draws), so work still completed.
    assert!(
        results.values().any(|r| r.is_ok()),
        "no request survived server-side chaos: {:?}",
        results
    );
}

/// Shutdown drains: a request already admitted when the flag lands is
/// still verified and answered, the store is flushed, nothing leaks.
#[test]
fn shutdown_drains_in_flight_requests() {
    let dir = temp_dir("drain");
    let (addr, flag, handle) = start(test_config(Some(dir.clone())));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = Request::new(77, "drain-tenant", GOOD);
    write_frame(&mut stream, req.encode().as_bytes()).expect("send");
    // Give the reader time to admit and queue the request, then pull
    // the plug while it may still be verifying.
    std::thread::sleep(Duration::from_millis(150));
    flag.store(true, Ordering::SeqCst);
    let payload = read_frame(&mut stream, |_| true).expect("drained response");
    let resp = Response::decode(&payload).expect("decode");
    match resp {
        Response::Ok { id, verdicts, .. } => {
            assert_eq!(id, 77);
            assert_eq!(verdicts["set"].kind, "verified");
        }
        other => panic!("in-flight request was not drained: {:?}", other),
    }
    let snap = handle.join().expect("server thread");
    assert_eq!(snap.leaked_sessions, 0);
    assert_eq!(
        snap.store_entries, 1,
        "flush missed the verdict: {:?}",
        snap
    );
    let store = VerdictStore::open(&dir);
    assert_eq!(store.len(), 1);
    assert_eq!(store.corrupt_lines(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission refusals are immediate (never queued) and typed; the
/// tenant recovers once in-flight work completes.
#[test]
fn over_budget_tenants_are_refused_not_queued() {
    let mut config = test_config(None);
    config.policy.max_in_flight = 1;
    // A deep queue proves refusal is *admission*, not queue overflow.
    config.queue_cap = 16;
    // Learning off makes the diverging query genuinely slow, so the
    // first request reliably holds its slot while the second arrives.
    config.base.learn = false;
    let (addr, flag, handle) = start(config);

    // One connection, two back-to-back requests for the same tenant:
    // the first is admitted and burns its whole deadline; the second
    // must be refused immediately while the first still runs.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .unwrap();
    let mut slow = Request::new(1, "greedy", daenerys_idf::diverging_program(18));
    slow.deadline_ms = Some(1_500);
    let second = Request::new(2, "greedy", GOOD);
    write_frame(&mut stream, slow.encode().as_bytes()).unwrap();
    write_frame(&mut stream, second.encode().as_bytes()).unwrap();
    let mut responses = Vec::new();
    for _ in 0..2 {
        let payload = read_frame(&mut stream, |_| true).expect("response");
        responses.push(Response::decode(&payload).expect("decode"));
    }
    let refused = responses
        .iter()
        .find(|r| matches!(r, Response::Refused { .. }));
    match refused {
        Some(Response::Refused { id, detail }) => {
            assert_eq!(*id, 2, "the admitted request was the refused one");
            assert!(detail.contains("in-flight cap"), "detail: {}", detail);
        }
        _ => panic!(
            "expected one admission refusal, got {:?}",
            responses.iter().map(comparable).collect::<Vec<_>>()
        ),
    }
    assert!(
        responses.iter().any(|r| matches!(r, Response::Ok { .. })),
        "the admitted request still completed"
    );
    let snap = stop(&flag, handle);
    assert_eq!(snap.requests_refused, 1, "{:?}", snap);
    assert_eq!(snap.leaked_sessions, 0);
}
