//! The wire protocol: length-delimited, versioned JSONL frames.
//!
//! One frame is `DAE1 <decimal-payload-length>\n` followed by exactly
//! that many payload bytes and a trailing `\n`. The magic doubles as
//! the protocol version (`DAE2` would be a new framing); the header is
//! capped at [`MAX_HEADER_LEN`] bytes and the payload at
//! [`MAX_PAYLOAD_LEN`], so garbage headers and hostile lengths are
//! rejected before any allocation trusts them.
//!
//! Payloads are single-line JSON ([`Request`]/[`Response`]), encoded
//! by hand and decoded with [`daenerys_obs::parse_json`] — the daemon
//! stays zero-dependency. Every decode failure maps to a typed
//! [`FrameError`]/[`ErrorCode`], never a panic: the chaos suite feeds
//! this module torn, truncated, and scrambled bytes and asserts a
//! clean per-session error each time.

use daenerys_idf::exec::Verdict;
use daenerys_obs::parse_json;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Protocol magic and version tag, first on every frame.
pub const MAGIC: &[u8; 4] = b"DAE1";
/// Longest accepted frame header (`DAE1 <len>\n`), bytes.
pub const MAX_HEADER_LEN: usize = 32;
/// Largest accepted payload, bytes (8 MiB).
pub const MAX_PAYLOAD_LEN: usize = 8 * 1024 * 1024;

/// Why a frame could not be read. Every variant is a *per-session*
/// failure: the server answers (when the stream still works) and/or
/// closes this session, and no other session observes anything.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream at a frame boundary — a clean end.
    Closed,
    /// The stream ended mid-frame (torn write or mid-request
    /// disconnect).
    Torn {
        /// Bytes expected to finish the frame.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The header was not `DAE1 <decimal>\n` within
    /// [`MAX_HEADER_LEN`] bytes.
    BadHeader(String),
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized(usize),
    /// The wait callback gave up — shutdown requested, or the
    /// slow-loris frame deadline elapsed mid-frame.
    Aborted {
        /// True when frame bytes had already arrived (the slow-loris
        /// signature); false for an idle abort between frames.
        mid_frame: bool,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => f.write_str("peer closed the stream"),
            FrameError::Torn { expected, got } => {
                write!(f, "stream ended mid-frame ({}/{} bytes)", got, expected)
            }
            FrameError::BadHeader(detail) => write!(f, "bad frame header: {}", detail),
            FrameError::Oversized(len) => {
                write!(f, "payload of {} bytes exceeds {}", len, MAX_PAYLOAD_LEN)
            }
            FrameError::Aborted { mid_frame: true } => {
                f.write_str("frame did not complete before its deadline")
            }
            FrameError::Aborted { mid_frame: false } => f.write_str("read aborted"),
            FrameError::Io(e) => write!(f, "i/o error: {}", e),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: header, payload, trailing newline.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = Vec::with_capacity(MAX_HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.push(b' ');
    header.extend_from_slice(payload.len().to_string().as_bytes());
    header.push(b'\n');
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame's payload.
///
/// `keep_waiting(mid_frame)` is consulted every time the reader would
/// block (`WouldBlock`/`TimedOut` on a stream with a read timeout):
/// return `false` to abort — the server's shutdown poll between
/// frames, and its slow-loris frame deadline once bytes have started
/// arriving. Blocking readers (tests over in-memory cursors) never
/// invoke it.
///
/// # Errors
///
/// See [`FrameError`]; no variant panics and none is reachable more
/// than [`MAX_HEADER_LEN`]+[`MAX_PAYLOAD_LEN`] bytes into a stream.
pub fn read_frame<R: Read>(
    r: &mut R,
    mut keep_waiting: impl FnMut(bool) -> bool,
) -> Result<Vec<u8>, FrameError> {
    // Header: byte-at-a-time until '\n', capped.
    let mut header = Vec::with_capacity(MAX_HEADER_LEN);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if header.is_empty() {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Torn {
                        expected: header.len() + 1,
                        got: header.len(),
                    })
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                header.push(byte[0]);
                if header.len() > MAX_HEADER_LEN {
                    return Err(FrameError::BadHeader(format!(
                        "no newline within {} bytes",
                        MAX_HEADER_LEN
                    )));
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !keep_waiting(!header.is_empty()) {
                    return Err(FrameError::Aborted {
                        mid_frame: !header.is_empty(),
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = parse_header(&header)?;
    if len > MAX_PAYLOAD_LEN {
        return Err(FrameError::Oversized(len));
    }

    // Payload plus the trailing newline.
    let mut payload = vec![0u8; len + 1];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Torn {
                    expected: payload.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !keep_waiting(true) {
                    return Err(FrameError::Aborted { mid_frame: true });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if payload.pop() != Some(b'\n') {
        return Err(FrameError::BadHeader(
            "frame not terminated by newline".to_string(),
        ));
    }
    Ok(payload)
}

fn parse_header(header: &[u8]) -> Result<usize, FrameError> {
    let bad = |detail: &str| FrameError::BadHeader(detail.to_string());
    if header.len() < MAGIC.len() + 2 || &header[..MAGIC.len()] != MAGIC {
        return Err(bad("unknown magic/version"));
    }
    if header[MAGIC.len()] != b' ' {
        return Err(bad("missing separator"));
    }
    let digits = &header[MAGIC.len() + 1..];
    if digits.is_empty() || !digits.iter().all(u8::is_ascii_digit) {
        return Err(bad("non-decimal payload length"));
    }
    std::str::from_utf8(digits)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| bad("unparsable payload length"))
}

/// One verification request, as carried in a frame payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Client-chosen id echoed on the response.
    pub id: u64,
    /// The tenant this session bills work to.
    pub tenant: String,
    /// The IDF program to verify.
    pub source: String,
    /// Requested per-method deadline (clamped by tenant policy).
    pub deadline_ms: Option<u64>,
    /// Requested per-method solver fuel (clamped by tenant policy).
    pub solver_fuel: Option<u64>,
    /// Requested diagnostic cap for recovery parsing.
    pub max_errors: Option<usize>,
}

impl Request {
    /// A minimal request (no budget overrides).
    pub fn new(id: u64, tenant: impl Into<String>, source: impl Into<String>) -> Request {
        Request {
            id,
            tenant: tenant.into(),
            source: source.into(),
            deadline_ms: None,
            solver_fuel: None,
            max_errors: None,
        }
    }

    /// Encodes the request as single-line JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":{},\"tenant\":\"{}\",\"source\":\"{}\"",
            self.id,
            esc(&self.tenant),
            esc(&self.source)
        );
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, ",\"deadline_ms\":{}", ms);
        }
        if let Some(fuel) = self.solver_fuel {
            let _ = write!(out, ",\"solver_fuel\":{}", fuel);
        }
        if let Some(cap) = self.max_errors {
            let _ = write!(out, ",\"max_errors\":{}", cap);
        }
        out.push('}');
        out
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let json = parse_json(text).map_err(|e| format!("payload is not JSON: {}", e))?;
        let obj = json.as_obj().ok_or("payload is not a JSON object")?;
        let num = |key: &str| -> Option<u64> {
            let n = obj.get(key)?.as_num()?;
            (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
        };
        Ok(Request {
            id: num("id").ok_or("missing/invalid \"id\"")?,
            tenant: obj
                .get("tenant")
                .and_then(|t| t.as_str())
                .ok_or("missing \"tenant\"")?
                .to_string(),
            source: obj
                .get("source")
                .and_then(|s| s.as_str())
                .ok_or("missing \"source\"")?
                .to_string(),
            deadline_ms: num("deadline_ms"),
            solver_fuel: num("solver_fuel"),
            max_errors: num("max_errors").map(|n| n as usize),
        })
    }
}

/// One admin-plane request, as carried in a frame payload.
///
/// Admin frames share the DAE1 framing and listener with verification
/// requests but are distinguished by an `"admin"` key in the payload
/// (see [`Frame::decode`]). They are answered directly by the session
/// reader — never queued behind verification work and **exempt from
/// tenant admission** — so the telemetry plane stays responsive
/// exactly when every tenant budget is saturated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdminRequest {
    /// Scrape the labeled metrics registry (JSON snapshot).
    Metrics {
        /// Client-chosen id echoed on the response.
        id: u64,
    },
    /// Liveness/health: uptime, per-tenant in-flight, refusals, drain
    /// state, and the admission conservation ledger.
    Health {
        /// Client-chosen id echoed on the response.
        id: u64,
    },
    /// Tail the bounded ring of recent trace events.
    TraceTail {
        /// Client-chosen id echoed on the response.
        id: u64,
        /// Only events with `seq > after_seq` are returned (0 tails
        /// from the oldest retained event).
        after_seq: u64,
        /// At most this many events (server-clamped).
        max: u64,
    },
}

impl AdminRequest {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            AdminRequest::Metrics { id }
            | AdminRequest::Health { id }
            | AdminRequest::TraceTail { id, .. } => *id,
        }
    }

    /// The wire name of this admin request kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AdminRequest::Metrics { .. } => "metrics",
            AdminRequest::Health { .. } => "health",
            AdminRequest::TraceTail { .. } => "trace_tail",
        }
    }

    /// Encodes the admin request as single-line JSON.
    pub fn encode(&self) -> String {
        match self {
            AdminRequest::Metrics { id } => format!("{{\"id\":{},\"admin\":\"metrics\"}}", id),
            AdminRequest::Health { id } => format!("{{\"id\":{},\"admin\":\"health\"}}", id),
            AdminRequest::TraceTail { id, after_seq, max } => format!(
                "{{\"id\":{},\"admin\":\"trace_tail\",\"after_seq\":{},\"max\":{}}}",
                id, after_seq, max
            ),
        }
    }
}

/// Any decoded inbound frame: a verification request or an admin
/// request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// A verification request (admission-controlled, queued to a
    /// worker).
    Verify(Request),
    /// An admin-plane request (answered inline by the reader).
    Admin(AdminRequest),
}

impl Frame {
    /// Decodes an inbound payload, branching on the `"admin"` key:
    /// payloads carrying one decode as [`AdminRequest`], everything
    /// else decodes as a verification [`Request`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn decode(payload: &[u8]) -> Result<Frame, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let json = parse_json(text).map_err(|e| format!("payload is not JSON: {}", e))?;
        let obj = json.as_obj().ok_or("payload is not a JSON object")?;
        let Some(admin) = obj.get("admin") else {
            return Request::decode(payload).map(Frame::Verify);
        };
        let num = |key: &str| -> Option<u64> {
            let n = obj.get(key)?.as_num()?;
            (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
        };
        let id = num("id").ok_or("missing/invalid \"id\"")?;
        match admin.as_str().ok_or("\"admin\" must be a string")? {
            "metrics" => Ok(Frame::Admin(AdminRequest::Metrics { id })),
            "health" => Ok(Frame::Admin(AdminRequest::Health { id })),
            "trace_tail" => Ok(Frame::Admin(AdminRequest::TraceTail {
                id,
                after_seq: num("after_seq").unwrap_or(0),
                max: num("max").unwrap_or(u64::MAX),
            })),
            other => Err(format!("unknown admin request {:?}", other)),
        }
    }
}

/// Machine-readable error class on an error response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The program source did not parse (diagnostics in the message).
    Parse,
    /// The frame payload was not a well-formed request.
    BadRequest,
    /// The request panicked the verifier; contained, this request
    /// only.
    Internal,
    /// The server is draining and no longer accepts new requests.
    Shutdown,
}

impl ErrorCode {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Internal => "internal",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<ErrorCode> {
        match s {
            "parse" => Some(ErrorCode::Parse),
            "bad_request" => Some(ErrorCode::BadRequest),
            "internal" => Some(ErrorCode::Internal),
            "shutdown" => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

/// One method's verdict, reduced to its deterministic wire form (the
/// chaos gate compares these byte-for-byte across runs, so no
/// wall-clock statistics ride along).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireVerdict {
    /// `verified`, `failed`, `unknown`, or `crashed`.
    pub kind: String,
    /// Deterministic detail: failure counts, unknown reason, or panic
    /// message.
    pub detail: String,
}

impl WireVerdict {
    /// Reduces a full [`Verdict`] to the wire form.
    pub fn from_verdict(v: &Verdict) -> WireVerdict {
        match v {
            Verdict::Verified(_) => WireVerdict {
                kind: "verified".to_string(),
                detail: String::new(),
            },
            Verdict::Failed { failures, .. } => WireVerdict {
                kind: "failed".to_string(),
                detail: format!("{} obligation(s)", failures.len()),
            },
            Verdict::Unknown { reason, .. } => WireVerdict {
                kind: "unknown".to_string(),
                detail: reason.to_string(),
            },
            Verdict::CrashedInternal { message } => WireVerdict {
                kind: "crashed".to_string(),
                detail: message.clone(),
            },
        }
    }
}

/// One response frame payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The request was verified (possibly to per-method `Unknown`s).
    Ok {
        /// Echo of the request id.
        id: u64,
        /// Per-method wire verdicts, method-name order.
        verdicts: BTreeMap<String, WireVerdict>,
        /// Methods re-verified rather than restored from the warm
        /// store (`None` when the daemon runs storeless).
        reverified: Option<u64>,
    },
    /// Admission control refused the request before any work ran —
    /// the whole-request `Unknown(admission)` of the paper's
    /// degradation story. Retryable after backoff.
    Refused {
        /// Echo of the request id.
        id: u64,
        /// Which admission limit tripped.
        detail: String,
    },
    /// The request failed without verdicts.
    Err {
        /// Echo of the request id (0 when the request was too damaged
        /// to carry one).
        id: u64,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// An admin-plane answer. The body is a self-contained JSON
    /// document carried as a *string* value on the wire, so the frame
    /// roundtrips losslessly regardless of what the body contains
    /// (clients re-parse it with [`daenerys_obs::parse_json`]).
    Admin {
        /// Echo of the admin request id.
        id: u64,
        /// Which admin request this answers (`metrics`, `health`,
        /// `trace_tail`).
        kind: String,
        /// The JSON document answering the request.
        body: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. }
            | Response::Refused { id, .. }
            | Response::Err { id, .. }
            | Response::Admin { id, .. } => *id,
        }
    }

    /// Encodes the response as single-line JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Ok {
                id,
                verdicts,
                reverified,
            } => {
                let _ = write!(out, "{{\"id\":{},\"status\":\"ok\",\"verdicts\":{{", id);
                for (i, (name, v)) in verdicts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\"{}\":{{\"verdict\":\"{}\",\"detail\":\"{}\"}}",
                        esc(name),
                        esc(&v.kind),
                        esc(&v.detail)
                    );
                }
                out.push('}');
                if let Some(n) = reverified {
                    let _ = write!(out, ",\"reverified\":{}", n);
                }
                out.push('}');
            }
            Response::Refused { id, detail } => {
                let _ = write!(
                    out,
                    "{{\"id\":{},\"status\":\"refused\",\"detail\":\"{}\"}}",
                    id,
                    esc(detail)
                );
            }
            Response::Err { id, code, message } => {
                let _ = write!(
                    out,
                    "{{\"id\":{},\"status\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
                    id,
                    code.name(),
                    esc(message)
                );
            }
            Response::Admin { id, kind, body } => {
                let _ = write!(
                    out,
                    "{{\"id\":{},\"status\":\"admin\",\"kind\":\"{}\",\"body\":\"{}\"}}",
                    id,
                    esc(kind),
                    esc(body)
                );
            }
        }
        out
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let json = parse_json(text).map_err(|e| format!("payload is not JSON: {}", e))?;
        let obj = json.as_obj().ok_or("payload is not a JSON object")?;
        let id = obj
            .get("id")
            .and_then(|n| n.as_num())
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or("missing/invalid \"id\"")? as u64;
        match obj
            .get("status")
            .and_then(|s| s.as_str())
            .ok_or("missing \"status\"")?
        {
            "ok" => {
                let raw = obj
                    .get("verdicts")
                    .and_then(|v| v.as_obj())
                    .ok_or("missing \"verdicts\"")?;
                let mut verdicts = BTreeMap::new();
                for (name, v) in raw {
                    let v = v.as_obj().ok_or("verdict is not an object")?;
                    verdicts.insert(
                        name.clone(),
                        WireVerdict {
                            kind: v
                                .get("verdict")
                                .and_then(|k| k.as_str())
                                .ok_or("verdict missing kind")?
                                .to_string(),
                            detail: v
                                .get("detail")
                                .and_then(|d| d.as_str())
                                .unwrap_or_default()
                                .to_string(),
                        },
                    );
                }
                let reverified = obj
                    .get("reverified")
                    .and_then(|n| n.as_num())
                    .map(|n| n as u64);
                Ok(Response::Ok {
                    id,
                    verdicts,
                    reverified,
                })
            }
            "refused" => Ok(Response::Refused {
                id,
                detail: obj
                    .get("detail")
                    .and_then(|d| d.as_str())
                    .unwrap_or_default()
                    .to_string(),
            }),
            "error" => Ok(Response::Err {
                id,
                code: obj
                    .get("code")
                    .and_then(|c| c.as_str())
                    .and_then(ErrorCode::parse)
                    .ok_or("missing/unknown error code")?,
                message: obj
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or_default()
                    .to_string(),
            }),
            "admin" => Ok(Response::Admin {
                id,
                kind: obj
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .ok_or("missing admin \"kind\"")?
                    .to_string(),
                body: obj
                    .get("body")
                    .and_then(|b| b.as_str())
                    .ok_or("missing admin \"body\"")?
                    .to_string(),
            }),
            other => Err(format!("unknown status {:?}", other)),
        }
    }
}

/// JSON string escaping (mirrors the store's encoder).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        read_frame(&mut Cursor::new(wire), |_| true).unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"{\"id\":1}"), b"{\"id\":1}");
        let big = vec![b'x'; 70_000];
        assert_eq!(roundtrip(&big), big);
        // Payloads may contain newlines and even fake headers.
        assert_eq!(roundtrip(b"a\nDAE1 3\nb"), b"a\nDAE1 3\nb");
    }

    #[test]
    fn torn_and_garbage_frames_are_typed_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello world").unwrap();
        wire.truncate(wire.len() - 4);
        assert!(matches!(
            read_frame(&mut Cursor::new(wire), |_| true),
            Err(FrameError::Torn { .. })
        ));

        let cases: &[&[u8]] = &[
            b"XXXX 5\nhello\n",
            b"DAE2 5\nhello\n",
            b"DAE1 -5\nhello\n",
            b"DAE1 5x\nhello\n",
            b"DAE1\n",
            b"DAE1 99999999999999999999\n",
        ];
        for case in cases {
            assert!(
                matches!(
                    read_frame(&mut Cursor::new(case.to_vec()), |_| true),
                    Err(FrameError::BadHeader(_))
                ),
                "case {:?}",
                String::from_utf8_lossy(case)
            );
        }
        assert!(matches!(
            read_frame(
                &mut Cursor::new(format!("DAE1 {}\n", MAX_PAYLOAD_LEN + 1).into_bytes()),
                |_| true
            ),
            Err(FrameError::Oversized(_))
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new()), |_| true),
            Err(FrameError::Closed)
        ));
        // A frame whose trailing byte is not '\n' desyncs — rejected.
        assert!(matches!(
            read_frame(&mut Cursor::new(b"DAE1 2\nabX".to_vec()), |_| true),
            Err(FrameError::BadHeader(_))
        ));
    }

    #[test]
    fn requests_and_responses_roundtrip() {
        let req = Request {
            id: 42,
            tenant: "acme\"co".to_string(),
            source: "method m() { }\n".to_string(),
            deadline_ms: Some(250),
            solver_fuel: None,
            max_errors: Some(8),
        };
        assert_eq!(Request::decode(req.encode().as_bytes()).unwrap(), req);

        let mut verdicts = BTreeMap::new();
        verdicts.insert(
            "m".to_string(),
            WireVerdict {
                kind: "unknown".to_string(),
                detail: "budget exhausted (deadline): 250 ms".to_string(),
            },
        );
        let ok = Response::Ok {
            id: 42,
            verdicts,
            reverified: Some(1),
        };
        assert_eq!(Response::decode(ok.encode().as_bytes()).unwrap(), ok);

        let refused = Response::Refused {
            id: 7,
            detail: "tenant over in-flight cap".to_string(),
        };
        assert_eq!(
            Response::decode(refused.encode().as_bytes()).unwrap(),
            refused
        );

        let err = Response::Err {
            id: 0,
            code: ErrorCode::BadRequest,
            message: "payload is not JSON: ...".to_string(),
        };
        assert_eq!(Response::decode(err.encode().as_bytes()).unwrap(), err);
    }

    #[test]
    fn admin_frames_roundtrip_and_branch() {
        for req in [
            AdminRequest::Metrics { id: 1 },
            AdminRequest::Health { id: 2 },
            AdminRequest::TraceTail {
                id: 3,
                after_seq: 17,
                max: 64,
            },
        ] {
            match Frame::decode(req.encode().as_bytes()).unwrap() {
                Frame::Admin(decoded) => assert_eq!(decoded, req),
                Frame::Verify(_) => panic!("admin payload decoded as verify"),
            }
        }
        // A plain verification request still branches to Verify.
        let verify = Request::new(9, "t", "method m() {}");
        match Frame::decode(verify.encode().as_bytes()).unwrap() {
            Frame::Verify(decoded) => assert_eq!(decoded, verify),
            Frame::Admin(_) => panic!("verify payload decoded as admin"),
        }
        assert!(Frame::decode(b"{\"id\":1,\"admin\":\"nope\"}").is_err());
        assert!(Frame::decode(b"{\"admin\":\"metrics\"}").is_err(), "no id");

        // The admin response carries an arbitrary JSON body losslessly.
        let admin = Response::Admin {
            id: 5,
            kind: "metrics".to_string(),
            body: "{\"counters\":[{\"name\":\"a\\\"b\",\"value\":1}]}".to_string(),
        };
        let decoded = Response::decode(admin.encode().as_bytes()).unwrap();
        assert_eq!(decoded, admin);
        let Response::Admin { body, .. } = decoded else {
            unreachable!()
        };
        daenerys_obs::parse_json(&body).expect("body re-parses as JSON");
    }

    #[test]
    fn request_decode_rejects_garbage_without_panicking() {
        for bad in [
            &b"\xff\xfe"[..],
            b"not json",
            b"[]",
            b"{}",
            b"{\"id\":-1,\"tenant\":\"t\",\"source\":\"\"}",
            b"{\"id\":1.5,\"tenant\":\"t\",\"source\":\"\"}",
            b"{\"id\":1,\"tenant\":7,\"source\":\"\"}",
        ] {
            assert!(Request::decode(bad).is_err());
        }
    }
}
