//! The live telemetry plane: labeled metrics, per-tenant trace rings,
//! and the admin-frame bodies.
//!
//! One [`Telemetry`] instance lives for the daemon's lifetime. Workers
//! stamp per-tenant metrics into its sharded
//! [`daenerys_obs::SharedRegistry`]; the trace pipeline tees every
//! emitted event through a [`TelemetrySink`], which feeds the bounded
//! per-tenant [`TraceRing`] and attributes span durations to
//! per-phase histograms. The `metrics`/`health`/`trace_tail` admin
//! frames are rendered from here — by the session *reader*, exempt
//! from admission, so scrapes keep answering while every tenant
//! budget is saturated.
//!
//! ## Metric names
//!
//! Stamped by the daemon (labels in braces):
//!
//! * `daenerysd.requests{tenant}` — verification requests processed
//!   (any outcome)
//! * `daenerysd.verdict.verified{tenant}` / `.failed` / `.unknown` /
//!   `.crashed` — per-method verdict counts by wire kind
//! * `daenerysd.refused{tenant}` — admission refusals
//! * `daenerysd.errors{tenant}` — error responses (parse/internal)
//! * `daenerysd.latency_us{tenant}` — whole-request wall latency,
//!   microseconds (histogram)
//! * `daenerysd.fuel{tenant}` — fuel spent per request, the
//!   `conflicts + propagations + branches` proxy (histogram)
//! * `daenerysd.cache_hits{tenant}` / `daenerysd.cache_misses{tenant}`
//!   — solver query-cache traffic
//! * `daenerysd.solver_conflicts{tenant}` /
//!   `daenerysd.solver_restarts{tenant}` — CDCL search rates
//! * `daenerysd.store_hits{tenant}` / `daenerysd.store_misses{tenant}`
//!   / `daenerysd.store_dirty_transitive{tenant}` — incremental verdict
//!   store traffic: methods served warm, genuine fingerprint misses,
//!   and warm hits discarded because a transitive callee's spec
//!   changed (tenants with identical answer-affecting config share
//!   entries, so one tenant's writes surface as another's hits)
//! * `daenerysd.phase_nanos{phase,tenant}` — span durations by phase
//!   (the span-name prefix before `:`, e.g. `exec:m` → `exec`),
//!   recorded by the sink tee (histogram)
//!
//! The trace layer's run-global unlabeled registry (`solver.conflict`,
//! `theory.propagate`, …) is folded into every `metrics` scrape with
//! empty labels.
//!
//! ## Sampling policy
//!
//! The ring is bounded **per tenant** ([`TraceRing`] holds up to
//! `per_tenant_cap` events for each of at most [`MAX_RING_TENANTS`]
//! tenants), so one noisy tenant evicts only its own history. Events
//! past a full ring drop the oldest event and bump that tenant's
//! deterministic drop counter; tenants past the tenant cap share one
//! `_overflow` bucket, and daemon-side events with no tenant
//! attribution land in `_server`.

use crate::admission::AdmissionStats;
use daenerys_obs::{Event, LabeledRegistry, Labels, MetricsRegistry, SharedRegistry, Sink};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default per-tenant trace-ring capacity (events).
pub const DEFAULT_RING_CAP: usize = 256;
/// Distinct tenants the ring tracks before folding extras into the
/// shared `_overflow` bucket.
pub const MAX_RING_TENANTS: usize = 64;
/// Hard cap on events returned by one `trace_tail` answer.
pub const MAX_TAIL_EVENTS: u64 = 4096;

/// The ring bucket for daemon events with no tenant attribution.
pub const SERVER_BUCKET: &str = "_server";
/// The shared ring bucket once [`MAX_RING_TENANTS`] is exceeded.
pub const OVERFLOW_BUCKET: &str = "_overflow";

#[derive(Default, Debug)]
struct TenantRing {
    events: VecDeque<Event>,
    dropped: u64,
}

#[derive(Default, Debug)]
struct RingInner {
    tenants: BTreeMap<String, TenantRing>,
    latest_seq: u64,
}

/// A bounded, per-tenant ring of recent trace events.
///
/// See the [module docs](self) for the sampling policy.
#[derive(Debug)]
pub struct TraceRing {
    per_tenant_cap: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring keeping at most `per_tenant_cap` events per tenant.
    pub fn new(per_tenant_cap: usize) -> TraceRing {
        TraceRing {
            per_tenant_cap: per_tenant_cap.max(1),
            inner: Mutex::new(RingInner::default()),
        }
    }

    fn bucket_for<'a>(inner: &RingInner, event: &'a Event) -> &'a str {
        let tenant = match event.field("tenant") {
            Some(daenerys_obs::Value::Str(t)) => t.as_str(),
            _ => SERVER_BUCKET,
        };
        if inner.tenants.contains_key(tenant) || inner.tenants.len() < MAX_RING_TENANTS {
            tenant
        } else {
            OVERFLOW_BUCKET
        }
    }

    /// Appends one event to its tenant's ring, evicting the oldest
    /// (and bumping the tenant's drop counter) when full.
    pub fn push(&self, event: &Event) {
        let mut inner = lock(&self.inner);
        inner.latest_seq = inner.latest_seq.max(event.seq);
        let bucket = TraceRing::bucket_for(&inner, event).to_string();
        let ring = inner.tenants.entry(bucket).or_default();
        if ring.events.len() >= self.per_tenant_cap {
            ring.events.pop_front();
            ring.dropped = ring.dropped.saturating_add(1);
        }
        ring.events.push_back(event.clone());
    }

    /// Events dropped from `tenant`'s ring so far.
    pub fn dropped(&self, tenant: &str) -> u64 {
        lock(&self.inner)
            .tenants
            .get(tenant)
            .map_or(0, |r| r.dropped)
    }

    /// Retained events for `tenant`, oldest first.
    pub fn events(&self, tenant: &str) -> Vec<Event> {
        lock(&self.inner)
            .tenants
            .get(tenant)
            .map_or_else(Vec::new, |r| r.events.iter().cloned().collect())
    }

    /// One `trace_tail` page: retained events with `seq > after_seq`,
    /// globally seq-ordered across tenants, at most
    /// `min(max, `[`MAX_TAIL_EVENTS`]`)` of them.
    pub fn tail(&self, after_seq: u64, max: u64) -> TraceTailPage {
        let inner = lock(&self.inner);
        let cap = max.min(MAX_TAIL_EVENTS) as usize;
        let mut events: Vec<Event> = inner
            .tenants
            .values()
            .flat_map(|r| r.events.iter())
            .filter(|e| e.seq > after_seq)
            .cloned()
            .collect();
        events.sort_by_key(|e| e.seq);
        let truncated = events.len() > cap;
        events.truncate(cap);
        TraceTailPage {
            events,
            dropped: inner
                .tenants
                .iter()
                .map(|(t, r)| (t.clone(), r.dropped))
                .collect(),
            latest_seq: inner.latest_seq,
            truncated,
        }
    }
}

/// One answer to a `trace_tail` admin frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceTailPage {
    /// Retained events after the cursor, seq order.
    pub events: Vec<Event>,
    /// Per-tenant ring-eviction counts (deterministic: one per evicted
    /// event).
    pub dropped: BTreeMap<String, u64>,
    /// Highest sequence number the ring has seen (the next cursor).
    pub latest_seq: u64,
    /// True when more retained events matched than `max` allowed —
    /// page again from the last event's seq.
    pub truncated: bool,
}

impl TraceTailPage {
    /// The `trace_tail` body: `events` is an array of event objects in
    /// the exact JSONL schema `trace_validate` accepts (each array
    /// element printed on its own is one valid JSONL line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_jsonl());
        }
        out.push_str("],\"dropped\":{");
        for (i, (t, n)) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", daenerys_obs::json::escape(t), n);
        }
        let _ = write!(
            out,
            "}},\"latest_seq\":{},\"truncated\":{}}}",
            self.latest_seq, self.truncated
        );
        out
    }
}

/// The daemon's telemetry root: the sharded labeled registry, the
/// trace ring, and the uptime anchor.
#[derive(Debug)]
pub struct Telemetry {
    registry: Arc<SharedRegistry>,
    ring: Arc<TraceRing>,
    started: Instant,
}

impl Telemetry {
    /// A telemetry plane with `ring_cap` events retained per tenant.
    pub fn new(ring_cap: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            registry: Arc::new(SharedRegistry::default()),
            ring: Arc::new(TraceRing::new(ring_cap)),
            started: Instant::now(),
        })
    }

    /// The sharded labeled registry workers stamp into.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// The per-tenant trace ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// A sink that tees emitted trace events into the ring and the
    /// phase-duration histograms.
    pub fn sink(self: &Arc<Telemetry>) -> TelemetrySink {
        TelemetrySink {
            telemetry: Arc::clone(self),
        }
    }

    /// The `metrics` body: a point-in-time merge of every registry
    /// shard, with the trace layer's run-global registry (`trace`)
    /// folded in under empty labels.
    pub fn metrics_json(&self, trace_global: &MetricsRegistry) -> String {
        let mut snap = self.registry.snapshot();
        snap.merge_plain(trace_global, &Labels::none());
        snap.to_json()
    }

    /// The `health` body: uptime, drain state, and the admission
    /// conservation ledger (totals plus per-tenant rows, each carrying
    /// its own `conserved` verdict).
    pub fn health_json(&self, stats: &AdmissionStats, draining: bool) -> String {
        let row = |out: &mut String, t: &crate::admission::TenantStats| {
            let _ = write!(
                out,
                "{{\"admitted\":{},\"completed\":{},\"refused\":{},\
                 \"in_flight\":{},\"fuel_in_flight\":{},\"conserved\":{}}}",
                t.admitted,
                t.completed,
                t.refused,
                t.in_flight,
                t.fuel_in_flight,
                t.conserved()
            );
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"uptime_ms\":{},\"draining\":{},\"conserved\":{},\"total\":",
            self.uptime_ms(),
            draining,
            stats.conserved()
        );
        row(&mut out, &stats.total);
        out.push_str(",\"tenants\":{");
        for (i, t) in stats.per_tenant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", daenerys_obs::json::escape(&t.tenant));
            row(&mut out, t);
        }
        out.push_str("}}");
        out
    }
}

/// The span-name prefix used as the `phase` label (`exec:inc` →
/// `exec`, `branch:then` → `branch`, bare names pass through).
pub fn phase_of(span_name: &str) -> &str {
    span_name.split(':').next().unwrap_or(span_name)
}

/// A [`Sink`] tee feeding the telemetry plane: every event lands in
/// the [`TraceRing`], and every `span_end` additionally records its
/// `duration_nanos` into `daenerysd.phase_nanos{phase,tenant}`.
///
/// Wrap the real sink's role: the daemon installs this as the trace
/// pipeline's sink, so the per-request context fields stamped by
/// [`daenerys_obs::TraceHandle::with_context`] (tenant/session/
/// request) are already on every event by the time it arrives here.
#[derive(Debug)]
pub struct TelemetrySink {
    telemetry: Arc<Telemetry>,
}

impl Sink for TelemetrySink {
    fn write(&self, events: &[Event]) {
        for e in events {
            self.telemetry.ring.push(e);
            if e.kind == daenerys_obs::EventKind::SpanEnd {
                if let Some(nanos) = e.field_u64("duration_nanos") {
                    let tenant = match e.field("tenant") {
                        Some(daenerys_obs::Value::Str(t)) => t.as_str(),
                        _ => SERVER_BUCKET,
                    };
                    let labels = Labels::none()
                        .with("phase", phase_of(&e.name))
                        .with("tenant", tenant);
                    self.telemetry
                        .registry
                        .record("daenerysd.phase_nanos", &labels, nanos);
                }
            }
        }
    }
}

/// Convenience: the labeled-registry snapshot type re-exported for
/// scrape consumers.
pub type TelemetrySnapshot = LabeledRegistry;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_obs::{EventKind, Value};

    fn event(seq: u64, tenant: Option<&str>) -> Event {
        let mut fields = Vec::new();
        if let Some(t) = tenant {
            fields.push(("tenant".to_string(), Value::Str(t.to_string())));
        }
        Event {
            seq,
            ts: seq,
            kind: EventKind::Point,
            name: "solver.query".to_string(),
            fields,
        }
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for seq in 0..10 {
            ring.push(&event(seq, Some("a")));
        }
        let kept: Vec<u64> = ring.events("a").iter().map(|e| e.seq).collect();
        assert_eq!(kept, [7, 8, 9], "newest N survive");
        assert_eq!(ring.dropped("a"), 7, "one drop per evicted event");
    }

    #[test]
    fn noisy_tenant_cannot_evict_quiet_tenant() {
        let ring = TraceRing::new(4);
        ring.push(&event(0, Some("quiet")));
        for seq in 1..100 {
            ring.push(&event(seq, Some("noisy")));
        }
        assert_eq!(ring.events("quiet").len(), 1, "quiet history intact");
        assert_eq!(ring.dropped("quiet"), 0);
        assert!(ring.dropped("noisy") > 0);
    }

    #[test]
    fn unattributed_and_overflow_events_are_bucketed() {
        let ring = TraceRing::new(8);
        ring.push(&event(0, None));
        assert_eq!(ring.events(SERVER_BUCKET).len(), 1);
        // Fill the tenant table (the `_server` bucket holds one slot),
        // then one more tenant lands in _overflow.
        for i in 0..MAX_RING_TENANTS - 1 {
            ring.push(&event(1 + i as u64, Some(&format!("t{}", i))));
        }
        ring.push(&event(999, Some("one-too-many")));
        assert_eq!(ring.events(OVERFLOW_BUCKET).len(), 1);
        assert!(ring.events("one-too-many").is_empty());
    }

    #[test]
    fn tail_pages_in_seq_order_across_tenants() {
        let ring = TraceRing::new(16);
        for seq in 0..8 {
            let t = if seq % 2 == 0 { "a" } else { "b" };
            ring.push(&event(seq, Some(t)));
        }
        let page = ring.tail(2, 3);
        assert_eq!(
            page.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [3, 4, 5]
        );
        assert!(page.truncated);
        assert_eq!(page.latest_seq, 7);
        let rest = ring.tail(5, u64::MAX);
        assert_eq!(
            rest.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [6, 7]
        );
        assert!(!rest.truncated);
        // The body parses and each event element revalidates as a
        // standalone JSONL line.
        let body = page.to_json();
        let parsed = daenerys_obs::parse_json(&body).unwrap();
        let events = parsed.as_obj().unwrap()["events"].as_arr().unwrap();
        assert_eq!(events.len(), 3);
        for e in &page.events {
            daenerys_obs::validate_event_line(&e.to_jsonl()).unwrap();
        }
    }

    #[test]
    fn sink_attributes_span_durations_by_phase_and_tenant() {
        let telemetry = Telemetry::new(16);
        let sink = telemetry.sink();
        let mut span = event(0, Some("acme"));
        span.kind = EventKind::SpanEnd;
        span.name = "exec:set".to_string();
        span.fields
            .push(("duration_nanos".to_string(), Value::UInt(1500)));
        sink.write(std::slice::from_ref(&span));
        let snap = telemetry.registry().snapshot();
        let labels = Labels::none().with("phase", "exec").with("tenant", "acme");
        let h = snap
            .histogram("daenerysd.phase_nanos", &labels)
            .expect("span attributed");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1500);
        assert_eq!(telemetry.ring().events("acme").len(), 1, "ring tee too");
        assert_eq!(phase_of("branch:then"), "branch");
        assert_eq!(phase_of("parse"), "parse");
    }

    #[test]
    fn health_json_carries_the_ledger() {
        use crate::admission::{Admission, TenantPolicy};
        let telemetry = Telemetry::new(4);
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 1,
            ..TenantPolicy::default()
        });
        let _held = adm.try_admit("acme", None).unwrap();
        let _refused = adm.try_admit("acme", None).unwrap_err();
        let body = telemetry.health_json(&adm.stats(), false);
        let parsed = daenerys_obs::parse_json(&body).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["conserved"], daenerys_obs::Json::Bool(true));
        assert_eq!(obj["draining"], daenerys_obs::Json::Bool(false));
        let acme = obj["tenants"].as_obj().unwrap()["acme"].as_obj().unwrap();
        assert_eq!(acme["admitted"].as_num(), Some(2.0));
        assert_eq!(acme["refused"].as_num(), Some(1.0));
        assert_eq!(acme["in_flight"].as_num(), Some(1.0));
    }
}
