//! The `daenerysd` binary: bind, serve, drain on SIGTERM/SIGINT,
//! emit the final metrics snapshot, exit 0.

use daenerysd::chaos::WireFaultPlan;
use daenerysd::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// SIGTERM/SIGINT/SIGUSR1 land here via the raw `signal(2)` shim — no
/// libc crate in the image, and each handler body is just an atomic
/// store, which is async-signal-safe. SIGUSR1 requests a live metrics
/// snapshot (printed by the accept loop) without stopping the daemon.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);
    pub static USR1: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_signum: i32) {
        USR1.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    // Linux numbering; this shim only compiles on the unix image.
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
            signal(SIGUSR1, on_usr1);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static TERM: AtomicBool = AtomicBool::new(false);
    pub static USR1: AtomicBool = AtomicBool::new(false);

    pub fn install() {}
}

fn usage() -> &'static str {
    "usage: daenerysd [--addr HOST:PORT] [--cache-dir DIR] [--threads N]\n\
     \x20                [--queue-cap N] [--frame-deadline-ms MS]\n\
     \x20                [--max-in-flight N] [--max-fuel-in-flight N]\n\
     \x20                [--max-deadline-ms MS] [--chaos-seed SEED]\n\
     \x20                [--metrics-out FILE]"
}

struct Args {
    config: ServerConfig,
    metrics_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut metrics_out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{} needs a value\n{}", name, usage()))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--cache-dir" => config.base.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--threads" => config.base.threads = parse_num(&value("--threads")?)? as usize,
            "--queue-cap" => config.queue_cap = parse_num(&value("--queue-cap")?)? as usize,
            "--frame-deadline-ms" => {
                config.frame_deadline_ms = parse_num(&value("--frame-deadline-ms")?)?;
            }
            "--max-in-flight" => {
                config.policy.max_in_flight = parse_num(&value("--max-in-flight")?)? as usize;
            }
            "--max-fuel-in-flight" => {
                config.policy.max_fuel_in_flight =
                    Some(parse_num(&value("--max-fuel-in-flight")?)?);
            }
            "--max-deadline-ms" => {
                config.policy.max_deadline_ms = parse_num(&value("--max-deadline-ms")?)?;
            }
            "--chaos-seed" => {
                config.wire_faults = WireFaultPlan::full(parse_num(&value("--chaos-seed")?)?);
            }
            "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {:?}\n{}", other, usage())),
        }
    }
    Ok(Args {
        config,
        metrics_out,
    })
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("expected a number, got {:?}", s))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{}", msg);
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("daenerysd: bind failed: {}", e);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The smoke script scrapes this line for the ephemeral port.
        Ok(addr) => println!("daenerysd listening on {}", addr),
        Err(e) => {
            eprintln!("daenerysd: no local address: {}", e);
            return ExitCode::FAILURE;
        }
    }
    sig::install();
    let shutdown = server.shutdown_flag();
    let snapshot_flag = server.snapshot_flag();
    std::thread::spawn(move || loop {
        if sig::USR1.swap(false, Ordering::SeqCst) {
            snapshot_flag.store(true, Ordering::SeqCst);
        }
        if sig::TERM.load(Ordering::SeqCst) {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let snapshot = server.run();
    let json = snapshot.to_json();
    match &args.metrics_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{}\n", json)) {
                eprintln!("daenerysd: writing {}: {}", path.display(), e);
                return ExitCode::FAILURE;
            }
        }
        None => println!("{}", json),
    }
    if snapshot.leaked_sessions != 0 {
        eprintln!(
            "daenerysd: {} session(s) leaked at shutdown",
            snapshot.leaked_sessions
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
