//! Deterministic wire-level fault injection.
//!
//! The in-process chaos layer (`daenerys_idf::FaultPlan`) proves one
//! faulted *method* never perturbs its siblings; [`WireFaultPlan`]
//! lifts the same discipline to the socket: torn frames, truncated
//! payloads, garbage headers, mid-request disconnects, and slow-loris
//! trickle, each fired at points that depend only on `(seed, stream,
//! frame)` — so a chaos replay is exactly reproducible and the set of
//! affected requests is known in advance.
//!
//! The plan is consulted by the replay client when *sending* (the
//! corruption really crosses the wire) and can also be applied
//! directly to encoded bytes ([`WireFaultPlan::corrupt`]) for
//! in-memory protocol tests.

use std::fmt;

/// One wire fault to apply to one outgoing frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireFault {
    /// Deliver the frame intact.
    None,
    /// Send only a prefix of the frame, then disconnect — a torn
    /// frame/mid-request disconnect. The fraction (per mille of the
    /// full frame length) is derived deterministically.
    Torn {
        /// Prefix length to send, per mille of the frame.
        keep_per_mille: u16,
    },
    /// Scramble the magic so the header is garbage.
    GarbageHeader,
    /// Disconnect before sending anything at all.
    Disconnect,
    /// Trickle the frame a few bytes at a time with delays — the
    /// slow-loris probe. The server's frame deadline must cut it off.
    SlowLoris {
        /// Bytes sent per trickle step.
        chunk: usize,
    },
}

impl WireFault {
    /// True when the frame is delivered unmodified (the request is
    /// *unaffected* for the bit-identical chaos gate).
    pub fn is_none(self) -> bool {
        self == WireFault::None
    }
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFault::None => f.write_str("none"),
            WireFault::Torn { keep_per_mille } => write!(f, "torn({}‰)", keep_per_mille),
            WireFault::GarbageHeader => f.write_str("garbage-header"),
            WireFault::Disconnect => f.write_str("disconnect"),
            WireFault::SlowLoris { chunk } => write!(f, "slow-loris({}B)", chunk),
        }
    }
}

/// A deterministic wire-fault plan: per-mille rates for each fault
/// class, fired by hashing `(seed, stream, frame)`. The empty plan
/// (rate 0 everywhere) injects nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireFaultPlan {
    /// Mixes into every decision; two plans with different seeds fault
    /// different frames.
    pub seed: u64,
    /// Torn-frame rate, per mille of frames.
    pub torn_per_mille: u16,
    /// Garbage-header rate, per mille.
    pub garbage_per_mille: u16,
    /// Pre-send disconnect rate, per mille.
    pub disconnect_per_mille: u16,
    /// Slow-loris rate, per mille.
    pub slowloris_per_mille: u16,
}

impl WireFaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> WireFaultPlan {
        WireFaultPlan::default()
    }

    /// The full fault matrix at moderate rates — the chaos-gate
    /// configuration (roughly one frame in four affected).
    pub fn full(seed: u64) -> WireFaultPlan {
        WireFaultPlan {
            seed,
            torn_per_mille: 80,
            garbage_per_mille: 60,
            disconnect_per_mille: 60,
            slowloris_per_mille: 50,
        }
    }

    /// True when no fault class has a non-zero rate.
    pub fn is_none(&self) -> bool {
        self.torn_per_mille == 0
            && self.garbage_per_mille == 0
            && self.disconnect_per_mille == 0
            && self.slowloris_per_mille == 0
    }

    /// The fault (if any) for frame `frame` of stream `stream`.
    /// Depends only on `(self.seed, stream, frame)`.
    pub fn fault_for(&self, stream: u64, frame: u64) -> WireFault {
        if self.is_none() {
            return WireFault::None;
        }
        let h =
            splitmix64(self.seed ^ stream.wrapping_mul(0x9e3779b97f4a7c15) ^ frame.rotate_left(17));
        let roll = (h % 1000) as u16;
        let torn = self.torn_per_mille;
        let garbage = torn + self.garbage_per_mille;
        let disconnect = garbage + self.disconnect_per_mille;
        let loris = disconnect + self.slowloris_per_mille;
        if roll < torn {
            // A second independent draw picks how much survives.
            WireFault::Torn {
                keep_per_mille: (splitmix64(h) % 999) as u16,
            }
        } else if roll < garbage {
            WireFault::GarbageHeader
        } else if roll < disconnect {
            WireFault::Disconnect
        } else if roll < loris {
            WireFault::SlowLoris {
                chunk: 16 + (splitmix64(h) % 48) as usize,
            }
        } else {
            WireFault::None
        }
    }

    /// Applies a fault to an already-encoded frame, returning the
    /// bytes that would actually cross the wire (`None` for a
    /// pre-send disconnect). Slow-loris delivers the same bytes, only
    /// slower, so here it is identity.
    pub fn corrupt(fault: WireFault, frame: &[u8]) -> Option<Vec<u8>> {
        match fault {
            WireFault::None | WireFault::SlowLoris { .. } => Some(frame.to_vec()),
            WireFault::Torn { keep_per_mille } => {
                let keep = (frame.len() * keep_per_mille as usize) / 1000;
                Some(frame[..keep].to_vec())
            }
            WireFault::GarbageHeader => {
                let mut out = frame.to_vec();
                for (i, b) in out.iter_mut().take(4).enumerate() {
                    *b = b'!' + i as u8;
                }
                Some(out)
            }
            WireFault::Disconnect => None,
        }
    }
}

/// SplitMix64 — the repo-standard deterministic mixer (no external
/// RNG crates; the vendored `rand` is a test-only stand-in).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let plan = WireFaultPlan::full(7);
        let a: Vec<WireFault> = (0..64).map(|f| plan.fault_for(3, f)).collect();
        let b: Vec<WireFault> = (0..64).map(|f| plan.fault_for(3, f)).collect();
        assert_eq!(a, b, "same (seed, stream, frame) → same fault");
        let other = WireFaultPlan::full(8);
        let c: Vec<WireFault> = (0..64).map(|f| other.fault_for(3, f)).collect();
        assert_ne!(a, c, "a different seed faults different frames");
        assert!(
            a.iter().any(|f| !f.is_none()) && a.iter().any(|f| f.is_none()),
            "moderate rates hit some frames and spare others: {:?}",
            a
        );
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = WireFaultPlan::none();
        assert!(plan.is_none());
        assert!((0..256).all(|f| plan.fault_for(f, f).is_none()));
    }

    #[test]
    fn corruption_shapes() {
        let frame = b"DAE1 5\nhello\n";
        assert_eq!(
            WireFaultPlan::corrupt(WireFault::None, frame).unwrap(),
            frame
        );
        let torn = WireFaultPlan::corrupt(
            WireFault::Torn {
                keep_per_mille: 500,
            },
            frame,
        )
        .unwrap();
        assert!(torn.len() < frame.len());
        assert_eq!(&torn[..], &frame[..torn.len()]);
        let garbage = WireFaultPlan::corrupt(WireFault::GarbageHeader, frame).unwrap();
        assert_eq!(garbage.len(), frame.len());
        assert_ne!(&garbage[..4], b"DAE1");
        assert!(WireFaultPlan::corrupt(WireFault::Disconnect, frame).is_none());
    }
}
