//! Per-tenant admission control.
//!
//! Each session names a tenant; the tenant maps to a policy envelope:
//! a cap on concurrently in-flight requests and on the aggregate
//! solver fuel those requests may hold, plus per-request budget
//! ceilings. A request over any limit is *refused immediately* —
//! answered `Unknown(admission)` and never queued — so one abusive
//! tenant degrades to refusals while every other tenant's latency is
//! untouched. Refusal is the wire-level face of the paper's
//! degradation lattice: an indefinite answer, never an error that
//! kills the session and never unbounded queueing.

use daenerys_idf::Budget;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// The per-tenant envelope (one policy applies to every tenant;
/// tenants are isolated by *accounting*, not by bespoke limits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TenantPolicy {
    /// Concurrently admitted requests per tenant.
    pub max_in_flight: usize,
    /// Aggregate solver fuel the tenant's in-flight requests may hold
    /// (`None` = unlimited). Requests without an explicit fuel ask are
    /// accounted at [`TenantPolicy::default_fuel`].
    pub max_fuel_in_flight: Option<u64>,
    /// Per-request ceiling on the solver-fuel ask (`None` =
    /// unlimited); larger asks are clamped, not refused.
    pub max_fuel_per_request: Option<u64>,
    /// Per-request ceiling on the deadline ask, milliseconds; larger
    /// asks are clamped. Also the default when a request asks for
    /// nothing — the server never runs a method without a deadline.
    pub max_deadline_ms: u64,
    /// Fuel accounted for a request that asks for none.
    pub default_fuel: u64,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            max_in_flight: 4,
            max_fuel_in_flight: None,
            max_fuel_per_request: None,
            max_deadline_ms: 10_000,
            default_fuel: 1_000_000,
        }
    }
}

impl TenantPolicy {
    /// The effective per-method [`Budget`] for a request asking for
    /// `deadline_ms`/`solver_fuel`: asks are clamped to the policy
    /// ceilings, and a missing deadline ask gets the ceiling itself.
    pub fn effective_budget(&self, deadline_ms: Option<u64>, solver_fuel: Option<u64>) -> Budget {
        let deadline = deadline_ms
            .map(|ms| ms.min(self.max_deadline_ms))
            .unwrap_or(self.max_deadline_ms);
        let mut budget = Budget::unlimited().with_deadline_ms(deadline);
        budget.solver_fuel = match (solver_fuel, self.max_fuel_per_request) {
            (Some(ask), Some(cap)) => Some(ask.min(cap)),
            (Some(ask), None) => Some(ask),
            (None, cap) => cap,
        };
        budget
    }

    /// The fuel a request bills against the aggregate envelope.
    fn billed_fuel(&self, solver_fuel: Option<u64>) -> u64 {
        let ask = solver_fuel.unwrap_or(self.default_fuel);
        match self.max_fuel_per_request {
            Some(cap) => ask.min(cap),
            None => ask,
        }
    }
}

/// Live accounting for one tenant.
///
/// Beyond the envelope counters the state carries a *conservation
/// ledger*: `admitted` (requests presented to admission control),
/// `refused`, and `completed` (tickets released). All three live under
/// the same mutex as the envelope, so at any instant the invariant
/// `admitted == completed + refused + in_flight` holds exactly — the
/// telemetry plane scrapes and CI gates on it.
#[derive(Default, Debug)]
struct TenantState {
    in_flight: usize,
    fuel_in_flight: u64,
    admitted: u64,
    refused: u64,
    completed: u64,
}

/// The admission controller: one policy, per-tenant accounting.
#[derive(Debug)]
pub struct Admission {
    policy: TenantPolicy,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl Admission {
    /// A controller enforcing `policy` for every tenant.
    pub fn new(policy: TenantPolicy) -> Arc<Admission> {
        Arc::new(Admission {
            policy,
            tenants: Mutex::new(HashMap::new()),
        })
    }

    /// The enforced policy.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// Admits or refuses a request for `tenant` asking for
    /// `solver_fuel`. On refusal the reason names the tripped limit;
    /// nothing is recorded, so refusal is free and unqueued. On
    /// admission the returned ticket holds the tenant's slot and fuel
    /// until dropped.
    ///
    /// # Errors
    ///
    /// The human-readable admission-refusal detail.
    pub fn try_admit(
        self: &Arc<Admission>,
        tenant: &str,
        solver_fuel: Option<u64>,
    ) -> Result<AdmitTicket, String> {
        let fuel = self.policy.billed_fuel(solver_fuel);
        let mut tenants = lock(&self.tenants);
        let state = tenants.entry(tenant.to_string()).or_default();
        state.admitted = state.admitted.saturating_add(1);
        if state.in_flight >= self.policy.max_in_flight {
            state.refused = state.refused.saturating_add(1);
            return Err(format!(
                "tenant {:?} is over its in-flight cap ({})",
                tenant, self.policy.max_in_flight
            ));
        }
        if let Some(cap) = self.policy.max_fuel_in_flight {
            if state.fuel_in_flight.saturating_add(fuel) > cap {
                state.refused = state.refused.saturating_add(1);
                return Err(format!(
                    "tenant {:?} is over its aggregate fuel envelope ({} + {} > {})",
                    tenant, state.fuel_in_flight, fuel, cap
                ));
            }
        }
        state.in_flight += 1;
        state.fuel_in_flight += fuel;
        Ok(AdmitTicket {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
            fuel,
        })
    }

    /// Requests currently in flight for `tenant`.
    pub fn in_flight(&self, tenant: &str) -> usize {
        lock(&self.tenants).get(tenant).map_or(0, |s| s.in_flight)
    }

    /// Requests currently in flight across every tenant.
    pub fn total_in_flight(&self) -> usize {
        lock(&self.tenants).values().map(|s| s.in_flight).sum()
    }

    fn release(&self, tenant: &str, fuel: u64) {
        let mut tenants = lock(&self.tenants);
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
            state.fuel_in_flight = state.fuel_in_flight.saturating_sub(fuel);
            state.completed = state.completed.saturating_add(1);
        }
    }

    /// A point-in-time snapshot of the conservation ledger, taken
    /// under the one accounting lock so the invariant
    /// `admitted == completed + refused + in_flight` holds exactly for
    /// every tenant (and therefore in aggregate).
    pub fn stats(&self) -> AdmissionStats {
        let tenants = lock(&self.tenants);
        let mut per_tenant: Vec<TenantStats> = tenants
            .iter()
            .map(|(name, s)| TenantStats {
                tenant: name.clone(),
                admitted: s.admitted,
                refused: s.refused,
                completed: s.completed,
                in_flight: s.in_flight as u64,
                fuel_in_flight: s.fuel_in_flight,
            })
            .collect();
        per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut total = TenantStats {
            tenant: String::new(),
            ..TenantStats::default()
        };
        for t in &per_tenant {
            total.admitted = total.admitted.saturating_add(t.admitted);
            total.refused = total.refused.saturating_add(t.refused);
            total.completed = total.completed.saturating_add(t.completed);
            total.in_flight = total.in_flight.saturating_add(t.in_flight);
            total.fuel_in_flight = total.fuel_in_flight.saturating_add(t.fuel_in_flight);
        }
        AdmissionStats { total, per_tenant }
    }
}

/// One tenant's row in the conservation ledger.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TenantStats {
    /// The tenant name (empty for the aggregate row).
    pub tenant: String,
    /// Requests presented to admission control (admitted or refused).
    pub admitted: u64,
    /// Requests refused at admission.
    pub refused: u64,
    /// Admitted requests whose ticket has been released.
    pub completed: u64,
    /// Admitted requests still holding their ticket.
    pub in_flight: u64,
    /// Aggregate solver fuel held by in-flight requests.
    pub fuel_in_flight: u64,
}

impl TenantStats {
    /// The conservation invariant for this row.
    pub fn conserved(&self) -> bool {
        self.admitted
            == self
                .completed
                .saturating_add(self.refused)
                .saturating_add(self.in_flight)
    }
}

/// A consistent snapshot of the whole conservation ledger.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdmissionStats {
    /// The aggregate row (tenant name empty).
    pub total: TenantStats,
    /// Per-tenant rows, tenant-name order.
    pub per_tenant: Vec<TenantStats>,
}

impl AdmissionStats {
    /// True when every row (aggregate and per-tenant) conserves.
    pub fn conserved(&self) -> bool {
        self.total.conserved() && self.per_tenant.iter().all(TenantStats::conserved)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An admitted request's hold on its tenant's envelope; releases on
/// drop, so a panicking request (or an unwound worker) can never leak
/// an in-flight slot.
#[derive(Debug)]
pub struct AdmitTicket {
    admission: Arc<Admission>,
    tenant: String,
    fuel: u64,
}

impl Drop for AdmitTicket {
    fn drop(&mut self) {
        self.admission.release(&self.tenant, self.fuel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_cap_refuses_and_releases() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 2,
            ..TenantPolicy::default()
        });
        let t1 = adm.try_admit("a", None).unwrap();
        let _t2 = adm.try_admit("a", None).unwrap();
        let refused = adm.try_admit("a", None).unwrap_err();
        assert!(refused.contains("in-flight cap"), "{}", refused);
        // A different tenant is untouched by tenant a's saturation.
        let _other = adm.try_admit("b", None).unwrap();
        assert_eq!(adm.in_flight("a"), 2);
        drop(t1);
        assert_eq!(adm.in_flight("a"), 1);
        let _t3 = adm.try_admit("a", None).unwrap();
        assert_eq!(adm.total_in_flight(), 3);
    }

    #[test]
    fn aggregate_fuel_envelope_refuses() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 10,
            max_fuel_in_flight: Some(1000),
            ..TenantPolicy::default()
        });
        let _a = adm.try_admit("t", Some(600)).unwrap();
        let refused = adm.try_admit("t", Some(600)).unwrap_err();
        assert!(refused.contains("fuel envelope"), "{}", refused);
        let _b = adm.try_admit("t", Some(400)).unwrap();
    }

    #[test]
    fn budgets_are_clamped_not_refused() {
        let policy = TenantPolicy {
            max_deadline_ms: 500,
            max_fuel_per_request: Some(100),
            ..TenantPolicy::default()
        };
        let b = policy.effective_budget(Some(10_000), Some(1_000_000));
        assert_eq!(b.deadline_ms, Some(500));
        assert_eq!(b.solver_fuel, Some(100));
        let b = policy.effective_budget(None, None);
        assert_eq!(b.deadline_ms, Some(500), "no ask → the ceiling applies");
        assert_eq!(b.solver_fuel, Some(100));
        let b = policy.effective_budget(Some(100), Some(7));
        assert_eq!(b.deadline_ms, Some(100));
        assert_eq!(b.solver_fuel, Some(7));
    }

    #[test]
    fn ledger_conserves_under_concurrent_churn() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 2,
            ..TenantPolicy::default()
        });
        let mut handles = Vec::new();
        for i in 0..4 {
            let adm = Arc::clone(&adm);
            handles.push(std::thread::spawn(move || {
                let tenant = if i % 2 == 0 { "even" } else { "odd" };
                for _ in 0..200 {
                    let ticket = adm.try_admit(tenant, None);
                    // Scrapes racing admits/releases must still see a
                    // conserved ledger: the snapshot is atomic.
                    let stats = adm.stats();
                    assert!(stats.conserved(), "mid-churn: {:?}", stats);
                    drop(ticket);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = adm.stats();
        assert!(stats.conserved());
        assert_eq!(stats.total.admitted, 800);
        assert_eq!(stats.total.in_flight, 0);
        assert_eq!(
            stats.total.completed + stats.total.refused,
            800,
            "every presented request ended refused or completed"
        );
        assert_eq!(stats.per_tenant.len(), 2);
        assert!(stats.per_tenant.iter().all(|t| t.admitted == 400));
    }

    #[test]
    fn ticket_drop_is_panic_safe() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 1,
            ..TenantPolicy::default()
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ticket = adm.try_admit("t", None).unwrap();
            panic!("request blew up");
        }));
        assert!(result.is_err());
        assert_eq!(adm.in_flight("t"), 0, "the ticket released on unwind");
        let _again = adm.try_admit("t", None).unwrap();
    }
}
