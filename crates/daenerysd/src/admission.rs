//! Per-tenant admission control.
//!
//! Each session names a tenant; the tenant maps to a policy envelope:
//! a cap on concurrently in-flight requests and on the aggregate
//! solver fuel those requests may hold, plus per-request budget
//! ceilings. A request over any limit is *refused immediately* —
//! answered `Unknown(admission)` and never queued — so one abusive
//! tenant degrades to refusals while every other tenant's latency is
//! untouched. Refusal is the wire-level face of the paper's
//! degradation lattice: an indefinite answer, never an error that
//! kills the session and never unbounded queueing.

use daenerys_idf::Budget;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// The per-tenant envelope (one policy applies to every tenant;
/// tenants are isolated by *accounting*, not by bespoke limits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TenantPolicy {
    /// Concurrently admitted requests per tenant.
    pub max_in_flight: usize,
    /// Aggregate solver fuel the tenant's in-flight requests may hold
    /// (`None` = unlimited). Requests without an explicit fuel ask are
    /// accounted at [`TenantPolicy::default_fuel`].
    pub max_fuel_in_flight: Option<u64>,
    /// Per-request ceiling on the solver-fuel ask (`None` =
    /// unlimited); larger asks are clamped, not refused.
    pub max_fuel_per_request: Option<u64>,
    /// Per-request ceiling on the deadline ask, milliseconds; larger
    /// asks are clamped. Also the default when a request asks for
    /// nothing — the server never runs a method without a deadline.
    pub max_deadline_ms: u64,
    /// Fuel accounted for a request that asks for none.
    pub default_fuel: u64,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            max_in_flight: 4,
            max_fuel_in_flight: None,
            max_fuel_per_request: None,
            max_deadline_ms: 10_000,
            default_fuel: 1_000_000,
        }
    }
}

impl TenantPolicy {
    /// The effective per-method [`Budget`] for a request asking for
    /// `deadline_ms`/`solver_fuel`: asks are clamped to the policy
    /// ceilings, and a missing deadline ask gets the ceiling itself.
    pub fn effective_budget(&self, deadline_ms: Option<u64>, solver_fuel: Option<u64>) -> Budget {
        let deadline = deadline_ms
            .map(|ms| ms.min(self.max_deadline_ms))
            .unwrap_or(self.max_deadline_ms);
        let mut budget = Budget::unlimited().with_deadline_ms(deadline);
        budget.solver_fuel = match (solver_fuel, self.max_fuel_per_request) {
            (Some(ask), Some(cap)) => Some(ask.min(cap)),
            (Some(ask), None) => Some(ask),
            (None, cap) => cap,
        };
        budget
    }

    /// The fuel a request bills against the aggregate envelope.
    fn billed_fuel(&self, solver_fuel: Option<u64>) -> u64 {
        let ask = solver_fuel.unwrap_or(self.default_fuel);
        match self.max_fuel_per_request {
            Some(cap) => ask.min(cap),
            None => ask,
        }
    }
}

/// Live accounting for one tenant.
#[derive(Default, Debug)]
struct TenantState {
    in_flight: usize,
    fuel_in_flight: u64,
}

/// The admission controller: one policy, per-tenant accounting.
#[derive(Debug)]
pub struct Admission {
    policy: TenantPolicy,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl Admission {
    /// A controller enforcing `policy` for every tenant.
    pub fn new(policy: TenantPolicy) -> Arc<Admission> {
        Arc::new(Admission {
            policy,
            tenants: Mutex::new(HashMap::new()),
        })
    }

    /// The enforced policy.
    pub fn policy(&self) -> TenantPolicy {
        self.policy
    }

    /// Admits or refuses a request for `tenant` asking for
    /// `solver_fuel`. On refusal the reason names the tripped limit;
    /// nothing is recorded, so refusal is free and unqueued. On
    /// admission the returned ticket holds the tenant's slot and fuel
    /// until dropped.
    ///
    /// # Errors
    ///
    /// The human-readable admission-refusal detail.
    pub fn try_admit(
        self: &Arc<Admission>,
        tenant: &str,
        solver_fuel: Option<u64>,
    ) -> Result<AdmitTicket, String> {
        let fuel = self.policy.billed_fuel(solver_fuel);
        let mut tenants = lock(&self.tenants);
        let state = tenants.entry(tenant.to_string()).or_default();
        if state.in_flight >= self.policy.max_in_flight {
            return Err(format!(
                "tenant {:?} is over its in-flight cap ({})",
                tenant, self.policy.max_in_flight
            ));
        }
        if let Some(cap) = self.policy.max_fuel_in_flight {
            if state.fuel_in_flight.saturating_add(fuel) > cap {
                return Err(format!(
                    "tenant {:?} is over its aggregate fuel envelope ({} + {} > {})",
                    tenant, state.fuel_in_flight, fuel, cap
                ));
            }
        }
        state.in_flight += 1;
        state.fuel_in_flight += fuel;
        Ok(AdmitTicket {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
            fuel,
        })
    }

    /// Requests currently in flight for `tenant`.
    pub fn in_flight(&self, tenant: &str) -> usize {
        lock(&self.tenants).get(tenant).map_or(0, |s| s.in_flight)
    }

    /// Requests currently in flight across every tenant.
    pub fn total_in_flight(&self) -> usize {
        lock(&self.tenants).values().map(|s| s.in_flight).sum()
    }

    fn release(&self, tenant: &str, fuel: u64) {
        let mut tenants = lock(&self.tenants);
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
            state.fuel_in_flight = state.fuel_in_flight.saturating_sub(fuel);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An admitted request's hold on its tenant's envelope; releases on
/// drop, so a panicking request (or an unwound worker) can never leak
/// an in-flight slot.
#[derive(Debug)]
pub struct AdmitTicket {
    admission: Arc<Admission>,
    tenant: String,
    fuel: u64,
}

impl Drop for AdmitTicket {
    fn drop(&mut self) {
        self.admission.release(&self.tenant, self.fuel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_cap_refuses_and_releases() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 2,
            ..TenantPolicy::default()
        });
        let t1 = adm.try_admit("a", None).unwrap();
        let _t2 = adm.try_admit("a", None).unwrap();
        let refused = adm.try_admit("a", None).unwrap_err();
        assert!(refused.contains("in-flight cap"), "{}", refused);
        // A different tenant is untouched by tenant a's saturation.
        let _other = adm.try_admit("b", None).unwrap();
        assert_eq!(adm.in_flight("a"), 2);
        drop(t1);
        assert_eq!(adm.in_flight("a"), 1);
        let _t3 = adm.try_admit("a", None).unwrap();
        assert_eq!(adm.total_in_flight(), 3);
    }

    #[test]
    fn aggregate_fuel_envelope_refuses() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 10,
            max_fuel_in_flight: Some(1000),
            ..TenantPolicy::default()
        });
        let _a = adm.try_admit("t", Some(600)).unwrap();
        let refused = adm.try_admit("t", Some(600)).unwrap_err();
        assert!(refused.contains("fuel envelope"), "{}", refused);
        let _b = adm.try_admit("t", Some(400)).unwrap();
    }

    #[test]
    fn budgets_are_clamped_not_refused() {
        let policy = TenantPolicy {
            max_deadline_ms: 500,
            max_fuel_per_request: Some(100),
            ..TenantPolicy::default()
        };
        let b = policy.effective_budget(Some(10_000), Some(1_000_000));
        assert_eq!(b.deadline_ms, Some(500));
        assert_eq!(b.solver_fuel, Some(100));
        let b = policy.effective_budget(None, None);
        assert_eq!(b.deadline_ms, Some(500), "no ask → the ceiling applies");
        assert_eq!(b.solver_fuel, Some(100));
        let b = policy.effective_budget(Some(100), Some(7));
        assert_eq!(b.deadline_ms, Some(100));
        assert_eq!(b.solver_fuel, Some(7));
    }

    #[test]
    fn ticket_drop_is_panic_safe() {
        let adm = Admission::new(TenantPolicy {
            max_in_flight: 1,
            ..TenantPolicy::default()
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ticket = adm.try_admit("t", None).unwrap();
            panic!("request blew up");
        }));
        assert!(result.is_err());
        assert_eq!(adm.in_flight("t"), 0, "the ticket released on unwind");
        let _again = adm.try_admit("t", None).unwrap();
    }
}
