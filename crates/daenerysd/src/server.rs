//! The daemon core: accept loop, per-session reader/worker pairs,
//! graceful drain.
//!
//! One TCP connection is one *session*. Each session runs two threads:
//! a **reader** that frames bytes, decodes requests, and does
//! admission *before* anything is queued, and a **worker** that
//! verifies admitted requests against the shared warm
//! [`SessionHost`] and writes responses. The two meet at a bounded
//! [`std::sync::mpsc::sync_channel`]: when the queue is full the
//! reader blocks, which stops draining the socket, which is TCP
//! backpressure — the daemon never buffers unboundedly.
//!
//! Robustness contract (enforced by the chaos suite):
//! - a malformed frame, torn write, or slow-loris stall costs *that
//!   session only* — a typed error and/or a close, never a panic;
//! - a panicking request degrades to an `internal` error response for
//!   that request; the session, its queue, and every sibling continue;
//! - over-budget tenants are refused immediately (`status:"refused"`)
//!   and never queued;
//! - shutdown stops intake, drains every queued request, flushes the
//!   verdict store, and reports zero leaked sessions in the final
//!   [`MetricsSnapshot`].

use crate::admission::{Admission, AdmitTicket, TenantPolicy};
use crate::chaos::{WireFault, WireFaultPlan};
use crate::protocol::{
    read_frame, write_frame, AdminRequest, ErrorCode, Frame, FrameError, Request, Response,
    WireVerdict,
};
use crate::telemetry::{Telemetry, DEFAULT_RING_CAP};
use daenerys_idf::exec::Backend;
use daenerys_idf::exec::VerifierConfig;
use daenerys_idf::parser::DEFAULT_MAX_ERRORS;
use daenerys_idf::session::{SessionError, SessionHost, VerifyRequest};
use daenerys_obs::{ClockKind, Labels, TraceHandle, Value};
use std::fmt::Write as _;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Verification backend for every session.
    pub backend: Backend,
    /// Base verifier configuration. `cache_dir` here opens the warm
    /// shared store; `trace` is the root every request context derives
    /// from.
    pub base: VerifierConfig,
    /// The per-tenant admission envelope.
    pub policy: TenantPolicy,
    /// Bounded per-session request-queue depth.
    pub queue_cap: usize,
    /// A started frame must complete within this many milliseconds —
    /// the slow-loris cutoff.
    pub frame_deadline_ms: u64,
    /// Read/accept poll granularity, milliseconds (how quickly the
    /// daemon notices shutdown).
    pub read_poll_ms: u64,
    /// Server-side wire-fault injection (tests): synthesizes framing
    /// faults at deterministic `(session, frame)` points.
    pub wire_faults: WireFaultPlan,
    /// Serve the live telemetry plane (labeled metrics, trace ring,
    /// admin frames). When on and `base.trace` is disabled, the daemon
    /// installs its own monotonic trace pipeline feeding the telemetry
    /// sink; an explicitly configured `base.trace` is left untouched
    /// (its sink wins, and `metrics` scrapes still serve the labeled
    /// registry).
    pub telemetry: bool,
    /// Per-tenant trace-ring capacity (events) for `trace_tail`.
    pub trace_ring_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            backend: Backend::Destabilized,
            base: VerifierConfig::default(),
            policy: TenantPolicy::default(),
            queue_cap: 4,
            frame_deadline_ms: 2_000,
            read_poll_ms: 25,
            wire_faults: WireFaultPlan::none(),
            telemetry: true,
            trace_ring_cap: DEFAULT_RING_CAP,
        }
    }
}

/// Monotonic counters, updated by every session thread.
#[derive(Default, Debug)]
struct Counters {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    requests_received: AtomicU64,
    responses_ok: AtomicU64,
    requests_refused: AtomicU64,
    requests_errored: AtomicU64,
    internal_crashes: AtomicU64,
    frame_errors: AtomicU64,
    admin_frames: AtomicU64,
}

/// The final state of a drained daemon, emitted at shutdown (and, for
/// the smoke gate, asserted on: `leaked_sessions` must be 0).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricsSnapshot {
    /// Sessions accepted over the daemon's lifetime.
    pub sessions_opened: u64,
    /// Sessions fully closed (reader and worker joined).
    pub sessions_closed: u64,
    /// `sessions_opened - sessions_closed`; 0 after a graceful drain.
    pub leaked_sessions: u64,
    /// Frames successfully read and counted as requests.
    pub requests_received: u64,
    /// Requests answered `status:"ok"`.
    pub responses_ok: u64,
    /// Requests refused by admission control (never queued).
    pub requests_refused: u64,
    /// Requests answered `status:"error"` (parse/bad-request/internal
    /// /shutdown).
    pub requests_errored: u64,
    /// Whole-request panics contained by `catch_unwind`.
    pub internal_crashes: u64,
    /// Framing failures (torn/garbage/oversized/slow-loris), each
    /// costing one session.
    pub frame_errors: u64,
    /// Admin-plane frames answered (metrics/health/trace_tail) —
    /// counted separately from `requests_received`, which stays a
    /// verification-traffic measure.
    pub admin_frames: u64,
    /// Entries in the verdict store after the final flush.
    pub store_entries: u64,
    /// Undecodable store lines skipped when the store was opened.
    pub store_corrupt_lines: u64,
}

impl MetricsSnapshot {
    /// One-line JSON for the smoke gate and ops logs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let fields = [
            ("sessions_opened", self.sessions_opened),
            ("sessions_closed", self.sessions_closed),
            ("leaked_sessions", self.leaked_sessions),
            ("requests_received", self.requests_received),
            ("responses_ok", self.responses_ok),
            ("requests_refused", self.requests_refused),
            ("requests_errored", self.requests_errored),
            ("internal_crashes", self.internal_crashes),
            ("frame_errors", self.frame_errors),
            ("admin_frames", self.admin_frames),
            ("store_entries", self.store_entries),
            ("store_corrupt_lines", self.store_corrupt_lines),
        ];
        out.push('{');
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", k, v);
        }
        out.push('}');
        out
    }
}

/// State shared by the accept loop and every session thread.
struct Shared {
    host: SessionHost,
    admission: Arc<Admission>,
    trace: TraceHandle,
    telemetry: Option<Arc<Telemetry>>,
    shutdown: Arc<AtomicBool>,
    /// Set (by SIGUSR1 or a test) to make the accept loop print one
    /// [`MetricsSnapshot`] without stopping.
    snapshot_flag: Arc<AtomicBool>,
    counters: Counters,
    queue_cap: usize,
    frame_deadline: Duration,
    read_poll: Duration,
    wire_faults: WireFaultPlan,
}

/// A bound daemon, not yet serving. [`Server::run`] blocks until a
/// shutdown is requested through [`Server::shutdown_flag`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({:?})", self.listener.local_addr())
    }
}

impl Server {
    /// Binds the listener and opens the warm store.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let telemetry = config
            .telemetry
            .then(|| Telemetry::new(config.trace_ring_cap));
        let mut base = config.base;
        if let Some(t) = &telemetry {
            // Tee the trace pipeline into the telemetry plane — but
            // only when the operator didn't wire their own sink.
            if !base.trace.is_enabled() {
                base.trace = TraceHandle::new(Arc::new(t.sink()), ClockKind::Monotonic);
            }
        }
        let trace = base.trace.clone();
        let host = SessionHost::new(config.backend, base);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                host,
                admission: Admission::new(config.policy),
                trace,
                telemetry,
                shutdown: Arc::new(AtomicBool::new(false)),
                snapshot_flag: Arc::new(AtomicBool::new(false)),
                counters: Counters::default(),
                queue_cap: config.queue_cap.max(1),
                frame_deadline: Duration::from_millis(config.frame_deadline_ms.max(1)),
                read_poll: Duration::from_millis(config.read_poll_ms.clamp(1, 1_000)),
                wire_faults: config.wire_faults,
            }),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown flag: set it (from a signal handler bridge or a
    /// test) and [`Server::run`] drains and returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// The snapshot flag: set it (the SIGUSR1 bridge, or a test) and
    /// the accept loop prints one `daenerysd snapshot {…}` line to
    /// stdout without stopping, then clears the flag.
    pub fn snapshot_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.snapshot_flag)
    }

    /// The live telemetry plane, when enabled (embedded harnesses
    /// scrape it in-process instead of over the wire).
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.shared.telemetry.clone()
    }

    /// Serves until shutdown, then drains in-flight sessions, flushes
    /// the verdict store, and returns the final metrics snapshot.
    pub fn run(self) -> MetricsSnapshot {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut next_session: u64 = 0;
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    next_session += 1;
                    let sid = next_session;
                    self.shared
                        .counters
                        .sessions_opened
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&self.shared);
                    sessions.push(std::thread::spawn(move || {
                        // The session loop is itself unwind-contained:
                        // nothing a session does can kill the daemon.
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| session_loop(&shared, stream, sid)));
                        if outcome.is_err() {
                            shared
                                .counters
                                .internal_crashes
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        shared
                            .counters
                            .sessions_closed
                            .fetch_add(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.shared.read_poll);
                }
                // Transient accept errors (per-connection resets,
                // descriptor pressure) must not kill the daemon.
                Err(_) => std::thread::sleep(self.shared.read_poll),
            }
            if self.shared.snapshot_flag.swap(false, Ordering::SeqCst) {
                println!("daenerysd snapshot {}", self.snapshot().to_json());
            }
            sessions.retain(|h| !h.is_finished());
        }
        // Drain: the flag stops readers at the next frame boundary;
        // workers finish every already-admitted request.
        for handle in sessions {
            let _ = handle.join();
        }
        let _ = self.shared.host.flush_store();
        self.shared.trace.flush();
        self.snapshot()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let c = &self.shared.counters;
        let opened = c.sessions_opened.load(Ordering::SeqCst);
        let closed = c.sessions_closed.load(Ordering::SeqCst);
        MetricsSnapshot {
            sessions_opened: opened,
            sessions_closed: closed,
            leaked_sessions: opened.saturating_sub(closed),
            requests_received: c.requests_received.load(Ordering::SeqCst),
            responses_ok: c.responses_ok.load(Ordering::SeqCst),
            requests_refused: c.requests_refused.load(Ordering::SeqCst),
            requests_errored: c.requests_errored.load(Ordering::SeqCst),
            internal_crashes: c.internal_crashes.load(Ordering::SeqCst),
            frame_errors: c.frame_errors.load(Ordering::SeqCst),
            admin_frames: c.admin_frames.load(Ordering::SeqCst),
            store_entries: self.shared.host.store_len() as u64,
            store_corrupt_lines: self.shared.host.store_corrupt_lines() as u64,
        }
    }
}

/// One admitted request in a session's bounded queue. The ticket rides
/// along so the tenant's envelope is held exactly while the request is
/// queued or running, and released even if the job is dropped during
/// drain.
struct Job {
    req: Request,
    ticket: AdmitTicket,
}

fn session_loop(shared: &Arc<Shared>, stream: TcpStream, sid: u64) {
    let _ = stream.set_read_timeout(Some(shared.read_poll));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let (tx, rx) = sync_channel::<Job>(shared.queue_cap);
    let worker = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || worker_loop(&shared, rx, &writer, sid))
    };

    let mut reader = stream;
    let mut frames: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut frame_deadline_at: Option<Instant> = None;
        let result = read_frame(&mut reader, |mid_frame| {
            if shared.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if !mid_frame {
                frame_deadline_at = None;
                return true;
            }
            let at =
                *frame_deadline_at.get_or_insert_with(|| Instant::now() + shared.frame_deadline);
            Instant::now() < at
        });
        // Server-side chaos: synthesize a framing fault at the plan's
        // deterministic points, exercising the exact error paths a
        // corrupted wire would.
        let result = match shared.wire_faults.fault_for(sid, frames) {
            WireFault::None => result,
            WireFault::Torn { keep_per_mille } => Err(FrameError::Torn {
                expected: 1000,
                got: keep_per_mille as usize,
            }),
            WireFault::GarbageHeader => {
                Err(FrameError::BadHeader("injected garbage header".to_string()))
            }
            WireFault::Disconnect => Err(FrameError::Closed),
            WireFault::SlowLoris { .. } => Err(FrameError::Aborted { mid_frame: true }),
        };
        match result {
            Ok(payload) => {
                frames += 1;
                match Frame::decode(&payload) {
                    // Admin frames are answered inline by the reader:
                    // never queued behind verification work, never
                    // admission-controlled — the telemetry plane keeps
                    // answering while every tenant budget is saturated
                    // and while the worker queue is full.
                    Ok(Frame::Admin(areq)) => {
                        shared.counters.admin_frames.fetch_add(1, Ordering::Relaxed);
                        respond(&writer, &admin_response(shared, &areq));
                    }
                    Err(message) => {
                        shared
                            .counters
                            .requests_received
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .requests_errored
                            .fetch_add(1, Ordering::Relaxed);
                        // A delimited frame with a bad payload does not
                        // desync the stream: answer and keep serving.
                        respond(
                            &writer,
                            &Response::Err {
                                id: 0,
                                code: ErrorCode::BadRequest,
                                message,
                            },
                        );
                    }
                    Ok(Frame::Verify(req)) => {
                        shared
                            .counters
                            .requests_received
                            .fetch_add(1, Ordering::Relaxed);
                        if shared.shutdown.load(Ordering::SeqCst) {
                            shared
                                .counters
                                .requests_errored
                                .fetch_add(1, Ordering::Relaxed);
                            respond(
                                &writer,
                                &Response::Err {
                                    id: req.id,
                                    code: ErrorCode::Shutdown,
                                    message: "server is draining".to_string(),
                                },
                            );
                            break;
                        }
                        match shared.admission.try_admit(&req.tenant, req.solver_fuel) {
                            Err(detail) => {
                                shared
                                    .counters
                                    .requests_refused
                                    .fetch_add(1, Ordering::Relaxed);
                                if let Some(t) = &shared.telemetry {
                                    t.registry().add(
                                        "daenerysd.refused",
                                        &Labels::none().with("tenant", &req.tenant),
                                        1,
                                    );
                                }
                                // Refused immediately — never queued.
                                respond(&writer, &Response::Refused { id: req.id, detail });
                            }
                            Ok(ticket) => {
                                // Bounded queue: blocks when full — the
                                // socket stops draining and TCP pushes
                                // back on the client.
                                if tx.send(Job { req, ticket }).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            Err(FrameError::Closed) | Err(FrameError::Aborted { mid_frame: false }) => break,
            Err(e) => {
                // Torn frame, garbage header, oversized payload,
                // slow-loris cutoff, or hard I/O failure: one typed
                // error (best-effort — the stream may already be
                // gone), then close this session only.
                shared.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    &writer,
                    &Response::Err {
                        id: 0,
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                );
                break;
            }
        }
    }
    // Hang up the request queue; the worker drains whatever was
    // admitted, responding to each, then exits.
    drop(tx);
    let _ = worker.join();
    let _ = reader.shutdown(Shutdown::Both);
}

fn worker_loop(shared: &Arc<Shared>, rx: Receiver<Job>, writer: &Arc<Mutex<TcpStream>>, sid: u64) {
    let mut reqno: u64 = 0;
    for job in &rx {
        reqno += 1;
        let response = process(shared, &job.req, sid, reqno);
        match &response {
            Response::Ok { .. } => {
                shared.counters.responses_ok.fetch_add(1, Ordering::Relaxed);
            }
            Response::Refused { .. } => {
                shared
                    .counters
                    .requests_refused
                    .fetch_add(1, Ordering::Relaxed);
            }
            Response::Err { .. } => {
                shared
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
            }
            // Admin responses are written by the reader, never queued.
            Response::Admin { .. } => {}
        };
        // The ticket is released only now — after the verify — so the
        // tenant's envelope covered the whole run.
        drop(job.ticket);
        if !respond(writer, &response) {
            // The peer is gone; keep draining so queued tickets
            // release, but stop writing.
            for late in rx.iter() {
                drop(late);
            }
            break;
        }
    }
}

/// Answers one admin frame from the telemetry plane (reader-side, see
/// [`session_loop`]).
fn admin_response(shared: &Arc<Shared>, req: &AdminRequest) -> Response {
    let Some(t) = &shared.telemetry else {
        return Response::Err {
            id: req.id(),
            code: ErrorCode::BadRequest,
            message: "telemetry plane is disabled".to_string(),
        };
    };
    let body = match req {
        AdminRequest::Metrics { .. } => t.metrics_json(&shared.trace.metrics()),
        AdminRequest::Health { .. } => t.health_json(
            &shared.admission.stats(),
            shared.shutdown.load(Ordering::SeqCst),
        ),
        AdminRequest::TraceTail { after_seq, max, .. } => t.ring().tail(*after_seq, *max).to_json(),
    };
    Response::Admin {
        id: req.id(),
        kind: req.kind().to_string(),
        body,
    }
}

/// Verifies one admitted request. Never panics: the whole request is
/// behind `catch_unwind` (on top of the verifier's own per-method
/// isolation), so the worst outcome is an `internal` error response.
fn process(shared: &Arc<Shared>, req: &Request, sid: u64, reqno: u64) -> Response {
    let started = Instant::now();
    let budget = shared
        .admission
        .policy()
        .effective_budget(req.deadline_ms, req.solver_fuel);
    let trace = shared.trace.with_context(vec![
        ("tenant".to_string(), Value::Str(req.tenant.clone())),
        ("session".to_string(), Value::UInt(sid)),
        ("request".to_string(), Value::UInt(req.id)),
        ("request_seq".to_string(), Value::UInt(reqno)),
    ]);
    let vreq = VerifyRequest {
        source: req.source.clone(),
        budget: Some(budget),
        max_errors: req.max_errors.unwrap_or(DEFAULT_MAX_ERRORS),
        trace: Some(trace),
    };
    let session = shared.host.session();
    let labels = Labels::none().with("tenant", &req.tenant);
    let response = match catch_unwind(AssertUnwindSafe(|| session.verify(&vreq))) {
        Ok(Ok(outcome)) => {
            if let Some(t) = &shared.telemetry {
                let reg = t.registry();
                let s = &outcome.stats;
                // Fuel proxy: the budget units both solver cores
                // meter (CDCL conflicts/propagations, DPLL branches).
                let fuel = (s.solver_conflicts + s.solver_propagations + s.solver_branches) as u64;
                reg.record("daenerysd.fuel", &labels, fuel);
                reg.add("daenerysd.cache_hits", &labels, s.cache_hits as u64);
                reg.add("daenerysd.cache_misses", &labels, s.cache_misses as u64);
                reg.add(
                    "daenerysd.solver_conflicts",
                    &labels,
                    s.solver_conflicts as u64,
                );
                reg.add(
                    "daenerysd.solver_restarts",
                    &labels,
                    s.solver_restarts as u64,
                );
                // The incremental store plane, per tenant: verdicts
                // served warm, genuine fingerprint misses, and warm
                // hits discarded by transitive spec dirtiness.
                // Tenants with identical answer-affecting config share
                // store entries, so one tenant's writes surface as
                // another's hits here.
                if let Some(hits) = outcome.store_hits {
                    reg.add("daenerysd.store_hits", &labels, hits as u64);
                }
                if let Some(misses) = outcome.store_misses {
                    reg.add("daenerysd.store_misses", &labels, misses as u64);
                }
                if let Some(dirty) = outcome.store_dirty_transitive {
                    reg.add("daenerysd.store_dirty_transitive", &labels, dirty as u64);
                }
            }
            Response::Ok {
                id: req.id,
                verdicts: outcome
                    .verdicts
                    .iter()
                    .map(|(name, v)| (name.clone(), WireVerdict::from_verdict(v)))
                    .collect(),
                reverified: outcome.reverified.map(|n| n as u64),
            }
        }
        Ok(Err(SessionError::Parse(errs))) => Response::Err {
            id: req.id,
            code: ErrorCode::Parse,
            message: format!("{} parse error(s); first: {}", errs.len(), errs[0]),
        },
        Err(panic) => {
            shared
                .counters
                .internal_crashes
                .fetch_add(1, Ordering::Relaxed);
            Response::Err {
                id: req.id,
                code: ErrorCode::Internal,
                message: panic_message(&panic),
            }
        }
    };
    if let Some(t) = &shared.telemetry {
        let reg = t.registry();
        reg.add("daenerysd.requests", &labels, 1);
        reg.record(
            "daenerysd.latency_us",
            &labels,
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
        match &response {
            Response::Ok { verdicts, .. } => {
                for v in verdicts.values() {
                    reg.add(&format!("daenerysd.verdict.{}", v.kind), &labels, 1);
                }
            }
            Response::Err { .. } => reg.add("daenerysd.errors", &labels, 1),
            Response::Refused { .. } | Response::Admin { .. } => {}
        }
    }
    response
}

/// Writes one response frame under the writer lock; false when the
/// stream is dead.
fn respond(writer: &Arc<Mutex<TcpStream>>, response: &Response) -> bool {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_frame(&mut *w, response.encode().as_bytes()).is_ok()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
