//! `daenerysd` — the long-running, fault-tolerant verification daemon.
//!
//! The bench CLI pays the full cold-start price (arena build, store
//! open, solver warm-up) on every invocation. The daemon pays it once:
//! a [`daenerys_idf::SessionHost`] keeps the verifier configuration
//! and the persistent verdict store warm across requests, and TCP
//! sessions multiplex concurrent tenants onto it. The wire protocol is
//! length-delimited JSONL frames with a versioned header
//! ([`protocol`]); robustness is load-bearing, not best-effort —
//! admission control ([`admission`]), per-request panic containment,
//! bounded queues, a graceful SIGTERM drain ([`server`]), and a
//! deterministic wire-level chaos plan ([`chaos`]) that the test suite
//! and the replay client ([`client`]) drive against the full fault
//! matrix. A live telemetry plane ([`telemetry`]) serves labeled
//! metrics, health (with the admission conservation ledger), and a
//! bounded per-tenant trace tail over admin frames on the same
//! listener — exempt from admission, so observability survives
//! saturation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use admission::{Admission, AdmissionStats, AdmitTicket, TenantPolicy, TenantStats};
pub use chaos::{splitmix64, WireFault, WireFaultPlan};
pub use client::{Client, RetryPolicy};
pub use protocol::{
    read_frame, write_frame, AdminRequest, ErrorCode, Frame, FrameError, Request, Response,
    WireVerdict,
};
pub use server::{MetricsSnapshot, Server, ServerConfig};
pub use telemetry::{Telemetry, TelemetrySink, TraceRing, TraceTailPage};
