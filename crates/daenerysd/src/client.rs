//! The replay/test client: one connection per attempt, retry with
//! exponential backoff and deterministic jitter, optional wire-fault
//! injection on the send path.
//!
//! Chaos is keyed by `(request_id, attempt)` — not by wall clock or
//! socket identity — so a replay knows *in advance* exactly which
//! sends are corrupted, and the bit-identical gate can compare the
//! unaffected requests' verdicts against a fault-free run.

use crate::chaos::{splitmix64, WireFault, WireFaultPlan};
use crate::protocol::{
    read_frame, write_frame, AdminRequest, ErrorCode, FrameError, Request, Response,
};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Retry schedule: exponential backoff with deterministic jitter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// First-retry backoff, milliseconds; doubles per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Mixes into the jitter draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 20,
            max_backoff_ms: 1_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The pause before retrying `request_id`'s attempt number
    /// `attempt` (0-based attempt that just failed): exponential in
    /// the attempt, jittered by a deterministic draw over
    /// `(seed, request_id, attempt)` so concurrent replays don't
    /// stampede in lockstep yet remain reproducible.
    pub fn backoff(&self, request_id: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_backoff_ms.max(1));
        let draw = splitmix64(
            self.seed ^ request_id.wrapping_mul(0x9e3779b97f4a7c15) ^ u64::from(attempt),
        );
        // Half fixed, half jittered: never less than exp/2, never
        // more than exp.
        Duration::from_millis(exp / 2 + draw % (exp / 2 + 1))
    }
}

/// Why a request (or a whole retry budget) failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect/framing/socket).
    Io(io::Error),
    /// The server's response frame was malformed or torn.
    Frame(FrameError),
    /// The response payload did not decode.
    Decode(String),
    /// This attempt's send was deliberately faulted by the chaos plan
    /// (a torn write or pre-send disconnect) — retry.
    Faulted(WireFault),
    /// Every attempt failed; `last` describes the final failure.
    Exhausted {
        /// Attempts consumed.
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {}", e),
            ClientError::Frame(e) => write!(f, "frame: {}", e),
            ClientError::Decode(m) => write!(f, "decode: {}", m),
            ClientError::Faulted(w) => write!(f, "send faulted: {}", w),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "exhausted after {} attempt(s); last: {}", attempts, last)
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A daemon client. Each attempt opens a fresh connection, so a
/// faulted or torn session can never poison the next attempt.
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    retry: RetryPolicy,
    faults: WireFaultPlan,
    /// Trickle step delay for injected slow-loris sends.
    loris_delay: Duration,
    /// How long to wait for the response frame.
    read_timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr`, no chaos, default retries.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            retry: RetryPolicy::default(),
            faults: WireFaultPlan::none(),
            loris_delay: Duration::from_millis(60),
            read_timeout: Duration::from_secs(30),
        }
    }

    /// Replaces the retry schedule.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// Injects wire faults on sends, keyed by `(request_id, attempt)`.
    #[must_use]
    pub fn with_faults(mut self, faults: WireFaultPlan) -> Client {
        self.faults = faults;
        self
    }

    /// Overrides the response-read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Client {
        self.read_timeout = timeout;
        self
    }

    /// True when the chaos plan will corrupt *some* attempt of
    /// `request_id` within the retry budget — i.e. the request is
    /// *affected* and excluded from bit-identical comparison.
    pub fn is_affected(&self, request_id: u64) -> bool {
        (0..self.retry.max_attempts)
            .any(|a| !self.faults.fault_for(request_id, u64::from(a)).is_none())
    }

    /// One attempt: connect, send (through the chaos plan), read one
    /// response frame.
    ///
    /// # Errors
    ///
    /// Any transport/decode failure, or [`ClientError::Faulted`] when
    /// the chaos plan destroyed this attempt's send.
    pub fn request_once(&self, req: &Request, attempt: u32) -> Result<Response, ClientError> {
        let stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.read_timeout))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        let fault = self.faults.fault_for(req.id, u64::from(attempt));
        self.send_with_fault(&stream, req, fault)?;
        let mut reader = stream;
        let payload = read_frame(&mut reader, |_| true).map_err(ClientError::Frame)?;
        Response::decode(&payload).map_err(ClientError::Decode)
    }

    fn send_with_fault(
        &self,
        stream: &TcpStream,
        req: &Request,
        fault: WireFault,
    ) -> Result<(), ClientError> {
        let mut w = stream;
        match fault {
            WireFault::None => {
                write_frame(&mut w, req.encode().as_bytes()).map_err(ClientError::Io)
            }
            WireFault::SlowLoris { chunk } => {
                // Trickle the real frame; the server's frame deadline
                // is expected to cut us off (write error) — that's the
                // point.
                let mut frame = Vec::new();
                write_frame(&mut frame, req.encode().as_bytes()).map_err(ClientError::Io)?;
                for piece in frame.chunks(chunk.max(1)) {
                    if let Err(e) = w.write_all(piece).and_then(|()| w.flush()) {
                        return Err(ClientError::Io(e));
                    }
                    std::thread::sleep(self.loris_delay);
                }
                Ok(())
            }
            other => {
                let mut frame = Vec::new();
                write_frame(&mut frame, req.encode().as_bytes()).map_err(ClientError::Io)?;
                match WireFaultPlan::corrupt(other, &frame) {
                    None => {
                        // Pre-send disconnect.
                        let _ = stream.shutdown(Shutdown::Both);
                        Err(ClientError::Faulted(other))
                    }
                    Some(bytes) => {
                        let sent = w.write_all(&bytes).and_then(|()| w.flush());
                        match other {
                            WireFault::Torn { .. } => {
                                // Hang up mid-frame regardless of how
                                // the partial write went.
                                let _ = stream.shutdown(Shutdown::Write);
                                sent.map_err(ClientError::Io)?;
                                Err(ClientError::Faulted(other))
                            }
                            // Garbage header: deliver it fully and let
                            // the server answer with a typed error.
                            _ => sent.map_err(ClientError::Io),
                        }
                    }
                }
            }
        }
    }

    /// One admin-plane request on a fresh connection, chaos-free (the
    /// telemetry plane is the observer — scrapes are never faulted).
    ///
    /// # Errors
    ///
    /// Any transport/decode failure.
    pub fn admin_once(&self, req: &AdminRequest) -> Result<Response, ClientError> {
        let stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.read_timeout))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut w = &stream;
        write_frame(&mut w, req.encode().as_bytes()).map_err(ClientError::Io)?;
        let mut reader = stream;
        let payload = read_frame(&mut reader, |_| true).map_err(ClientError::Frame)?;
        Response::decode(&payload).map_err(ClientError::Decode)
    }

    /// Sends with retry: failed transports, chaos-faulted sends,
    /// transient error responses, and admission refusals all back off
    /// and retry until a definitive response or the attempt budget
    /// runs out. A parse error is *definitive* — the server decoded
    /// the request fine and the program doesn't parse — so it is
    /// returned, not retried.
    ///
    /// Returns the definitive response and the number of attempts
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when every attempt failed.
    pub fn request_with_retry(&self, req: &Request) -> Result<(Response, u32), ClientError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match self.request_once(req, attempt) {
                Ok(resp @ Response::Ok { .. }) => return Ok((resp, attempt + 1)),
                Ok(
                    resp @ Response::Err {
                        code: ErrorCode::Parse,
                        ..
                    },
                ) => return Ok((resp, attempt + 1)),
                Ok(Response::Refused { detail, .. }) => {
                    last = format!("refused: {}", detail);
                }
                Ok(Response::Err { code, message, .. }) => {
                    last = format!("{}: {}", code.name(), message);
                }
                // A verify request can never legitimately be answered
                // with an admin frame; treat it as a transient wire
                // mixup and retry.
                Ok(Response::Admin { kind, .. }) => {
                    last = format!("unexpected admin response ({})", kind);
                }
                Err(e) => last = e.to_string(),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(self.retry.backoff(req.id, attempt));
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_jittered_and_deterministic() {
        let retry = RetryPolicy::default();
        let a = retry.backoff(7, 0);
        let b = retry.backoff(7, 0);
        assert_eq!(a, b, "same (request, attempt) → same pause");
        assert!(a.as_millis() >= 10 && a.as_millis() <= 20, "{:?}", a);
        let later = retry.backoff(7, 4);
        assert!(later >= a, "backoff grows with the attempt");
        assert!(
            later.as_millis() <= u128::from(retry.max_backoff_ms),
            "{:?}",
            later
        );
        assert_ne!(
            retry.backoff(7, 1),
            retry.backoff(8, 1),
            "different requests de-synchronize"
        );
    }

    #[test]
    fn affectedness_is_known_in_advance() {
        let client =
            Client::new("127.0.0.1:1".parse().unwrap()).with_faults(WireFaultPlan::full(11));
        let affected: Vec<u64> = (0..200).filter(|id| client.is_affected(*id)).collect();
        assert!(
            !affected.is_empty() && affected.len() < 200,
            "moderate rates affect some requests, spare others ({})",
            affected.len()
        );
        let again: Vec<u64> = (0..200).filter(|id| client.is_affected(*id)).collect();
        assert_eq!(affected, again);
    }
}
