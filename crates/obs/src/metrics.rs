//! Counters and log₂ histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// A fixed-bucket log₂ histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    fn bucket_of(value: u64) -> usize {
        let significant = (64 - value.leading_zeros()) as usize;
        significant.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample. All arithmetic saturates: a long-lived
    /// daemon's histogram can pin at `u64::MAX` but never panic.
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let b = &mut self.buckets[Histogram::bucket_of(value)];
        *b = b.saturating_add(1);
    }

    /// Folds another histogram into this one (saturating, never
    /// panicking — see [`Histogram::record`]).
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) from the log₂ buckets.
    ///
    /// The estimate is the **bucket upper bound** of the bucket holding
    /// the sample of rank `⌈q·count⌉`, clamped to `[min, max]`:
    /// bucket 0 reports 0, bucket `i ≥ 1` reports `2^i − 1`, and the
    /// overflow bucket reports `max`. The estimate therefore never errs
    /// low and overshoots by strictly less than one bucket's width
    /// (< 2×); it is exact for zeros, for the overflow bucket, and for
    /// any single-valued histogram (the `[min, max]` clamp collapses
    /// it). Because the rank, the bucket scan, and the clamp are all
    /// monotone in `q`, `quantile(p) ≤ quantile(q)` whenever `p ≤ q`.
    /// Returns 0 when the histogram is empty; a NaN `q` reads as 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen: u64 = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i == HISTOGRAM_BUCKETS - 1 {
                    self.max
                } else {
                    (1u64 << i) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A registry of named counters and histograms.
///
/// Per-method registries are filled worker-side and merged on the
/// deterministic program-order path, mirroring the event stream.
/// Counter names are dotted paths owned by the emitting subsystem
/// (e.g. `solver.queries`; `stability.skips` — invalidation scans the
/// baseline backend elided because the static stability analyzer
/// proved the governing spec (framed-)stable; and the CDCL core's
/// search counters `solver.conflict`, `solver.restart`, and
/// `theory.propagate` — one bump per learnt conflict, per Luby
/// restart, and per theory-layer propagation respectively).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the named counter (saturating — a long-lived
    /// daemon pins at `u64::MAX` rather than panicking on overflow).
    pub fn add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge; both saturating).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// A human-readable dump, one metric per line, in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter   {:<28} {}", k, v);
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {:<28} count={} sum={} min={} max={} mean={:.1}",
                k,
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 20);
        assert_eq!(h.buckets[0], 1, "zeros");
        assert_eq!(h.buckets[1], 1, "1");
        assert_eq!(h.buckets[2], 2, "2..4");
        assert_eq!(h.buckets[3], 2, "4..8");
        assert_eq!(h.buckets[4], 1, "8..16");
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1, "overflow bucket");
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_single_bucket_is_exact() {
        // All samples equal: the [min, max] clamp makes every quantile
        // exactly the sample value even mid-bucket.
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(5);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 5, "q={}", q);
        }
    }

    #[test]
    fn quantile_all_zeros_reports_zero() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.buckets[0], 100);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.95), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 7, 12, 100, 1000, 65_000, 1 << 30, u64::MAX] {
            h.record(v);
        }
        let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "p ≤ q must give quantile(p) ≤ quantile(q)");
        }
        assert!(qs.iter().all(|v| *v >= h.min && *v <= h.max));
        assert_eq!(h.quantile(1.0), h.max, "overflow bucket reports max");
        // The bucket-upper-bound estimate never errs low: p50 of this
        // set (true value 12) reports its bucket's upper bound 15.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0), "NaN reads as 0");
    }

    #[test]
    fn merges_saturate_instead_of_panicking() {
        let mut a = MetricsRegistry::new();
        a.add("c", u64::MAX - 1);
        let mut b = MetricsRegistry::new();
        b.add("c", u64::MAX);
        a.merge(&b);
        assert_eq!(a.counter("c"), u64::MAX);
        a.add("c", 7);
        assert_eq!(a.counter("c"), u64::MAX);

        let mut h = Histogram {
            count: u64::MAX,
            sum: u64::MAX,
            min: 0,
            max: 1,
            buckets: [u64::MAX; HISTOGRAM_BUCKETS],
        };
        let other = h.clone();
        h.merge(&other);
        h.record(1);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.buckets[1], u64::MAX);
    }

    #[test]
    fn registry_merge_is_additive() {
        let mut a = MetricsRegistry::new();
        a.add("queries", 2);
        a.record("fuel", 5);
        let mut b = MetricsRegistry::new();
        b.add("queries", 3);
        b.add("states", 1);
        b.record("fuel", 7);
        a.merge(&b);
        assert_eq!(a.counter("queries"), 5);
        assert_eq!(a.counter("states"), 1);
        let h = a.histogram("fuel").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        let text = a.render_text();
        assert!(text.contains("queries"));
        assert!(text.contains("histogram"));
    }
}
