//! Counters and log₂ histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// A fixed-bucket log₂ histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    fn bucket_of(value: u64) -> usize {
        let significant = (64 - value.leading_zeros()) as usize;
        significant.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registry of named counters and histograms.
///
/// Per-method registries are filled worker-side and merged on the
/// deterministic program-order path, mirroring the event stream.
/// Counter names are dotted paths owned by the emitting subsystem
/// (e.g. `solver.queries`; `stability.skips` — invalidation scans the
/// baseline backend elided because the static stability analyzer
/// proved the governing spec (framed-)stable; and the CDCL core's
/// search counters `solver.conflict`, `solver.restart`, and
/// `theory.propagate` — one bump per learnt conflict, per Luby
/// restart, and per theory-layer propagation respectively).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// A human-readable dump, one metric per line, in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter   {:<28} {}", k, v);
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {:<28} count={} sum={} min={} max={} mean={:.1}",
                k,
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 20);
        assert_eq!(h.buckets[0], 1, "zeros");
        assert_eq!(h.buckets[1], 1, "1");
        assert_eq!(h.buckets[2], 2, "2..4");
        assert_eq!(h.buckets[3], 2, "4..8");
        assert_eq!(h.buckets[4], 1, "8..16");
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1, "overflow bucket");
    }

    #[test]
    fn registry_merge_is_additive() {
        let mut a = MetricsRegistry::new();
        a.add("queries", 2);
        a.record("fuel", 5);
        let mut b = MetricsRegistry::new();
        b.add("queries", 3);
        b.add("states", 1);
        b.record("fuel", 7);
        a.merge(&b);
        assert_eq!(a.counter("queries"), 5);
        assert_eq!(a.counter("states"), 1);
        let h = a.histogram("fuel").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        let text = a.render_text();
        assert!(text.contains("queries"));
        assert!(text.contains("histogram"));
    }
}
