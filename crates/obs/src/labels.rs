//! Labeled metrics: `{metric name} × {label set} → counter/histogram`.
//!
//! [`MetricsRegistry`] keys metrics by name alone, which is right for
//! the per-method trace path (attribution lives in the event stream).
//! A multi-tenant daemon instead needs *dimensional* metrics — the
//! same `daenerysd.latency_us` histogram split by `tenant`, the same
//! `daenerysd.phase_nanos` split by `phase` — so the telemetry plane
//! layers [`LabeledRegistry`] on top: each metric name owns a map from
//! [`Labels`] (a sorted key→value set) to its counter or
//! [`Histogram`]. Steady-state stamping is two `BTreeMap` lookups and
//! allocates only the first time a (name, labels) pair is seen.
//!
//! Workers never contend on one registry mutex: [`SharedRegistry`]
//! shards by thread, each worker stamps its own shard, and scrapes
//! merge all shards on the (rare) read path. All arithmetic saturates
//! — a long-lived daemon pins at `u64::MAX` rather than panicking.
//!
//! ## Label schema
//!
//! Label keys are lowercase identifiers owned by the emitting
//! subsystem. The daemon stamps:
//!
//! * `tenant` — the admission-layer tenant name (`_server` for
//!   daemon-internal work with no tenant attribution)
//! * `phase` — a span-name prefix (`parse`, `wf`, `translate`, `exec`,
//!   `pre`, `body`, `post`, `branch`, `loop`)
//! * `backend` — the verification backend serving the request

use crate::metrics::{Histogram, MetricsRegistry};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A sorted, immutable-once-built label set (`key → value`).
///
/// Ordering is lexicographic over the sorted pairs, so label sets are
/// usable as `BTreeMap` keys and render deterministically.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Labels(BTreeMap<String, String>);

impl Labels {
    /// The empty label set (used for run-global metrics).
    pub fn none() -> Labels {
        Labels::default()
    }

    /// Builder: returns a copy with `key = value` set (replacing any
    /// previous value for `key`).
    #[must_use]
    pub fn with(mut self, key: &str, value: &str) -> Labels {
        self.0.insert(key.to_string(), value.to_string());
        self
    }

    /// The value of one label, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// True when no labels are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// All `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Renders as a JSON object (`{"tenant":"acme"}`), keys sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::escape_into(k, &mut out);
            out.push(':');
            crate::json::escape_into(v, &mut out);
        }
        out.push('}');
        out
    }
}

/// A registry of `(name, labels) → counter/histogram` cells.
///
/// See the [module docs](self) for the layering over
/// [`MetricsRegistry`] and the label schema.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LabeledRegistry {
    counters: BTreeMap<String, BTreeMap<Labels, u64>>,
    histograms: BTreeMap<String, BTreeMap<Labels, Histogram>>,
}

impl LabeledRegistry {
    /// A fresh, empty registry.
    pub fn new() -> LabeledRegistry {
        LabeledRegistry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the `(name, labels)` counter (saturating).
    pub fn add(&mut self, name: &str, labels: &Labels, delta: u64) {
        let cells = match self.counters.get_mut(name) {
            Some(cells) => cells,
            None => self.counters.entry(name.to_string()).or_default(),
        };
        match cells.get_mut(labels) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                cells.insert(labels.clone(), delta);
            }
        }
    }

    /// Records one sample into the `(name, labels)` histogram.
    pub fn record(&mut self, name: &str, labels: &Labels, value: u64) {
        let cells = match self.histograms.get_mut(name) {
            Some(cells) => cells,
            None => self.histograms.entry(name.to_string()).or_default(),
        };
        match cells.get_mut(labels) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                cells.insert(labels.clone(), h);
            }
        }
    }

    /// Current value of one counter cell (0 when never touched).
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .get(name)
            .and_then(|cells| cells.get(labels))
            .copied()
            .unwrap_or(0)
    }

    /// One histogram cell, if any sample was recorded.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .and_then(|cells| cells.get(labels))
    }

    /// All counter cells, `(name, labels, value)`, in (name, labels)
    /// order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &Labels, u64)> {
        self.counters
            .iter()
            .flat_map(|(name, cells)| cells.iter().map(move |(l, v)| (name.as_str(), l, *v)))
    }

    /// All histogram cells, `(name, labels, histogram)`, in
    /// (name, labels) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Labels, &Histogram)> {
        self.histograms
            .iter()
            .flat_map(|(name, cells)| cells.iter().map(move |(l, h)| (name.as_str(), l, h)))
    }

    /// Folds another labeled registry into this one (cell-wise
    /// saturating add/merge).
    pub fn merge(&mut self, other: &LabeledRegistry) {
        for (name, cells) in &other.counters {
            for (labels, v) in cells {
                self.add(name, labels, *v);
            }
        }
        for (name, cells) in &other.histograms {
            let into = match self.histograms.get_mut(name.as_str()) {
                Some(into) => into,
                None => self.histograms.entry(name.clone()).or_default(),
            };
            for (labels, h) in cells {
                match into.get_mut(labels) {
                    Some(mine) => mine.merge(h),
                    None => {
                        into.insert(labels.clone(), h.clone());
                    }
                }
            }
        }
    }

    /// Folds an unlabeled [`MetricsRegistry`] in, stamping every
    /// metric with `labels` — how the trace layer's run-global
    /// registry joins a labeled scrape.
    pub fn merge_plain(&mut self, plain: &MetricsRegistry, labels: &Labels) {
        for (name, v) in plain.counters() {
            self.add(name, labels, v);
        }
        for (name, h) in plain.histograms() {
            let into = match self.histograms.get_mut(name) {
                Some(into) => into,
                None => self.histograms.entry(name.to_string()).or_default(),
            };
            match into.get_mut(labels) {
                Some(mine) => mine.merge(h),
                None => {
                    into.insert(labels.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the whole registry as one compact JSON object:
    ///
    /// ```json
    /// {"counters":[{"name":"...","labels":{...},"value":N},...],
    ///  "histograms":[{"name":"...","labels":{...},"count":N,"sum":N,
    ///                 "min":N,"max":N,"mean":F,
    ///                 "p50":N,"p95":N,"p99":N},...]}
    /// ```
    ///
    /// Cells appear in deterministic (name, labels) order; the
    /// quantiles carry the bucket-upper-bound error documented on
    /// [`Histogram::quantile`]. Values at or above 2⁵³ lose precision
    /// in readers that parse numbers as `f64` (ours does) — accepted,
    /// since saturated cells are already a signal, not a measurement.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, (name, labels, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"value\":{}}}",
                crate::json::escape(name),
                labels.to_json(),
                v
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, (name, labels, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\
                 \"min\":{},\"max\":{},\"mean\":{:.1},\
                 \"p50\":{},\"p95\":{},\"p99\":{}}}",
                crate::json::escape(name),
                labels.to_json(),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
        out.push_str("]}");
        out
    }
}

/// A lock-cheap shared handle over a [`LabeledRegistry`].
///
/// Writers stamp the shard owned by their thread (shard = hash of
/// `ThreadId` mod shard count), so concurrent workers contend only
/// when two threads hash to the same shard — never on one global
/// mutex. Reads ([`SharedRegistry::snapshot`]) merge every shard;
/// scrapes are rare, so the read path pays the full cost.
#[derive(Debug)]
pub struct SharedRegistry {
    shards: Vec<Mutex<LabeledRegistry>>,
}

impl Default for SharedRegistry {
    fn default() -> SharedRegistry {
        SharedRegistry::new(8)
    }
}

impl SharedRegistry {
    /// A registry with `shards` independent write shards (min 1).
    pub fn new(shards: usize) -> SharedRegistry {
        SharedRegistry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(LabeledRegistry::new()))
                .collect(),
        }
    }

    fn shard(&self) -> &Mutex<LabeledRegistry> {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let i = (hasher.finish() as usize) % self.shards.len();
        &self.shards[i]
    }

    fn with_shard<R>(&self, f: impl FnOnce(&mut LabeledRegistry) -> R) -> R {
        let mut guard = self
            .shard()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Adds `delta` to the `(name, labels)` counter in this thread's
    /// shard.
    pub fn add(&self, name: &str, labels: &Labels, delta: u64) {
        self.with_shard(|r| r.add(name, labels, delta));
    }

    /// Records one histogram sample into this thread's shard.
    pub fn record(&self, name: &str, labels: &Labels, value: u64) {
        self.with_shard(|r| r.record(name, labels, value));
    }

    /// Merges a whole registry into this thread's shard (how a worker
    /// flushes per-request metrics in one lock acquisition).
    pub fn merge(&self, other: &LabeledRegistry) {
        self.with_shard(|r| r.merge(other));
    }

    /// Merge-on-read: folds every shard into one point-in-time
    /// registry. Shards are locked one at a time, so a snapshot
    /// overlapping concurrent writes is per-shard (not globally)
    /// atomic — fine for monitoring, by design.
    pub fn snapshot(&self) -> LabeledRegistry {
        let mut out = LabeledRegistry::new();
        for shard in &self.shards {
            let guard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            out.merge(&guard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(name: &str) -> Labels {
        Labels::none().with("tenant", name)
    }

    #[test]
    fn cells_are_independent_per_label_set() {
        let mut r = LabeledRegistry::new();
        r.add("req", &t("a"), 2);
        r.add("req", &t("b"), 3);
        r.add("req", &t("a"), 1);
        r.record("lat", &t("a"), 10);
        r.record("lat", &t("a"), 20);
        assert_eq!(r.counter("req", &t("a")), 3);
        assert_eq!(r.counter("req", &t("b")), 3);
        assert_eq!(r.counter("req", &t("c")), 0);
        assert_eq!(r.histogram("lat", &t("a")).unwrap().count, 2);
        assert!(r.histogram("lat", &t("b")).is_none());
    }

    #[test]
    fn merge_is_cellwise_and_saturating() {
        let mut a = LabeledRegistry::new();
        a.add("req", &t("a"), u64::MAX - 1);
        let mut b = LabeledRegistry::new();
        b.add("req", &t("a"), 5);
        b.add("req", &t("b"), 1);
        b.record("lat", &t("b"), 7);
        a.merge(&b);
        assert_eq!(a.counter("req", &t("a")), u64::MAX, "saturates");
        assert_eq!(a.counter("req", &t("b")), 1);
        assert_eq!(a.histogram("lat", &t("b")).unwrap().sum, 7);
    }

    #[test]
    fn merge_plain_stamps_labels() {
        let mut plain = MetricsRegistry::new();
        plain.add("solver.conflict", 4);
        plain.record("fuel", 9);
        let mut r = LabeledRegistry::new();
        r.merge_plain(&plain, &t("a"));
        assert_eq!(r.counter("solver.conflict", &t("a")), 4);
        assert_eq!(r.histogram("fuel", &t("a")).unwrap().count, 1);
    }

    #[test]
    fn to_json_parses_and_carries_quantiles() {
        let mut r = LabeledRegistry::new();
        r.add("req", &t("a"), 3);
        for v in [1, 2, 3, 100] {
            r.record("lat", &Labels::none().with("tenant", "a\"quoted"), v);
        }
        let json = r.to_json();
        let v = crate::json::parse(&json).expect("scrape is valid JSON");
        let obj = v.as_obj().unwrap();
        let counters = obj["counters"].as_arr().unwrap();
        assert_eq!(counters.len(), 1);
        let c0 = counters[0].as_obj().unwrap();
        assert_eq!(c0["name"].as_str(), Some("req"));
        assert_eq!(c0["value"].as_num(), Some(3.0));
        let hists = obj["histograms"].as_arr().unwrap();
        let h0 = hists[0].as_obj().unwrap();
        assert_eq!(
            h0["labels"].as_obj().unwrap()["tenant"].as_str(),
            Some("a\"quoted"),
            "labels escape correctly"
        );
        let (p50, p95, p99) = (
            h0["p50"].as_num().unwrap(),
            h0["p95"].as_num().unwrap(),
            h0["p99"].as_num().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "p50 ≤ p95 ≤ p99");
        // Empty registry still renders a parseable shell.
        crate::json::parse(&LabeledRegistry::new().to_json()).unwrap();
    }

    #[test]
    fn shared_registry_merges_across_threads() {
        let shared = Arc::new(SharedRegistry::new(4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.add("req", &t("a"), 1);
                    s.record("lat", &t("a"), 5);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.counter("req", &t("a")), 800);
        assert_eq!(snap.histogram("lat", &t("a")).unwrap().count, 800);
    }
}
