//! The trace handle and per-worker collectors.

use crate::event::{Event, EventKind, Value};
use crate::metrics::MetricsRegistry;
use crate::sink::Sink;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where timestamps come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClockKind {
    /// Wall-clock nanoseconds from a monotonic anchor — production.
    #[default]
    Monotonic,
    /// A per-collector tick counter — fully deterministic, for tests
    /// and trace-equality assertions.
    Logical,
}

/// A collector-local clock instance.
#[derive(Debug)]
enum Clock {
    Monotonic(Instant),
    Logical(u64),
}

impl Clock {
    fn new(kind: ClockKind) -> Clock {
        match kind {
            ClockKind::Monotonic => Clock::Monotonic(Instant::now()),
            ClockKind::Logical => Clock::Logical(0),
        }
    }

    fn now(&mut self) -> u64 {
        match self {
            Clock::Monotonic(anchor) => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Logical(tick) => {
                *tick += 1;
                *tick
            }
        }
    }
}

/// An open span returned by [`TraceCollector::span_start`]; pass it
/// back to [`TraceCollector::span_end`] to close the span.
#[derive(Debug)]
#[must_use = "close the span with TraceCollector::span_end"]
pub struct SpanToken {
    name_index: usize,
    started: u64,
    live: bool,
}

impl SpanToken {
    /// The token handed out by a disabled collector — closing it is a
    /// no-op.
    fn dead() -> SpanToken {
        SpanToken {
            name_index: 0,
            started: 0,
            live: false,
        }
    }
}

/// A per-worker (per-method) event buffer.
///
/// Collectors are thread-local and lock-free: workers record into
/// their own collector and the fan-out's merge path hands the buffers
/// to [`TraceHandle::emit`] in program order. A collector created from
/// a disabled handle records nothing, and every recording method
/// early-returns behind one `enabled` branch.
#[derive(Debug)]
pub struct TraceCollector {
    enabled: bool,
    clock: Clock,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

impl TraceCollector {
    /// A collector that records nothing.
    pub fn disabled() -> TraceCollector {
        TraceCollector {
            enabled: false,
            clock: Clock::Logical(0),
            events: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    fn enabled_with(kind: ClockKind) -> TraceCollector {
        TraceCollector {
            enabled: true,
            clock: Clock::new(kind),
            events: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// True when this collector records events — check before building
    /// expensive payloads.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, kind: EventKind, name: String, fields: Vec<(String, Value)>) {
        let ts = self.clock.now();
        // Local sequence numbers are re-stamped globally at emit time.
        let seq = self.events.len() as u64;
        self.events.push(Event {
            seq,
            ts,
            kind,
            name,
            fields,
        });
    }

    /// Opens a span.
    pub fn span_start(&mut self, name: &str) -> SpanToken {
        if !self.enabled {
            return SpanToken::dead();
        }
        self.push(EventKind::SpanStart, name.to_string(), Vec::new());
        SpanToken {
            name_index: self.events.len() - 1,
            started: self.events.last().expect("just pushed").ts,
            live: true,
        }
    }

    /// Closes a span, recording its duration in clock units.
    pub fn span_end(&mut self, token: SpanToken) {
        if !token.live {
            return;
        }
        let name = self.events[token.name_index].name.clone();
        let ts = self.clock.now();
        let duration = ts.saturating_sub(token.started);
        self.push(
            EventKind::SpanEnd,
            name,
            vec![("duration_nanos".to_string(), Value::UInt(duration))],
        );
    }

    /// Records a point event with a structured payload.
    pub fn event(&mut self, name: &str, fields: Vec<(String, Value)>) {
        if !self.enabled {
            return;
        }
        self.push(EventKind::Point, name.to_string(), fields);
    }

    /// Records a gauge sample (emitted as an event *and* folded into
    /// the metrics registry).
    pub fn gauge(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.push(
            EventKind::Gauge,
            name.to_string(),
            vec![("value".to_string(), Value::UInt(value))],
        );
        self.metrics.record(name, value);
    }

    /// Adds to a named counter (metrics only, no event).
    pub fn counter(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.add(name, delta);
    }

    /// Records a histogram sample (metrics only, no event).
    pub fn histogram(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.record(name, value);
    }

    /// Drains the collector into its buffered events and metrics.
    pub fn take(&mut self) -> (Vec<Event>, MetricsRegistry) {
        (
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.metrics),
        )
    }
}

/// The shared state behind an enabled [`TraceHandle`].
struct Shared {
    sink: Arc<dyn Sink>,
    clock: ClockKind,
    next_seq: AtomicU64,
    metrics: Mutex<MetricsRegistry>,
}

/// A cheap, cloneable handle to the trace pipeline, threaded through
/// `VerifierConfig`.
///
/// The default handle is disabled: collectors it hands out record
/// nothing and `emit` is a no-op, so instrumented code pays one branch
/// per trace point. An enabled handle stamps globally unique, dense
/// sequence numbers at emit time — callers must emit buffers from a
/// single thread in program order to keep traces deterministic (the
/// verifier's merge path does).
///
/// [`TraceHandle::with_context`] derives a handle that additionally
/// stamps fixed attribution fields (tenant/session/request ids) onto
/// every event it emits — the daemon's per-request trace plumbing.
/// Derived handles share the parent's sink, sequence counter, and
/// metrics registry, so interleaved requests still produce one densely
/// numbered stream.
#[derive(Clone, Default)]
pub struct TraceHandle {
    shared: Option<Arc<Shared>>,
    /// Fields appended to every emitted event (empty for the root
    /// handle). Shared so cloning a handle is still two pointer
    /// copies.
    context: Arc<Vec<(String, Value)>>,
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.shared {
            None => f.write_str("TraceHandle(disabled)"),
            Some(s) => write!(
                f,
                "TraceHandle(enabled, clock: {:?}, context: {} field(s))",
                s.clock,
                self.context.len()
            ),
        }
    }
}

/// Handles compare by identity of the underlying pipeline plus
/// structural equality of the stamped context: two handles are equal
/// when they feed the same sink (or are both disabled) and attribute
/// events identically. This keeps `VerifierConfig`'s structural
/// equality meaningful without requiring sinks to be comparable.
impl PartialEq for TraceHandle {
    fn eq(&self, other: &TraceHandle) -> bool {
        let same_pipe = match (&self.shared, &other.shared) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        same_pipe && self.context == other.context
    }
}

impl Eq for TraceHandle {}

impl TraceHandle {
    /// The no-op handle (the `VerifierConfig` default).
    pub fn disabled() -> TraceHandle {
        TraceHandle::default()
    }

    /// A handle feeding `sink`, timestamping with `clock`.
    pub fn new(sink: Arc<dyn Sink>, clock: ClockKind) -> TraceHandle {
        TraceHandle {
            shared: Some(Arc::new(Shared {
                sink,
                clock,
                next_seq: AtomicU64::new(0),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
            context: Arc::new(Vec::new()),
        }
    }

    /// A derived handle that stamps `fields` (after any fields this
    /// handle already stamps) onto every event it emits. Deriving from
    /// a disabled handle stays disabled and free.
    pub fn with_context(&self, fields: Vec<(String, Value)>) -> TraceHandle {
        if self.shared.is_none() || fields.is_empty() {
            return TraceHandle {
                shared: self.shared.clone(),
                context: self.context.clone(),
            };
        }
        let mut context = (*self.context).clone();
        context.extend(fields);
        TraceHandle {
            shared: self.shared.clone(),
            context: Arc::new(context),
        }
    }

    /// The fields this handle stamps onto every emitted event.
    pub fn context(&self) -> &[(String, Value)] {
        &self.context
    }

    /// True when events actually go somewhere.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A fresh collector for one worker/method.
    pub fn collector(&self) -> TraceCollector {
        match &self.shared {
            None => TraceCollector::disabled(),
            Some(s) => TraceCollector::enabled_with(s.clock),
        }
    }

    /// Stamps global sequence numbers (and this handle's context
    /// fields) onto `events` and forwards them to the sink. Call from
    /// the deterministic merge path only.
    pub fn emit(&self, mut events: Vec<Event>) {
        let Some(s) = &self.shared else { return };
        if events.is_empty() {
            return;
        }
        let base = s.next_seq.fetch_add(events.len() as u64, Ordering::Relaxed);
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = base + i as u64;
            e.fields.extend(self.context.iter().cloned());
        }
        s.sink.write(&events);
    }

    /// Folds a per-method registry into the run-wide one.
    pub fn merge_metrics(&self, m: &MetricsRegistry) {
        if let Some(s) = &self.shared {
            s.metrics.lock().expect("metrics poisoned").merge(m);
        }
    }

    /// A snapshot of the run-wide metrics.
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.shared {
            None => MetricsRegistry::new(),
            Some(s) => s.metrics.lock().expect("metrics poisoned").clone(),
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(s) = &self.shared {
            s.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_collector_records_nothing() {
        let handle = TraceHandle::disabled();
        assert!(!handle.is_enabled());
        let mut c = handle.collector();
        assert!(!c.is_enabled());
        let t = c.span_start("phase");
        c.event("x", vec![]);
        c.gauge("g", 1);
        c.counter("n", 1);
        c.span_end(t);
        let (events, metrics) = c.take();
        assert!(events.is_empty());
        assert!(metrics.is_empty());
        handle.emit(Vec::new());
        assert!(handle.metrics().is_empty());
    }

    #[test]
    fn logical_clock_traces_are_reproducible() {
        let run = || {
            let sink = Arc::new(MemorySink::new(64));
            let handle = TraceHandle::new(sink.clone(), ClockKind::Logical);
            let mut c = handle.collector();
            let t = c.span_start("exec:m");
            c.event("solver.query", vec![("fuel".to_string(), Value::UInt(3))]);
            c.gauge("budget.states", 2);
            c.span_end(t);
            let (events, metrics) = c.take();
            handle.emit(events);
            handle.merge_metrics(&metrics);
            (sink.events(), handle.metrics())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical-clock traces must be byte-identical");
        // Dense, zero-based sequence numbers; span durations recorded.
        let events = &a.0;
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..events.len() as u64).collect::<Vec<_>>()
        );
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .unwrap();
        assert!(end.field_u64("duration_nanos").unwrap() > 0);
        assert_eq!(
            a.1.counter("budget.states"),
            0,
            "gauge is a histogram, not a counter"
        );
        assert!(a.1.histogram("budget.states").is_some());
    }

    #[test]
    fn emit_stamps_sequence_across_batches() {
        let sink = Arc::new(MemorySink::new(64));
        let handle = TraceHandle::new(sink.clone(), ClockKind::Logical);
        for _ in 0..2 {
            let mut c = handle.collector();
            c.event("a", vec![]);
            c.event("b", vec![]);
            let (events, _) = c.take();
            handle.emit(events);
        }
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3]);
    }

    #[test]
    fn handles_compare_by_identity() {
        let sink = Arc::new(MemorySink::new(4));
        let h1 = TraceHandle::new(sink.clone(), ClockKind::Logical);
        let h2 = h1.clone();
        let h3 = TraceHandle::new(sink, ClockKind::Logical);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        assert_eq!(TraceHandle::disabled(), TraceHandle::default());
    }

    #[test]
    fn context_is_stamped_on_every_event() {
        let sink = Arc::new(MemorySink::new(16));
        let root = TraceHandle::new(sink.clone(), ClockKind::Logical);
        let request = root.with_context(vec![
            ("tenant".to_string(), Value::Str("acme".to_string())),
            ("request".to_string(), Value::UInt(7)),
        ]);
        assert_ne!(root, request, "context participates in handle equality");

        // Interleaved emits from the root and a derived handle share
        // one dense sequence stream; only the derived handle's events
        // carry the attribution fields.
        let mut c = root.collector();
        c.event("plain", vec![]);
        root.emit(c.take().0);
        let mut c = request.collector();
        c.event("attributed", vec![("own".to_string(), Value::UInt(1))]);
        request.emit(c.take().0);

        let events = sink.events();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert!(events[0].fields.is_empty());
        assert_eq!(events[1].field_u64("own"), Some(1));
        assert_eq!(events[1].field_u64("request"), Some(7));
        assert!(events[1]
            .fields
            .iter()
            .any(|(k, v)| k == "tenant" && *v == Value::Str("acme".to_string())));

        // Nested derivation appends, never replaces.
        let session = request.with_context(vec![("session".to_string(), Value::UInt(3))]);
        assert_eq!(session.context().len(), 3);

        // Deriving from a disabled handle stays disabled.
        let dead = TraceHandle::disabled().with_context(vec![("k".to_string(), Value::UInt(0))]);
        assert!(!dead.is_enabled());
        assert!(dead.context().is_empty());
    }
}
