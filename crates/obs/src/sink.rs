//! Pluggable event sinks: null, in-memory ring buffer, JSONL, text.

use crate::event::Event;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Where merged trace events go.
///
/// Contract: [`TraceHandle::emit`](crate::TraceHandle::emit) calls
/// `write` from the single-threaded merge path with events already in
/// program order and with dense, monotonically increasing sequence
/// numbers; a sink must not reorder, dedupe, or renumber them. Sinks
/// are `Send + Sync` because the handle holding them is cloned across
/// worker threads, but writes are serialized by the caller's merge
/// discipline (interior mutability is still required for `&self`
/// writes).
pub trait Sink: Send + Sync {
    /// Consumes a batch of merged events.
    fn write(&self, events: &[Event]);
    /// Flushes buffered output (a no-op for most sinks).
    fn flush(&self) {}
}

/// Discards everything — the default production sink when tracing is
/// off (the handle never even constructs events in that case).
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl Sink for NullSink {
    fn write(&self, _events: &[Event]) {}
}

/// An in-memory ring buffer of the most recent events — the test and
/// `--profile` sink.
#[derive(Debug)]
pub struct MemorySink {
    capacity: usize,
    inner: Mutex<VecDeque<Event>>,
}

impl MemorySink {
    /// A ring buffer holding at most `capacity` events (older events
    /// are dropped first).
    pub fn new(capacity: usize) -> MemorySink {
        MemorySink {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("memory sink poisoned").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn write(&self, events: &[Event]) {
        let mut buf = self.inner.lock().expect("memory sink poisoned");
        for e in events {
            if buf.len() == self.capacity {
                buf.pop_front();
            }
            buf.push_back(e.clone());
        }
    }
}

/// Writes one JSON object per line (the `--trace-out` sink).
pub struct JsonlSink {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            inner: Mutex::new(writer),
        }
    }

    /// Creates (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink::new(Box::new(BufWriter::new(File::create(
            path,
        )?))))
    }
}

impl Sink for JsonlSink {
    fn write(&self, events: &[Event]) {
        let mut w = self.inner.lock().expect("jsonl sink poisoned");
        for e in events {
            // Trace output is best-effort: an I/O error must never
            // fail verification.
            let _ = writeln!(w, "{}", e.to_jsonl());
        }
    }

    fn flush(&self) {
        let _ = self.inner.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Writes one human-readable line per event.
pub struct TextSink {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for TextSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TextSink")
    }
}

impl TextSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> TextSink {
        TextSink {
            inner: Mutex::new(writer),
        }
    }
}

impl Sink for TextSink {
    fn write(&self, events: &[Event]) {
        let mut w = self.inner.lock().expect("text sink poisoned");
        for e in events {
            let _ = writeln!(w, "{}", e.to_text());
        }
    }

    fn flush(&self) {
        let _ = self.inner.lock().expect("text sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Value};

    fn ev(seq: u64, name: &str) -> Event {
        Event {
            seq,
            ts: seq * 10,
            kind: EventKind::Point,
            name: name.to_string(),
            fields: vec![("n".to_string(), Value::UInt(seq))],
        }
    }

    #[test]
    fn memory_sink_is_a_ring() {
        let sink = MemorySink::new(2);
        sink.write(&[ev(0, "a"), ev(1, "b"), ev(2, "c")]);
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.write(&[ev(0, "x"), ev(1, "y")]);
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::validate_event_line(line).unwrap();
        }
    }
}
