//! Structured trace events and their JSONL wire format.

use std::fmt;

/// A field value attached to an [`Event`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// An unsigned counter/gauge value.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A boolean flag.
    Bool(bool),
    /// A string label.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::UInt(v) => write!(f, "{}", v),
            Value::Int(v) => write!(f, "{}", v),
            Value::Bool(v) => write!(f, "{}", v),
            Value::Str(v) => write!(f, "{}", v),
        }
    }
}

/// The kind of an [`Event`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A phase/span has begun (paired with a later `SpanEnd` of the
    /// same name).
    SpanStart,
    /// A phase/span has finished; carries a `duration_nanos` field.
    SpanEnd,
    /// A point-in-time event (e.g. one solver query).
    Point,
    /// A sampled value (e.g. budget consumption); carries a `value`
    /// field.
    Gauge,
}

impl EventKind {
    /// The wire name used in the JSONL `kind` field.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
            EventKind::Gauge => "gauge",
        }
    }

    /// Every wire name, for schema validation.
    pub const WIRE_NAMES: [&'static str; 4] = ["span_start", "span_end", "point", "gauge"];
}

/// One structured trace event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global sequence number, assigned on the deterministic merge
    /// path (program order, dense from 0 per [`crate::TraceHandle`]).
    pub seq: u64,
    /// Timestamp in clock units: nanoseconds under the monotonic
    /// clock, a per-collector tick count under the logical clock.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span or event name (e.g. `exec:inc`, `solver.query`,
    /// `stability.classify` — the verifier's per-spec classification
    /// point event, whose fields carry the spec site, its stability
    /// class, and rendered findings). The CDCL core's search
    /// counters arrive as `solver.conflict`, `solver.restart`, and
    /// `theory.propagate` metric bumps rather than point events, so
    /// hot search loops never pay for event construction.
    pub name: String,
    /// Structured payload, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A `u64` field by name, if present and unsigned.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Value::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The event with every wall-clock-dependent quantity zeroed: the
    /// timestamp and the `duration_nanos` field. Two traces of the
    /// same run agree on their `normalized` forms regardless of
    /// machine speed; under the logical clock normalization is the
    /// identity on already-deterministic data.
    pub fn normalized(&self) -> Event {
        let mut e = self.clone();
        e.ts = 0;
        for (k, v) in &mut e.fields {
            if k == "duration_nanos" {
                *v = Value::UInt(0);
            }
        }
        e
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&self.ts.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.wire_name());
        out.push_str("\",\"name\":");
        push_json_string(&mut out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            match v {
                Value::UInt(n) => out.push_str(&n.to_string()),
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => push_json_string(&mut out, s),
            }
        }
        out.push_str("}}");
        out
    }

    /// Renders the event as one human-readable line (no trailing
    /// newline).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "[{:>6}] {:>10} {:<10} {}",
            self.seq,
            self.ts,
            self.kind.wire_name(),
            self.name
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(" {}={}", k, v));
        }
        out
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 3,
            ts: 120,
            kind: EventKind::SpanEnd,
            name: "exec:inc".to_string(),
            fields: vec![
                ("duration_nanos".to_string(), Value::UInt(99)),
                ("ok".to_string(), Value::Bool(true)),
                ("label".to_string(), Value::Str("a \"b\"\n".to_string())),
                ("delta".to_string(), Value::Int(-4)),
            ],
        }
    }

    #[test]
    fn jsonl_rendering_escapes_and_orders() {
        let line = sample().to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":3,\"ts\":120,\"kind\":\"span_end\",\"name\":\"exec:inc\",\
             \"fields\":{\"duration_nanos\":99,\"ok\":true,\"label\":\"a \\\"b\\\"\\n\",\"delta\":-4}}"
        );
    }

    #[test]
    fn normalization_zeroes_clock_dependent_data() {
        let n = sample().normalized();
        assert_eq!(n.ts, 0);
        assert_eq!(n.field_u64("duration_nanos"), Some(0));
        assert_eq!(n.field("ok"), Some(&Value::Bool(true)));
        assert_eq!(n.seq, 3, "sequence numbers are deterministic and kept");
    }

    #[test]
    fn text_rendering_mentions_fields() {
        let t = sample().to_text();
        assert!(t.contains("exec:inc"));
        assert!(t.contains("ok=true"));
        assert!(t.contains("delta=-4"));
    }
}
