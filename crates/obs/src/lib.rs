//! # `daenerys-obs` — the verifier flight recorder
//!
//! A zero-dependency observability layer for the Daenerys pipeline:
//! structured [`Event`]s (span start/end, point events, gauges), a
//! [`MetricsRegistry`] of counters and log₂ histograms, and pluggable
//! [`Sink`]s (null, in-memory ring buffer, JSONL, human-readable text).
//!
//! ## Determinism contract
//!
//! Tracing must never perturb verification results, and traces
//! themselves must be reproducible:
//!
//! * Producers record into a thread-local [`TraceCollector`] (one per
//!   verified method) and the fan-out merges the buffers **in program
//!   order**, so the emitted stream is identical at any thread count.
//! * Sequence numbers are assigned on the single-threaded merge path.
//! * Timestamps come from a pluggable [`ClockKind`]: `Monotonic` in
//!   production, `Logical` (a per-collector tick counter) in tests —
//!   under the logical clock two runs of the same program produce
//!   byte-identical streams; under the monotonic clock they are
//!   identical after [`Event::normalized`] timestamp normalization.
//! * A disabled handle ([`TraceHandle::disabled`], the default) skips
//!   all event construction behind a single branch, so the instrumented
//!   hot paths cost nothing when tracing is off.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod json;
pub mod labels;
pub mod metrics;
pub mod render;
pub mod sink;
pub mod trace;

pub use event::{Event, EventKind, Value};
pub use json::{parse as parse_json, validate_event_line, Json, JsonError};
pub use labels::{LabeledRegistry, Labels, SharedRegistry};
pub use metrics::{Histogram, MetricsRegistry};
pub use render::{caret_line, fmt_count, fmt_nanos, gutter, ColorMode, Style, TextTable};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink, TextSink};
pub use trace::{ClockKind, SpanToken, TraceCollector, TraceHandle};
