//! A minimal JSON reader used to validate trace lines against the
//! event schema — deliberately dependency-free (the build environment
//! is offline) and small: it supports exactly the JSON subset the
//! JSONL sink emits, plus arrays/null for forward compatibility.

use crate::event::EventKind;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A schema violation or parse error in a trace line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset where the problem was detected (0 for whole-line
    /// schema violations).
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`; integers above 2⁵³ lose precision, so
    /// writers of large integers should emit strings instead).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value back to compact JSON (object keys in sorted
    /// order, numbers with integral value printed without a fraction).
    /// `render` ∘ [`parse`] is lossless for every value the obs layer
    /// emits; non-finite numbers (unrepresentable in JSON) render as
    /// `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{}", n);
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::new();
    escape_into(s, &mut out);
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{}'", lit)))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{}'", text)))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(&format!("duplicate key '{}'", key)));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Parses one complete JSON value (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a positioned [`JsonError`] for malformed input.
pub fn parse(line: &str) -> Result<Json, JsonError> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

fn schema_err(message: String) -> JsonError {
    JsonError { at: 0, message }
}

/// Validates one JSONL trace line against the event schema: a JSON
/// object with exactly the keys `seq` (non-negative integer), `ts`
/// (non-negative integer), `kind` (one of the
/// [`EventKind::WIRE_NAMES`]), `name` (non-empty string), and `fields`
/// (an object whose values are numbers, booleans, or strings).
///
/// # Errors
///
/// Returns a positioned [`JsonError`] for malformed JSON and an
/// `at: 0` one for schema violations.
pub fn validate_event_line(line: &str) -> Result<(), JsonError> {
    let Json::Obj(map) = parse(line)? else {
        return Err(schema_err("top-level value must be an object".to_string()));
    };
    const KEYS: [&str; 5] = ["fields", "kind", "name", "seq", "ts"];
    let keys: Vec<&str> = map.keys().map(String::as_str).collect();
    if keys != KEYS {
        return Err(schema_err(format!(
            "expected exactly the keys {:?}, got {:?}",
            KEYS, keys
        )));
    }
    for int_key in ["seq", "ts"] {
        match &map[int_key] {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {}
            other => {
                return Err(schema_err(format!(
                    "'{}' must be a non-negative integer, got {:?}",
                    int_key, other
                )))
            }
        }
    }
    match &map["kind"] {
        Json::Str(k) if EventKind::WIRE_NAMES.contains(&k.as_str()) => {}
        other => {
            return Err(schema_err(format!(
                "'kind' must be one of {:?}, got {:?}",
                EventKind::WIRE_NAMES,
                other
            )))
        }
    }
    match &map["name"] {
        Json::Str(n) if !n.is_empty() => {}
        other => {
            return Err(schema_err(format!(
                "'name' must be a non-empty string, got {:?}",
                other
            )))
        }
    }
    let Json::Obj(fields) = &map["fields"] else {
        return Err(schema_err("'fields' must be an object".to_string()));
    };
    for (k, v) in fields {
        match v {
            Json::Num(_) | Json::Bool(_) | Json::Str(_) => {}
            other => {
                return Err(schema_err(format!(
                    "field '{}' must be a number, boolean, or string, got {:?}",
                    k, other
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Value};

    #[test]
    fn emitted_events_validate() {
        let e = Event {
            seq: 0,
            ts: 7,
            kind: EventKind::Point,
            name: "solver.query".to_string(),
            fields: vec![
                ("fuel".to_string(), Value::UInt(3)),
                ("cache_hit".to_string(), Value::Bool(false)),
                (
                    "site".to_string(),
                    Value::Str("postcondition: \"x\"".to_string()),
                ),
            ],
        };
        validate_event_line(&e.to_jsonl()).unwrap();
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(validate_event_line("{\"seq\":").is_err());
        assert!(validate_event_line("[]").is_err());
        assert!(validate_event_line("{} trailing").is_err());
    }

    #[test]
    fn rejects_schema_violations() {
        // Missing keys.
        assert!(validate_event_line("{}").is_err());
        // Wrong kind.
        assert!(validate_event_line(
            "{\"seq\":0,\"ts\":0,\"kind\":\"nope\",\"name\":\"x\",\"fields\":{}}"
        )
        .is_err());
        // Negative seq.
        assert!(validate_event_line(
            "{\"seq\":-1,\"ts\":0,\"kind\":\"point\",\"name\":\"x\",\"fields\":{}}"
        )
        .is_err());
        // Empty name.
        assert!(validate_event_line(
            "{\"seq\":0,\"ts\":0,\"kind\":\"point\",\"name\":\"\",\"fields\":{}}"
        )
        .is_err());
        // Nested field value.
        assert!(validate_event_line(
            "{\"seq\":0,\"ts\":0,\"kind\":\"point\",\"name\":\"x\",\"fields\":{\"a\":[1]}}"
        )
        .is_err());
        // Extra key.
        assert!(validate_event_line(
            "{\"seq\":0,\"ts\":0,\"kind\":\"point\",\"name\":\"x\",\"fields\":{},\"extra\":1}"
        )
        .is_err());
    }

    #[test]
    fn render_roundtrips() {
        for src in [
            "{\"a\":1,\"b\":[true,null,\"x\\n\"],\"c\":{\"d\":-2.5}}",
            "[0,9007199254740991,\"π \\u0007\"]",
            "\"plain\"",
        ] {
            let v = parse(src).unwrap();
            let rendered = v.render();
            assert_eq!(parse(&rendered).unwrap(), v, "roundtrip of {}", src);
            // Integers render without a fraction.
            assert!(!Json::Num(3.0).render().contains('.'));
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn accepts_escapes_and_unicode() {
        validate_event_line(
            "{\"seq\":0,\"ts\":0,\"kind\":\"point\",\"name\":\"a\\u0041π\",\"fields\":{\"s\":\"\\n\\t\\\\\"}}",
        )
        .unwrap();
    }
}
