//! Terminal rendering primitives — ANSI styling shared by every
//! Daenerys front-end (the `daenerys` CLI, `daenerys-top`, bench
//! summaries).
//!
//! Rendering follows the same determinism contract as the rest of the
//! crate: the *text* of a diagnostic never depends on whether color is
//! enabled, only the escape sequences wrapped around it do. Golden
//! tests therefore compare `ColorMode::Never` output byte-for-byte
//! while interactive runs get the styled variant for free.

use std::fmt;

/// Whether [`Style::paint`] emits ANSI escape sequences.
///
/// There is deliberately no `Auto` variant here: TTY sniffing belongs
/// to the binary (which owns the process environment), not to a
/// library whose output must be reproducible in tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColorMode {
    /// Emit ANSI escapes around styled spans.
    Always,
    /// Emit plain text only — byte-stable for golden tests and pipes.
    Never,
}

impl ColorMode {
    /// True when escapes are emitted.
    pub fn enabled(self) -> bool {
        self == ColorMode::Always
    }
}

/// A terminal text style: one SGR color plus an optional bold flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Style {
    /// SGR color code (e.g. 31 = red); 0 means "no color".
    code: u8,
    bold: bool,
}

impl Style {
    /// Bold red — errors and failed verdicts.
    pub const ERROR: Style = Style {
        code: 31,
        bold: true,
    };
    /// Bold yellow — warnings and unstable findings.
    pub const WARN: Style = Style {
        code: 33,
        bold: true,
    };
    /// Bold green — verified / passing.
    pub const OK: Style = Style {
        code: 32,
        bold: true,
    };
    /// Bold cyan — section headings and method names.
    pub const HEAD: Style = Style {
        code: 36,
        bold: true,
    };
    /// Bold blue — gutter rules and line numbers.
    pub const GUTTER: Style = Style {
        code: 34,
        bold: true,
    };
    /// Dim-ish plain bold — emphasis without color.
    pub const BOLD: Style = Style {
        code: 0,
        bold: true,
    };

    /// Wraps `text` in this style under the given mode. Under
    /// [`ColorMode::Never`] the text is returned verbatim.
    pub fn paint(self, mode: ColorMode, text: &str) -> String {
        if !mode.enabled() {
            return text.to_string();
        }
        let mut out = String::with_capacity(text.len() + 12);
        out.push_str("\x1b[");
        if self.bold {
            out.push('1');
        }
        if self.code != 0 {
            if self.bold {
                out.push(';');
            }
            out.push_str(&self.code.to_string());
        }
        out.push('m');
        out.push_str(text);
        out.push_str("\x1b[0m");
        out
    }
}

/// A caret underline for a 1-based source column: `col - 1` spaces of
/// padding followed by `width.max(1)` carets. Columns ≤ 1 pad zero.
///
/// The result is the raw underline text; style it with
/// [`Style::paint`] if desired.
pub fn caret_line(col: u32, width: usize) -> String {
    let pad = (col.max(1) - 1) as usize;
    let mut s = " ".repeat(pad);
    s.push_str(&"^".repeat(width.max(1)));
    s
}

/// Right-aligns a line number into a fixed-width gutter, e.g.
/// `gutter(7, 4)` → `"   7"`.
pub fn gutter(line: u32, width: usize) -> String {
    format!("{line:>width$}")
}

/// Formats a nanosecond duration as a short human figure
/// (`"873ns"`, `"14.2µs"`, `"3.07ms"`, `"1.25s"`), deterministic for
/// a given input.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Formats a count with thousands separators (`1234567` → `1_234_567`)
/// so big fuel numbers stay readable in the cost report.
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// A minimal left-aligned text table with a header row and a dashed
/// rule, used by the cost report. Column widths fit the widest cell.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i + 1 == cells.len() {
                    write!(f, "{cell}")?;
                } else {
                    write!(f, "{cell:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        render_row(f, &self.header)?;
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paint_respects_mode() {
        assert_eq!(Style::ERROR.paint(ColorMode::Never, "boom"), "boom");
        assert_eq!(
            Style::ERROR.paint(ColorMode::Always, "boom"),
            "\x1b[1;31mboom\x1b[0m"
        );
        assert_eq!(Style::BOLD.paint(ColorMode::Always, "x"), "\x1b[1mx\x1b[0m");
    }

    #[test]
    fn caret_line_pads_and_clamps() {
        assert_eq!(caret_line(1, 3), "^^^");
        assert_eq!(caret_line(4, 2), "   ^^");
        assert_eq!(caret_line(0, 0), "^", "degenerate spans still point");
    }

    #[test]
    fn human_figures() {
        assert_eq!(fmt_nanos(873), "873ns");
        assert_eq!(fmt_nanos(14_200), "14.2µs");
        assert_eq!(fmt_nanos(3_070_000), "3.07ms");
        assert_eq!(fmt_nanos(1_250_000_000), "1.25s");
        assert_eq!(fmt_count(7), "7");
        assert_eq!(fmt_count(1_234_567), "1_234_567");
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["method", "fuel"]);
        t.row(&["a".to_string(), "10".to_string()]);
        t.row(&["longer".to_string(), "7".to_string()]);
        let s = t.to_string();
        assert_eq!(s, "method  fuel\n------------\na       10\nlonger  7\n");
    }
}
