//! Static stability lints: classify spec assertions before verifying.
//!
//! Run with `cargo run -p daenerys --example stability_lint`.
//!
//! The analyzer places every precondition, postcondition, and loop
//! invariant on the `stable < framed-stable < unstable` lattice with
//! per-subterm provenance: which heap read lacks a covering permission
//! (with a fix hint), which `perm(..)` atom caps the class, which
//! `old(..)` shields its reads. The verifier consumes the verdicts two
//! ways: the stable baseline skips invalidation scans for witnesses of
//! (framed-)stable specs, and `deny_unstable` rejects unstable
//! contracts outright.

use daenerys::idf::{
    analyze_program, parse_program, Backend, StabilityClass, Verifier, VerifierConfig,
};

const SRC: &str = "
    field val: Int

    method audited(c: Ref)
      requires acc(c.val) && c.val >= 0
      ensures acc(c.val) && c.val == old(c.val) + 1
    {
      c.val := c.val + 1
    }

    method racy(c: Ref)
      requires c.val >= 0
      ensures true
    {
    }
";

fn main() {
    let program = parse_program(SRC).expect("example parses");

    println!("== Classification ==\n");
    for v in analyze_program(&program) {
        println!("  {}", v.lint());
    }

    // `audited` is framed-stable: the baseline backend may skip every
    // witness-invalidation scan its spec would otherwise pay for.
    println!("\n== Baseline scan skips ==\n");
    let audited = parse_program(
        &SRC.lines()
            .take_while(|l| !l.contains("method racy"))
            .collect::<Vec<_>>()
            .join("\n"),
    )
    .expect("prefix parses");
    let mut v = Verifier::new(&audited, Backend::StableBaseline);
    let stats = v.verify_all().expect("audited verifies");
    println!(
        "  audited: {} invalidation scan(s) skipped, {} witnesses",
        stats["audited"].stability_skips, stats["audited"].witnesses
    );

    // With the gate on, the unstable contract is refused before any
    // symbolic execution happens.
    println!("\n== deny_unstable ==\n");
    let mut v = Verifier::with_config(
        &program,
        Backend::Destabilized,
        VerifierConfig {
            deny_unstable: true,
            ..VerifierConfig::default()
        },
    );
    for (name, verdict) in v.verify_all_verdicts() {
        println!("  {}: {}", name, verdict);
    }

    let unstable = analyze_program(&program)
        .into_iter()
        .filter(|v| v.class == StabilityClass::Unstable)
        .count();
    println!("\n  {} unstable assertion(s) denied", unstable);
}
