//! The classic Iris motivating example: a concurrent counter.
//!
//! Run with `cargo run -p daenerys --example concurrent_counter`.
//!
//! Two threads bump a shared counter with `faa`. We (1) explore *every*
//! interleaving with the exhaustive scheduler and confirm the final
//! value is schedule-independent, (2) demonstrate the authoritative-
//! counter ghost theory from the algebra crate, and (3) validate a
//! fork triple through the permission monitor.

use daenerys::heaplang::{explore, parse, Machine, Val};
use daenerys::logic::UniverseSpec;
use daenerys::logic::{GhostName, GhostVal};
use daenerys::proglog::{rules, validate, ForkPolicy};
use daenerys_algebra::{Auth, Ra, SumNat};
use daenerys_heaplang::Loc;

fn main() {
    println!("== Exhaustive interleaving exploration ==\n");
    let prog = parse(
        "let c = ref 0 in
         fork (faa(c, 1));
         fork (faa(c, 1));
         faa(c, 1); !c",
    )
    .expect("parses");
    let result = explore(Machine::new(prog), 256);
    println!(
        "  states visited: {}, distinct terminal configurations: {}, truncated: {}",
        result.states_visited,
        result.terminals.len(),
        result.truncated
    );
    let mut outcomes: Vec<i64> = result
        .terminals
        .iter()
        .filter_map(|m| m.main_result().and_then(Val::as_int))
        .collect();
    outcomes.sort_unstable();
    outcomes.dedup();
    println!("  observed main-thread results: {:?}", outcomes);
    // The main thread may read its own increment before or after the
    // forked ones — but every *final heap* holds 3.
    let finals: Vec<i64> = result
        .terminals
        .iter()
        .filter_map(|m| m.heap.get(Loc(0)).and_then(Val::as_int))
        .collect();
    println!("  final counter values: {:?} (all 3)\n", finals);
    assert!(finals.iter().all(|&v| v == 3));

    println!("== The authoritative-counter ghost theory ==\n");
    // The invariant holds ● total; each thread holds ◯ its contribution.
    let total = Auth::auth(SumNat(3));
    let contribs = Auth::frag(SumNat(1))
        .op(&Auth::frag(SumNat(1)))
        .op(&Auth::frag(SumNat(1)));
    println!(
        "  ●3 ⋅ (◯1 ⋅ ◯1 ⋅ ◯1) valid? {}",
        total.op(&contribs).valid()
    );
    let overdraw = contribs.op(&Auth::frag(SumNat(1)));
    println!(
        "  ●3 ⋅ ◯4 valid?             {}",
        total.op(&overdraw).valid()
    );

    // The corresponding ghost update: contribute one.
    use daenerys::logic::proof::update::ghost_fpu;
    let before = GhostVal::AuthNat(Auth::both(SumNat(2), SumNat(2)));
    let after = GhostVal::AuthNat(Auth::both(SumNat(3), SumNat(3)));
    println!(
        "  ghost update ●2⋅◯2 ~~> ●3⋅◯3 frame-preserving? {}\n",
        ghost_fpu(&before, &after)
    );
    let _ = GhostName(0);

    println!("== A fork triple under the permission monitor ==\n");
    // {l ↦ 0} fork (l <- 1) {x. ⌜x = ()⌝}: the child takes the chunk.
    let child = rules::wp_store(Loc(0), Val::int(0), Val::int(1), "x");
    let forked = rules::wp_fork(&child);
    println!("  derivation: {}", forked);
    let uni = UniverseSpec::tiny().build();
    let report = validate(forked.triple(), &uni, 10_000, ForkPolicy::GiveAll);
    println!(
        "  adequacy: {} model(s), {} failure(s)",
        report.models,
        report.failures.len()
    );
    assert!(report.failures.is_empty());
}
