//! A bank-account case study, end to end.
//!
//! Run with `cargo run -p daenerys --example idf_bank`.
//!
//! One Viper-style program, three oracles:
//!   1. static verification on the destabilized backend,
//!   2. static verification on the stable baseline (same result, more
//!      work — the measurable cost of stability),
//!   3. compilation to HeapLang and dynamic contract checking on a
//!      sweep of concrete inputs.

use daenerys::heaplang::Heap;
use daenerys::idf::{alloc_object, parse_program, run_and_check, Backend, ConcreteVal, Verifier};

const BANK: &str = r#"
    field bal: Int

    method deposit(a: Ref, amt: Int)
      requires acc(a.bal) && amt >= 0
      ensures acc(a.bal) && a.bal == old(a.bal) + amt
    {
      a.bal := a.bal + amt
    }

    method withdraw(a: Ref, amt: Int)
      requires acc(a.bal) && 0 <= amt && amt <= a.bal
      ensures acc(a.bal) && a.bal == old(a.bal) - amt && a.bal >= 0
    {
      a.bal := a.bal - amt
    }

    method transfer(a: Ref, b: Ref, amt: Int)
      requires acc(a.bal) && acc(b.bal) && 0 <= amt && amt <= a.bal
      ensures acc(a.bal) && acc(b.bal)
      ensures a.bal == old(a.bal) - amt && b.bal == old(b.bal) + amt
    {
      call withdraw(a, amt);
      call deposit(b, amt)
    }
"#;

fn main() {
    let program = parse_program(BANK).expect("bank program parses");

    println!("== Static verification ==\n");
    for backend in [Backend::Destabilized, Backend::StableBaseline] {
        let mut verifier = Verifier::new(&program, backend);
        match verifier.verify_all() {
            Ok(stats) => {
                println!("  {:?}:", backend);
                for (m, s) in &stats {
                    println!(
                        "    {:<10} {:>3} obligations  {:>3} queries  {:>3} witnesses  {:>3} rebinds",
                        m, s.obligations, s.solver_queries, s.witnesses, s.rebinds
                    );
                }
            }
            Err(e) => panic!("verification failed: {}", e),
        }
    }

    println!("\n== Dynamic contract checking (compiled to HeapLang) ==\n");
    let mut checked = 0;
    for initial_a in [0i64, 10, 100] {
        for initial_b in [0i64, 5] {
            for amt in [0i64, 1, 10] {
                if amt > initial_a {
                    continue;
                }
                let mut heap = Heap::new();
                let a = alloc_object(&program, &mut heap, &[initial_a]);
                let b = alloc_object(&program, &mut heap, &[initial_b]);
                let final_heap = run_and_check(
                    &program,
                    "transfer",
                    vec![
                        ConcreteVal::Obj(a.clone()),
                        ConcreteVal::Obj(b.clone()),
                        ConcreteVal::Int(amt),
                    ],
                    heap,
                    100_000,
                )
                .expect("verified method meets its contract at runtime");
                let final_a = final_heap.get(a.cells[0]).unwrap();
                let final_b = final_heap.get(b.cells[0]).unwrap();
                println!(
                    "  transfer(a={:>3}, b={:>2}, amt={:>2})  →  a={}  b={}",
                    initial_a, initial_b, amt, final_a, final_b
                );
                checked += 1;
            }
        }
    }
    println!("\n  {} concrete runs, zero contract violations.", checked);
}
