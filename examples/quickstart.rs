//! Quickstart: the destabilized logic in five minutes.
//!
//! Run with `cargo run -p daenerys --example quickstart`.
//!
//! Walks the three layers: (1) unstable assertions and stabilization in
//! the base logic, (2) a verified Hoare triple validated by monitored
//! execution, (3) a Viper-style method checked by the IDF verifier.

use daenerys::idf::{parse_program, Backend, Verifier};
use daenerys::logic::{check_stable, entails, Assert, Term, UniverseSpec};
use daenerys::proglog::{rules, validate, ForkPolicy};
use daenerys_algebra::Q;
use daenerys_heaplang::{Loc, Val};

fn main() {
    println!("== 1. Unstable assertions and ⌊stabilization⌋ ==\n");
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));

    // The heap-dependent fact `!l = 1` — Viper's `x.f == 1` — is not
    // stable: the environment may own the cell and change it.
    let read = Assert::read_eq(l.clone(), Term::int(1));
    println!(
        "  `!ℓ = 1` stable?            {:?}",
        check_stable(&read, &uni, 1).is_ok()
    );

    // Owning a fraction pins the value: the conjunction is stable.
    let pinned = Assert::sep(
        Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1)),
        read.clone(),
    );
    println!(
        "  `ℓ ↦½ 1 ∗ !ℓ = 1` stable?   {:?}",
        check_stable(&pinned, &uni, 1).is_ok()
    );

    // And the points-to *entails* the heap-dependent fact — the
    // hallmark destabilized rule.
    let half = Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1));
    println!(
        "  ℓ ↦½ 1 ⊢ ⌜!ℓ = 1⌝?          {:?}",
        entails(&half, &read, &uni, 1).is_ok()
    );

    // Permission introspection is non-monotone but stable.
    let perm = Assert::PermEq(l, Q::HALF);
    println!(
        "  `perm(ℓ) = ½` stable?       {:?}\n",
        check_stable(&perm, &uni, 1).is_ok()
    );

    println!("== 2. A verified triple, validated by monitored execution ==\n");
    // {l ↦ 0} l <- 1 {x. ⌜x = ()⌝ ∧ l ↦ 1}, via the WP kernel.
    let triple = rules::wp_store(Loc(0), Val::int(0), Val::int(1), "x");
    println!("  kernel derivation: {}", triple);
    let report = validate(triple.triple(), &uni, 10_000, ForkPolicy::Forbid);
    println!(
        "  adequacy: {} model(s) executed, {} failure(s)\n",
        report.models,
        report.failures.len()
    );

    println!("== 3. The IDF verifier (both backends) ==\n");
    let program = parse_program(
        r#"
        field val: Int
        method inc(c: Ref)
          requires acc(c.val)
          ensures acc(c.val) && c.val == old(c.val) + 1
        { c.val := c.val + 1 }
        "#,
    )
    .expect("parses");
    for backend in [Backend::Destabilized, Backend::StableBaseline] {
        let mut v = Verifier::new(&program, backend);
        let stats = v.verify_all().expect("verifies");
        let s = &stats["inc"];
        println!(
            "  {:?}: {} obligations, {} solver queries, {} witnesses",
            backend, s.obligations, s.solver_queries, s.witnesses
        );
    }
    println!("\nThe destabilized backend states `c.val` directly; the stable");
    println!("baseline pays witnesses for every heap read in the spec.");
}
