//! Permission introspection and the stable fragment.
//!
//! Run with `cargo run -p daenerys --example permission_introspection`.
//!
//! `perm(x.f)` is the signature *non-monotone* assertion of automated
//! verifiers: it inspects how much permission is currently held, so it
//! cannot exist in a monotone logic like classical Iris. The
//! destabilized logic supports it natively. This example shows (1) its
//! semantic behaviour in the base logic, (2) the syntactic stability
//! judgement, and (3) a Viper-style lending protocol that uses it.

use daenerys::idf::{parse_program, Backend, Verifier};
use daenerys::logic::{
    check_stable, entails, stabilize_fast, syntactically_stable, Assert, Term, UniverseSpec,
};
use daenerys_algebra::Q;
use daenerys_heaplang::Loc;

fn main() {
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));

    println!("== perm introspection in the base logic ==\n");
    let perm_half = Assert::PermEq(l.clone(), Q::HALF);
    let pt_half = Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1));
    let pt_full = Assert::points_to(l.clone(), Term::int(1));

    // Introspection is stable (frame changes cannot alter what *you*
    // hold) ...
    println!(
        "  `perm(ℓ) = ½` stable?                  {}",
        check_stable(&perm_half, &uni, 1).is_ok()
    );
    // ... but non-monotone: it does NOT follow from the *full* chunk.
    println!(
        "  ℓ ↦½ 1 ⊢ perm(ℓ) = ½ ?                 {}",
        entails(&pt_half, &perm_half, &uni, 1).is_ok()
    );
    println!(
        "  ℓ ↦  1 ⊢ perm(ℓ) = ½ ?                 {}  (non-monotonicity)",
        entails(&pt_full, &perm_half, &uni, 1).is_ok()
    );
    // Monotone bounds do follow from both.
    let perm_ge = Assert::PermGe(l.clone(), Q::HALF);
    println!(
        "  ℓ ↦  1 ⊢ perm(ℓ) ≥ ½ ?                 {}\n",
        entails(&pt_full, &perm_ge, &uni, 1).is_ok()
    );

    println!("== the syntactic stable fragment ==\n");
    let read = Assert::read_eq(l.clone(), Term::int(1));
    for (label, a) in [
        ("perm(ℓ) = ½", perm_half.clone()),
        ("⌜!ℓ = 1⌝ (naked heap read)", read.clone()),
        ("⌊⌜!ℓ = 1⌝⌋ (stabilized)", Assert::stabilize(read.clone())),
    ] {
        println!(
            "  {:<28} syntactically stable: {}",
            label,
            syntactically_stable(&a)
        );
    }
    // The fast stabilizer strengthens the naked read to its
    // self-framing form.
    println!("\n  stabilize_fast(⌜!ℓ = 1⌝) = {}\n", stabilize_fast(&read));

    println!("== a lending protocol in the IDF verifier ==\n");
    let program = parse_program(
        r#"
        field v: Int

        // Lend half the permission away, observe it, take it back.
        method lend_and_observe(c: Ref) returns (r: Int)
          requires acc(c.v)
          ensures acc(c.v) && c.v == old(c.v) && r == c.v
        {
          // Full permission here:
          assert perm(c.v) == 1;
          exhale acc(c.v, 1/2);
          // Only half left — introspection sees it exactly:
          assert perm(c.v) == 1/2;
          assert perm(c.v) < 1;
          // Read access still works with half permission:
          r := c.v;
          inhale acc(c.v, 1/2);
          assert perm(c.v) == 1
        }
        "#,
    )
    .expect("parses");
    for backend in [Backend::Destabilized, Backend::StableBaseline] {
        let mut v = Verifier::new(&program, backend);
        let stats = v.verify_all().expect("verifies");
        let s = &stats["lend_and_observe"];
        println!(
            "  {:?}: verified with {} obligations ({} witnesses)",
            backend, s.obligations, s.witnesses
        );
    }
}
