//! Offline stub of the `criterion` benchmarking harness.
//!
//! Implements just the API surface the workspace benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`. Reports mean wall time per iteration to stdout;
//! there is no statistical analysis, plotting, or baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant folding well enough
/// for these benches (reads/writes through a volatile pointer).
pub fn black_box<T>(x: T) -> T {
    // std::hint::black_box is stable since 1.66.
    std::hint::black_box(x)
}

/// A benchmark label with an optional parameter, e.g. `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Runs the closure under timing; handed to bench bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API compatibility; the stub times a fixed number of
    /// iterations instead of a target duration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does one untimed
    /// warm-up iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&name.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the body.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
        println!(
            "{}/{}: {} iters, {:.3} ms/iter",
            self.name,
            label,
            b.iters,
            per_iter as f64 / 1e6
        );
    }

    /// Ends the group (stdout reporting happens per-bench, so this is a
    /// no-op).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
