//! Offline stand-in for the `rand` crate.
//!
//! The workspace is built in a hermetic environment with no crates.io
//! access, so the external `rand` dependency is replaced by this local
//! implementation of the exact API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, reproducible PRNG. It intentionally does **not**
//! promise the same stream as upstream `rand`; everything in this
//! workspace that relies on seeds only requires reproducibility within
//! the same build.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampleable range over `T` for [`Rng::gen_range`]. Generic over
/// the element type (like upstream rand) so range literals infer their
/// width from the call site.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random boolean.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A seedable xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }
}
