//! The `option::of` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Option<S::Value>` (3:1 biased toward `Some`, like
/// upstream's default probability).
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` of the inner strategy's values, or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
