//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy maps an RNG directly to a value.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `depth` levels of `recurse` applied
    /// over `self` as the leaf strategy. The `_desired_size` and
    /// `_expected_branch_size` hints are accepted for API compatibility;
    /// recursion depth alone bounds the generated size here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Bias toward leaves so expected sizes stay small.
            strat = Union::weighted(vec![(2, leaf.clone()), (1, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly (or by weight) among type-erased alternatives;
/// built by the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

// Manual impl: a derive would demand `V: Clone`, but the arms are
// `Rc`-backed and clone regardless of `V`.
impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// A uniform union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// A weighted union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled index")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
