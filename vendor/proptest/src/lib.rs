//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no crates.io), so the external
//! `proptest` dev-dependency is replaced by this local property-testing
//! engine implementing the API subset the workspace's test suites use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`,
//!   `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection`] (`vec`/`btree_map`/`btree_set`)
//!   and [`option::of`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Generation is deterministic per test case index, so failures are
//! reproducible run-to-run. Unlike upstream proptest there is **no
//! shrinking**: a failing case reports the generated inputs via the
//! assertion message instead.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a union strategy choosing uniformly among the listed arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                let mut case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
