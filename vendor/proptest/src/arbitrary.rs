//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Prim<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Prim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Prim<$t>;
            fn arbitrary() -> Prim<$t> {
                Prim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Prim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Prim<bool>;
    fn arbitrary() -> Prim<bool> {
        Prim(std::marker::PhantomData)
    }
}
