//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

fn sample_len(rng: &mut TestRng, size: &Range<usize>) -> usize {
    if size.start >= size.end {
        return size.start;
    }
    size.start + rng.below(size.end - size.start)
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = sample_len(rng, &self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap<K::Value, V::Value>`; duplicate keys
/// collapse, so maps may come out smaller than the drawn size.
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Generates maps with up to `size` entries.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = sample_len(rng, &self.size);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// A strategy for `BTreeSet<S::Value>`; duplicates collapse.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates sets with up to `size` elements.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = sample_len(rng, &self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
