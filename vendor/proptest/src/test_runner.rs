//! The test runner: deterministic per-case RNG, config, and failure
//! reporting.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure raised by `prop_assert!`-style macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The deterministic generation RNG handed to strategies
/// (SplitMix64-seeded xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for the given seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// A uniform index below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `[lo, hi]` over `i128` (covers every integer
    /// width the strategies need).
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }
}

/// Runs the cases of one property.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for the given config.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `f` once per case with a deterministic per-case RNG,
    /// panicking (with the property name and case index) on the first
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics when a case returns a [`TestCaseError`].
    pub fn run_named<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            // A fixed stream per (name, case) so failures reproduce.
            let mut seed = 0xDAE0_0001u64;
            for b in name.bytes() {
                seed = splitmix64(&mut seed) ^ u64::from(b);
            }
            let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(case) << 1));
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest property {} failed at case {}/{}: {}",
                    name, case, self.config.cases, e
                );
            }
        }
    }
}
