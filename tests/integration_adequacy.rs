//! Integration: triples built from core-kernel entailments and WP rules,
//! validated by monitored execution — and concurrent programs checked
//! against exhaustive interleaving exploration.

use daenerys::logic::{Assert, Term, UniverseSpec};
use daenerys::proglog::{rules, validate, ForkPolicy, MonMachine, Triple};
use daenerys_algebra::{DFrac, Ra, Q};
use daenerys_core::Res;
use daenerys_heaplang::{explore, parse, Expr, Heap, Loc, Machine, Val};

#[test]
fn a_compound_verified_program_is_adequate() {
    // let l = ref 0 in l <- 1  — derived with wp-let over wp-alloc and
    // wp-store + consequence, then validated over every model.
    let uni = UniverseSpec::tiny().build();
    let alloc = rules::wp_alloc(Val::int(0), "l");
    let e2 = Expr::store(Expr::var("l"), Expr::int(1));
    let mut conts = Vec::new();
    for lv in [Loc(0), Loc(1)] {
        let store = rules::wp_store(lv, Val::int(0), Val::int(1), "y");
        let weaken = daenerys::logic::proof::and_elim_l(
            Assert::eq(Term::var("y"), Term::Lit(Val::unit())),
            Assert::points_to(Term::loc(lv), Term::int(1)),
        );
        let pre = daenerys::logic::proof::refl(store.triple().pre.clone());
        conts.push((
            Val::loc(lv),
            rules::wp_consequence(&pre, &store, &weaken).unwrap(),
        ));
    }
    let seq = rules::wp_let(&alloc, "l", e2, &conts).unwrap();
    let report = validate(seq.triple(), &uni, 10_000, ForkPolicy::Forbid);
    assert!(report.models > 0);
    assert!(report.ok(), "{:?}", report.failures);
}

#[test]
fn destabilized_frame_rule_boundary() {
    // Framing `perm(l1) ≥ 0` (stable introspection) over a store is
    // accepted and adequate; framing the naked read is rejected by the
    // kernel, and the hand-written triple is refuted by execution.
    let tp = rules::wp_store(Loc(0), Val::int(0), Val::int(1), "x");

    let stable = Assert::PermGe(Term::loc(Loc(0)), Q::ZERO);
    let framed = rules::wp_frame(&tp, stable).unwrap();
    let uni = UniverseSpec::tiny().build();
    let report = validate(framed.triple(), &uni, 10_000, ForkPolicy::Forbid);
    assert!(report.ok(), "{:?}", report.failures);

    let unstable = Assert::read_eq(Term::loc(Loc(0)), Term::int(0));
    assert!(rules::wp_frame(&tp, unstable.clone()).is_err());
    let bogus = Triple::new(
        Assert::sep(tp.triple().pre.clone(), unstable.clone()),
        tp.triple().expr.clone(),
        "x",
        Assert::sep(tp.triple().post.clone(), unstable),
    );
    let refutation = validate(&bogus, &uni, 10_000, ForkPolicy::Forbid);
    assert!(refutation.models > 0 && !refutation.ok());
}

#[test]
fn monitored_execution_matches_unmonitored_results() {
    // The permission monitor must not change program semantics: run the
    // same program monitored (with full ownership) and plain, compare.
    let srcs = [
        "let l = ref 3 in l <- !l * 2; !l + 1",
        "let a = ref 1 in let b = ref 2 in a <- !b; b <- 5; !a + !b",
        "let l = ref 0 in (rec go n => if n <= 0 then !l else (faa(l, n); go (n - 1))) 4",
    ];
    for src in srcs {
        let prog = parse(src).unwrap();
        let (plain, _) = daenerys::heaplang::run(prog.clone(), 100_000).unwrap();
        let mut mon = MonMachine::new(prog, Res::empty(), Heap::new());
        mon.run(100_000).unwrap();
        assert_eq!(mon.main_result(), Some(&plain), "monitor changed {src}");
    }
}

#[test]
fn concurrent_counter_all_interleavings() {
    // Three faa-increments across three threads: every interleaving
    // leaves 3 in the cell — the exhaustive scheduler proves it, and a
    // monitored run with a fork-resource schedule stays violation-free.
    let src = "let c = ref 0 in fork (faa(c, 1)); fork (faa(c, 1)); faa(c, 1); !c";
    let prog = parse(src).unwrap();
    let all = explore(Machine::new(prog.clone()), 512);
    assert!(!all.truncated);
    assert!(!all.terminals.is_empty());
    for t in &all.terminals {
        assert_eq!(t.heap.get(Loc(0)), Some(&Val::int(3)));
    }

    // Monitored variant with explicit resource transfers: give each
    // child... full permission is required by faa, so sequentialize the
    // handover through the schedule — simply verify the monitor flags
    // the unscheduled case.
    let mut unscheduled = MonMachine::new(prog, Res::empty(), Heap::new());
    assert!(unscheduled.run(10_000).is_err());
}

#[test]
fn fork_resource_accounting() {
    // Transfer half to the child for a read; parent keeps reading too.
    let src = "let x = !l in fork (!l); x";
    let prog = parse(src).unwrap().subst("l", &Val::loc(Loc(0)));
    let half = Res::points_to(Loc(0), DFrac::own(Q::HALF), Val::int(9));
    let own = half.op(&half); // full, as two mergeable halves
    let mut heap = Heap::new();
    heap.insert(Loc(0), Val::int(9));
    let mut m = MonMachine::new(prog, own, heap).with_fork_resources([half]);
    m.run(10_000).unwrap();
    assert_eq!(m.main_result(), Some(&Val::int(9)));
    // Parent retains exactly half.
    assert_eq!(m.main_own().perm_at(Loc(0)), Q::HALF);
}
