//! Integration: the IDF verifier against the dynamic oracle — every
//! positive case study verifies statically (both backends), compiles to
//! HeapLang, and honors its contract on concrete input sweeps.

use daenerys::heaplang::Heap;
use daenerys::idf::{
    alloc_object, positive_cases, run_and_check, Backend, ConcreteVal, Type, Verifier,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn all_case_studies_verify_and_run() {
    let mut rng = StdRng::seed_from_u64(0xda3);
    for case in positive_cases() {
        let program = case.program();
        // Static verification on both backends.
        for backend in [Backend::Destabilized, Backend::StableBaseline] {
            let mut v = Verifier::new(&program, backend);
            let r = v.verify_all();
            assert!(r.is_ok(), "case {} failed on {:?}", case.name, backend);
        }
        // Dynamic contract checks on randomized inputs for every method
        // whose parameters we can synthesize (flat object graphs only).
        if !case.dynamic {
            continue;
        }
        for method in &program.methods {
            if method.body.is_none() {
                continue;
            }
            let mut runs = 0;
            'attempts: for _ in 0..40 {
                if runs >= 10 {
                    break;
                }
                let mut heap = Heap::new();
                let mut args = Vec::new();
                for (_, ty) in &method.params {
                    match ty {
                        Type::Int => args.push(ConcreteVal::Int(rng.gen_range(-4..20))),
                        Type::Bool => args.push(ConcreteVal::Bool(rng.gen_bool(0.5))),
                        Type::Ref => {
                            let vals: Vec<i64> = (0..program.fields.len())
                                .map(|_| rng.gen_range(-4..20))
                                .collect();
                            let obj = alloc_object(&program, &mut heap, &vals);
                            args.push(ConcreteVal::Obj(obj));
                        }
                    }
                }
                match run_and_check(&program, &method.name, args, heap, 1_000_000) {
                    Ok(_) => runs += 1,
                    Err(e) if e.0.contains("precondition") => continue 'attempts,
                    Err(e) => panic!(
                        "verified case {}::{} violated its contract: {}",
                        case.name, method.name, e
                    ),
                }
            }
        }
    }
}

#[test]
fn backend_verdicts_always_agree() {
    use daenerys::idf::all_cases;
    for case in all_cases() {
        let program = case.program();
        let mut d = Verifier::new(&program, Backend::Destabilized);
        let mut b = Verifier::new(&program, Backend::StableBaseline);
        let rd = d.verify_all().is_ok();
        let rb = b.verify_all().is_ok();
        assert_eq!(rd, rb, "backends disagree on {}", case.name);
        assert_eq!(rd, case.should_verify, "wrong verdict on {}", case.name);
    }
}

#[test]
fn baseline_overhead_is_systematic() {
    // Across the whole positive suite, the stable baseline never does
    // *less* work than the destabilized backend, and strictly more
    // whenever the specs read the heap.
    for case in positive_cases() {
        let program = case.program();
        let mut vd = Verifier::new(&program, Backend::Destabilized);
        let d = vd.verify_all().unwrap();
        let mut vb = Verifier::new(&program, Backend::StableBaseline);
        let b = vb.verify_all().unwrap();
        for (m, ds) in &d {
            let bs = &b[m];
            assert!(
                bs.obligations >= ds.obligations,
                "baseline cheaper on {}::{}?",
                case.name,
                m
            );
            let method = program.method(m).unwrap();
            let spec_reads = method.requires.field_reads() + method.ensures.field_reads();
            if spec_reads > 0 {
                assert!(
                    bs.witnesses > 0,
                    "no witnesses despite {} spec reads in {}::{}",
                    spec_reads,
                    case.name,
                    m
                );
            }
        }
    }
}
