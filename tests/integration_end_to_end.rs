//! Integration: the full pipeline — IDF source → two static verifiers →
//! HeapLang compilation → concrete execution with contract checking,
//! plus the headline claim that the verdicts of all oracles coincide.

use daenerys::heaplang::Heap;
use daenerys::idf::{
    alloc_object, parse_program, run_and_check, scaling_program, Backend, ConcreteVal, Verifier,
};

/// One program, four oracles, one verdict.
#[test]
fn four_oracles_agree_on_the_swap_program() {
    let src = r#"
        field v: Int
        method swap(a: Ref, b: Ref)
          requires acc(a.v) && acc(b.v)
          ensures acc(a.v) && acc(b.v)
          ensures a.v == old(b.v) && b.v == old(a.v)
        {
          var t: Int := a.v;
          a.v := b.v;
          b.v := t
        }
    "#;
    let program = parse_program(src).unwrap();

    // Oracle 1 & 2: the two static backends.
    assert!(Verifier::new(&program, Backend::Destabilized)
        .verify_all()
        .is_ok());
    assert!(Verifier::new(&program, Backend::StableBaseline)
        .verify_all()
        .is_ok());

    // Oracle 3: dynamic contract checking on a grid of inputs.
    for x in [-3i64, 0, 7] {
        for y in [-1i64, 4] {
            let mut heap = Heap::new();
            let a = alloc_object(&program, &mut heap, &[x]);
            let b = alloc_object(&program, &mut heap, &[y]);
            let final_heap = run_and_check(
                &program,
                "swap",
                vec![ConcreteVal::Obj(a.clone()), ConcreteVal::Obj(b.clone())],
                heap,
                100_000,
            )
            .unwrap();
            // Oracle 4: direct inspection of the final heap.
            assert_eq!(
                final_heap.get(a.cells[0]),
                Some(&daenerys_heaplang::Val::int(y))
            );
            assert_eq!(
                final_heap.get(b.cells[0]),
                Some(&daenerys_heaplang::Val::int(x))
            );
        }
    }
}

/// The F1 claim at small scale: baseline work grows faster than
/// destabilized work as the number of spec heap reads grows.
#[test]
fn scaling_gap_widens() {
    let mut gaps = Vec::new();
    for n in [2usize, 4, 8] {
        let src = scaling_program(n);
        let program = daenerys::idf::parse_program(&src).unwrap();
        let d = Verifier::new(&program, Backend::Destabilized)
            .verify_all()
            .unwrap();
        let b = Verifier::new(&program, Backend::StableBaseline)
            .verify_all()
            .unwrap();
        let ds = &d["bump_all"];
        let bs = &b["bump_all"];
        assert!(bs.obligations > ds.obligations);
        assert!(bs.witnesses >= 2 * n, "expected ≥ {} witnesses", 2 * n);
        gaps.push((bs.obligations + bs.rebinds) as f64 / ds.obligations.max(1) as f64);
    }
    // The relative overhead must not shrink as n grows.
    assert!(
        gaps.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "overhead ratio shrank: {:?}",
        gaps
    );
}

/// A wrong program is rejected by the static verifier AND caught by the
/// dynamic checker — the oracles also agree on failure.
#[test]
fn oracles_agree_on_rejection() {
    let src = r#"
        field v: Int
        method off_by_one(c: Ref)
          requires acc(c.v)
          ensures acc(c.v) && c.v == old(c.v) + 2
        {
          c.v := c.v + 1
        }
    "#;
    let program = parse_program(src).unwrap();
    assert!(Verifier::new(&program, Backend::Destabilized)
        .verify_all()
        .is_err());
    assert!(Verifier::new(&program, Backend::StableBaseline)
        .verify_all()
        .is_err());
    let mut heap = Heap::new();
    let c = alloc_object(&program, &mut heap, &[0]);
    let e = run_and_check(
        &program,
        "off_by_one",
        vec![ConcreteVal::Obj(c)],
        heap,
        10_000,
    )
    .unwrap_err();
    assert!(e.0.contains("postcondition"));
}

#[test]
fn full_workspace_smoke() {
    // Touch every crate through the facade in one flow: build a camera
    // element, put it in a world, check an entailment, verify a method,
    // compile and run it.
    use daenerys::algebra::{Frac, Ra, Q};
    use daenerys::logic::{entails, Assert, Term, UniverseSpec};
    use daenerys_heaplang::Loc;

    let half = Frac::new(Q::HALF);
    assert!(half.op(&half).valid());

    let uni = UniverseSpec::tiny().build();
    assert!(entails(
        &Assert::points_to(Term::loc(Loc(0)), Term::int(1)),
        &Assert::read_eq(Term::loc(Loc(0)), Term::int(1)),
        &uni,
        1
    )
    .is_ok());

    let program = parse_program(
        "field v: Int
         method zero(c: Ref)
           requires acc(c.v)
           ensures acc(c.v) && c.v == 0
         { c.v := 0 }",
    )
    .unwrap();
    assert!(Verifier::new(&program, Backend::Destabilized)
        .verify_all()
        .is_ok());
    let mut heap = Heap::new();
    let c = alloc_object(&program, &mut heap, &[99]);
    run_and_check(&program, "zero", vec![ConcreteVal::Obj(c)], heap, 10_000).unwrap();
}

/// The semantic bridge: an IDF contract, translated into the Daenerys
/// base logic, holds in the world of the monitored execution — verifier,
/// compiler, monitor, and logic all agree.
#[test]
fn translated_contracts_hold_in_monitored_worlds() {
    use daenerys::idf::{env_of, full_ownership, strip_old, translate_assertion, ConcreteVal};
    use daenerys::logic::{holds, Env, EvalCtx, UniverseSpec, World};

    let src = r#"
        field val: Int
        method bump(c: Ref, n: Int)
          requires acc(c.val) && n >= 0
          ensures acc(c.val) && c.val == old(c.val) + n
        { c.val := c.val + n }
    "#;
    let program = parse_program(src).unwrap();
    assert!(Verifier::new(&program, Backend::Destabilized)
        .verify_all()
        .is_ok());

    let mut heap = Heap::new();
    let obj = alloc_object(&program, &mut heap, &[5]);
    let env = env_of(&[
        ("c", ConcreteVal::Obj(obj.clone())),
        ("n", ConcreteVal::Int(3)),
    ]);
    let old_heap = heap.clone();

    // Pre, translated, holds in the pre-world with full ownership.
    let uni = UniverseSpec::tiny().build();
    let ctx = EvalCtx::new(&uni);
    let method = program.method("bump").unwrap().clone();
    let pre = translate_assertion(&program, &env, &method.requires).unwrap();
    let own0 = full_ownership(&heap, &[&obj]);
    assert!(holds(&pre, &World::solo(own0), &Env::new(), 1, &ctx));

    // Execute with the dynamic checker (which already re-checks the
    // contract concretely).
    let final_heap = run_and_check(
        &program,
        "bump",
        vec![ConcreteVal::Obj(obj.clone()), ConcreteVal::Int(3)],
        heap,
        100_000,
    )
    .unwrap();

    // Post, with old() stripped to pre-state values, translated, holds
    // in the final world.
    let stripped = strip_old(&program, &env, &old_heap, &method.ensures).unwrap();
    let post = translate_assertion(&program, &env, &stripped).unwrap();
    let own1 = full_ownership(&final_heap, &[&obj]);
    assert!(holds(&post, &World::solo(own1), &Env::new(), 1, &ctx));
    // Sanity: the value really moved 5 → 8.
    assert_eq!(
        final_heap.get(obj.cells[0]),
        Some(&daenerys_heaplang::Val::int(8))
    );
}
