//! Chaos suite: the verifier pipeline under budgets, deadlines,
//! injected faults, and internal panics.
//!
//! The resilience contract under test (DESIGN.md §8):
//!
//! 1. `verify_all` always terminates, whatever the [`FaultPlan`].
//! 2. A fault targeting one method never changes a sibling's verdict —
//!    siblings are bit-identical (modulo environment-dependent stats)
//!    to a fault-free run, at any thread count.
//! 3. Budget exhaustion degrades to a deterministic
//!    `Verdict::Unknown { BudgetExhausted, .. }`, never a hang or a
//!    spurious `Verified`/`Failed`.
//! 4. An internal panic degrades that one method to
//!    `Verdict::CrashedInternal` while the rest of the program
//!    completes.

use daenerys::idf::{
    diverging_program, parse_program, Backend, Budget, BudgetAxis, FaultKind, FaultPlan,
    UnknownReason, Verdict, Verifier, VerifierConfig,
};
use std::collections::BTreeMap;
use std::sync::Once;

/// A three-method program: two well-behaved siblings around one method
/// whose single obligation forces the DPLL core through `2^K` branches
/// — comfortably past the 64-branch fuel used below, small enough that
/// the fault-free reference runs stay fast in debug builds.
const DIVERGE_K: usize = 7;

fn diverging() -> daenerys::idf::Program {
    parse_program(&diverging_program(DIVERGE_K)).expect("diverging program parses")
}

/// A small always-verifying program for fault-targeting tests.
fn trio() -> daenerys::idf::Program {
    parse_program(
        "field val: Int
         method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
         { c.val := 1 }
         method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
         { c.val := 1; c.val := c.val + 1 }
         method c(c: Ref) requires acc(c.val) ensures acc(c.val)
         { c.val := c.val + 0 }",
    )
    .expect("trio parses")
}

/// Quiets the default panic hook for payloads produced by injected
/// faults, so chaos tests don't spray backtraces on stderr. Installed
/// once per test binary; real (non-injected) panics still print.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn verdicts_with(
    program: &daenerys::idf::Program,
    config: VerifierConfig,
) -> BTreeMap<String, Verdict> {
    let mut v = Verifier::with_config(program, Backend::Destabilized, config);
    v.verify_all_verdicts()
}

fn normalized(m: &BTreeMap<String, Verdict>) -> BTreeMap<String, Verdict> {
    m.iter().map(|(k, v)| (k.clone(), v.normalized())).collect()
}

// ---------------------------------------------------------------------
// Budget exhaustion: every axis degrades to a deterministic Unknown.
// ---------------------------------------------------------------------

fn exhausted_axis(verdict: &Verdict) -> Option<BudgetAxis> {
    match verdict {
        Verdict::Unknown {
            reason: UnknownReason::BudgetExhausted { axis, .. },
            ..
        } => Some(*axis),
        _ => None,
    }
}

#[test]
fn solver_fuel_exhaustion_yields_unknown() {
    let program = diverging();
    let config = VerifierConfig {
        budget: Budget::unlimited().with_solver_fuel(64),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    assert_eq!(
        exhausted_axis(&verdicts["diverge"]),
        Some(BudgetAxis::SolverFuel)
    );
    assert!(verdicts["before"].is_verified());
    assert!(verdicts["after"].is_verified());
}

#[test]
fn state_budget_exhaustion_yields_unknown() {
    let program = trio();
    let config = VerifierConfig {
        budget: Budget::unlimited().with_max_states(1),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    // Method `b` has two statements, so a one-state budget trips there.
    assert_eq!(exhausted_axis(&verdicts["b"]), Some(BudgetAxis::States));
}

#[test]
fn term_budget_exhaustion_yields_unknown() {
    let program = trio();
    let config = VerifierConfig {
        budget: Budget::unlimited().with_max_terms(0),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    for (name, verdict) in &verdicts {
        assert_eq!(
            exhausted_axis(verdict),
            Some(BudgetAxis::Terms),
            "{} should exhaust the term budget, got {}",
            name,
            verdict
        );
    }
}

#[test]
fn zero_deadline_yields_unknown_not_hang() {
    let program = diverging();
    let config = VerifierConfig {
        budget: Budget::unlimited().with_deadline_ms(0),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    for (name, verdict) in &verdicts {
        assert_eq!(
            exhausted_axis(verdict),
            Some(BudgetAxis::Deadline),
            "{} should exhaust the deadline, got {}",
            name,
            verdict
        );
    }
}

/// Deadline promptness under the CDCL core: a deliberately hard query
/// (`diverging_program(18)` with clause learning off runs for tens of
/// seconds unbudgeted) must come back `Unknown` within a small multiple
/// of its deadline. This only holds because the solver polls the
/// deadline *inside* its conflict loop — a check at query boundaries
/// alone would run the full search before noticing the overrun.
#[test]
fn deadline_is_enforced_inside_the_conflict_loop() {
    const DEADLINE_MS: u64 = 100;
    // Far below the unpolled runtime in either build profile, far above
    // the deadline plus poll granularity (one wall-clock read per 64
    // conflicts).
    const PROMPTNESS_BOUND_MS: u128 = 3_000;
    let program = parse_program(&diverging_program(18)).expect("diverging program parses");
    let config = VerifierConfig {
        learn: false,
        budget: Budget::unlimited().with_deadline_ms(DEADLINE_MS),
        retry_unknown: false,
        threads: 1,
        ..VerifierConfig::default()
    };
    let mut v = Verifier::with_config(&program, Backend::Destabilized, config);
    let started = std::time::Instant::now();
    let verdict = v.verify_method_verdict("diverge");
    let elapsed = started.elapsed();
    assert_eq!(
        exhausted_axis(&verdict),
        Some(BudgetAxis::Deadline),
        "hard query should exhaust the deadline, got {}",
        verdict
    );
    assert!(
        elapsed.as_millis() < PROMPTNESS_BOUND_MS,
        "deadline of {} ms took {:?} to surface — the conflict loop is not polling",
        DEADLINE_MS,
        elapsed
    );
}

#[test]
fn unlimited_budget_still_verifies_everything() {
    let program = trio();
    let verdicts = verdicts_with(&program, VerifierConfig::default());
    assert!(verdicts.values().all(Verdict::is_verified));
}

// ---------------------------------------------------------------------
// The acceptance demo: a diverging solver query completes with that
// method Unknown and siblings bit-identical to a fault-free run at
// 1, 2, and 8 threads.
// ---------------------------------------------------------------------

#[test]
fn diverging_method_unknown_siblings_bit_identical_across_threads() {
    let program = diverging();
    // Fault-free reference run (unlimited budget, single thread).
    let reference = normalized(&verdicts_with(&program, VerifierConfig::default()));
    assert!(reference["diverge"].is_verified());

    for threads in [1, 2, 8] {
        let config = VerifierConfig {
            threads,
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let budgeted = normalized(&verdicts_with(&program, config));
        assert_eq!(
            exhausted_axis(&budgeted["diverge"]),
            Some(BudgetAxis::SolverFuel),
            "diverge should be Unknown at {} threads",
            threads
        );
        for sibling in ["before", "after"] {
            assert_eq!(
                budgeted[sibling], reference[sibling],
                "sibling {} changed at {} threads",
                sibling, threads
            );
        }
    }
}

#[test]
fn budgeted_verdicts_are_thread_count_invariant() {
    let program = diverging();
    let reference = {
        let config = VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        normalized(&verdicts_with(&program, config))
    };
    for threads in [2, 8] {
        let config = VerifierConfig {
            threads,
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        assert_eq!(
            normalized(&verdicts_with(&program, config)),
            reference,
            "budgeted verdicts differ at {} threads",
            threads
        );
    }
}

// ---------------------------------------------------------------------
// Fault injection: solver Unknowns, forced exhaustion, panics.
// ---------------------------------------------------------------------

#[test]
fn injected_solver_unknown_degrades_only_target() {
    let program = trio();
    let config = VerifierConfig {
        faults: FaultPlan::none().inject("b", FaultKind::SolverUnknownAfter(0)),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    assert!(
        matches!(
            verdicts["b"],
            Verdict::Unknown { .. } | Verdict::Failed { .. }
        ),
        "b should degrade, got {}",
        verdicts["b"]
    );
    assert!(verdicts["a"].is_verified());
    assert!(verdicts["c"].is_verified());
}

#[test]
fn injected_exhaustion_reports_the_requested_axis() {
    let program = trio();
    for axis in [
        BudgetAxis::Deadline,
        BudgetAxis::SolverFuel,
        BudgetAxis::States,
        BudgetAxis::Terms,
    ] {
        let config = VerifierConfig {
            faults: FaultPlan::none().inject("a", FaultKind::ExhaustBudget(axis)),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let verdicts = verdicts_with(&program, config);
        assert_eq!(
            exhausted_axis(&verdicts["a"]),
            Some(axis),
            "injected {} exhaustion not reported",
            axis
        );
        assert!(verdicts["b"].is_verified());
        assert!(verdicts["c"].is_verified());
    }
}

#[test]
fn injected_panic_is_contained_to_its_method() {
    quiet_injected_panics();
    let program = trio();
    let reference = normalized(&verdicts_with(&program, VerifierConfig::default()));
    for threads in [1, 2, 8] {
        let config = VerifierConfig {
            threads,
            faults: FaultPlan::none().inject("b", FaultKind::PanicAtState(1)),
            ..VerifierConfig::default()
        };
        let verdicts = normalized(&verdicts_with(&program, config));
        match &verdicts["b"] {
            Verdict::CrashedInternal { message } => {
                assert!(message.contains("injected fault"), "payload: {}", message);
            }
            other => panic!("b should crash, got {}", other),
        }
        assert_eq!(verdicts["a"], reference["a"]);
        assert_eq!(verdicts["c"], reference["c"]);
    }
}

#[test]
fn verify_all_reports_crash_as_error_not_panic() {
    quiet_injected_panics();
    let program = trio();
    let config = VerifierConfig {
        faults: FaultPlan::none().inject("a", FaultKind::PanicAtState(1)),
        ..VerifierConfig::default()
    };
    let mut v = Verifier::with_config(&program, Backend::Destabilized, config);
    let err = v.verify_all().expect_err("crash surfaces as VerifyError");
    let rendered = err.to_string();
    assert!(
        rendered.contains("internal error verifying a"),
        "rendered: {}",
        rendered
    );
}

#[test]
fn every_fault_plan_terminates_with_full_verdict_map() {
    quiet_injected_panics();
    let program = trio();
    let plans = [
        FaultPlan::none(),
        FaultPlan::none().inject("a", FaultKind::SolverUnknownAfter(2)),
        FaultPlan::none().inject("b", FaultKind::ExhaustBudget(BudgetAxis::SolverFuel)),
        FaultPlan::none().inject("c", FaultKind::PanicAtState(1)),
        FaultPlan::none()
            .inject("a", FaultKind::PanicAtState(1))
            .inject("b", FaultKind::ExhaustBudget(BudgetAxis::Terms))
            .inject("c", FaultKind::SolverUnknownAfter(0)),
    ];
    for plan in plans {
        for threads in [1, 2, 8] {
            let config = VerifierConfig {
                threads,
                faults: plan.clone(),
                retry_unknown: false,
                ..VerifierConfig::default()
            };
            let verdicts = verdicts_with(&program, config);
            assert_eq!(
                verdicts.len(),
                3,
                "verdict map incomplete under plan {:?} at {} threads",
                plan,
                threads
            );
        }
    }
}

// ---------------------------------------------------------------------
// Retry policy: a too-small budget that succeeds after escalation.
// ---------------------------------------------------------------------

#[test]
fn retry_with_escalated_budget_recovers_verified() {
    let program = diverging();
    // Measure what the diverging method actually needs.
    let need = {
        let mut v = Verifier::new(&program, Backend::Destabilized);
        match v.verify_method_verdict("diverge") {
            // Fuel units under the default CDCL core:
            // conflicts + propagated literals.
            Verdict::Verified(s) => (s.solver_conflicts + s.solver_propagations) as u64,
            other => panic!("unlimited run should verify, got {}", other),
        }
    };
    assert!(need > 1);
    // First attempt exhausts (fuel < need); the escalated retry
    // (doubled fuel) succeeds.
    let config = VerifierConfig {
        budget: Budget::unlimited().with_solver_fuel(need - 1),
        retry_unknown: true,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    match &verdicts["diverge"] {
        Verdict::Verified(s) => assert_eq!(
            s.budget_exhausted, 1,
            "the absorbed first attempt is recorded"
        ),
        other => panic!("retry should recover, got {}", other),
    }
}

#[test]
fn retry_disabled_keeps_the_unknown() {
    let program = diverging();
    let config = VerifierConfig {
        budget: Budget::unlimited().with_solver_fuel(1),
        retry_unknown: false,
        ..VerifierConfig::default()
    };
    let verdicts = verdicts_with(&program, config);
    assert!(verdicts["diverge"].is_budget_exhausted());
}

// ---------------------------------------------------------------------
// Degenerate inputs: bodyless methods and empty programs.
// ---------------------------------------------------------------------

#[test]
fn bodyless_method_is_skipped_by_verify_all_and_definite_alone() {
    let program = parse_program(
        "field val: Int
         method spec_only(c: Ref) requires acc(c.val) ensures acc(c.val)
         method real(c: Ref) requires acc(c.val) ensures acc(c.val)
         { c.val := c.val }",
    )
    .expect("parses");
    for budget in [
        Budget::UNLIMITED,
        Budget::unlimited().with_solver_fuel(1),
        Budget::unlimited().with_max_states(0),
    ] {
        let config = VerifierConfig {
            budget,
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        // `verify_all_verdicts` only schedules methods with bodies —
        // an abstract method is a spec, not a proof obligation.
        let verdicts = verdicts_with(&program, config);
        assert!(!verdicts.contains_key("spec_only"));
        assert!(verdicts.contains_key("real"));
    }
    // Asked about directly, an abstract method is a definite
    // structural failure (never Unknown, never a panic), whatever the
    // budget.
    let mut v = Verifier::with_config(
        &program,
        Backend::Destabilized,
        VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(1),
            retry_unknown: false,
            ..VerifierConfig::default()
        },
    );
    match v.verify_method_verdict("spec_only") {
        Verdict::Failed { failures, report } => {
            assert!(failures[0].description.contains("abstract"));
            assert!(!report.is_empty(), "even stateless failures get a report");
            assert!(report.first_failure.contains("abstract"));
        }
        other => panic!("abstract method should fail definitely, got {}", other),
    }
    // Same for a method that does not exist at all.
    assert!(matches!(
        v.verify_method_verdict("ghost"),
        Verdict::Failed { .. }
    ));
}

#[test]
fn empty_program_yields_empty_verdict_map() {
    let program = parse_program("field val: Int").expect("parses");
    let config = VerifierConfig {
        budget: Budget::unlimited().with_solver_fuel(1),
        faults: FaultPlan::none().inject("ghost", FaultKind::PanicAtState(0)),
        ..VerifierConfig::default()
    };
    assert!(verdicts_with(&program, config).is_empty());
}

// ---------------------------------------------------------------------
// Proof-failure diagnostics: no undiagnosed failure leaves the pipeline.
// ---------------------------------------------------------------------

/// Every `Failed` or `Unknown` verdict — across the negative corpus,
/// under exhausted budgets, and under injected faults — carries a
/// non-empty `FailureReport` naming the method and its first failure.
#[test]
fn failed_and_unknown_verdicts_always_carry_a_failure_report() {
    quiet_injected_panics();
    fn check(label: &str, verdicts: &BTreeMap<String, Verdict>) -> usize {
        let mut diagnosable = 0;
        for (name, verdict) in verdicts {
            if matches!(verdict, Verdict::Failed { .. } | Verdict::Unknown { .. }) {
                diagnosable += 1;
                let report = verdict.report().expect("Failed/Unknown carry a report");
                assert!(!report.is_empty(), "{}: empty report for {}", label, name);
                assert_eq!(&report.method, name, "{}: report names wrong method", label);
                assert!(
                    !report.first_failure.is_empty(),
                    "{}: blank first failure for {}",
                    label,
                    name
                );
            }
        }
        diagnosable
    }

    // The negative corpus: every case fails at least one method, and
    // every failure is diagnosed.
    for case in daenerys::idf::negative_cases() {
        let program = parse_program(case.source).expect("negative case parses");
        let verdicts = verdicts_with(&program, VerifierConfig::default());
        assert!(
            check(case.name, &verdicts) > 0,
            "{}: negative case produced no diagnosable verdict",
            case.name
        );
    }

    // Budget exhaustion: the diverging method degrades to `Unknown`
    // and its report names the exhausted budget.
    let verdicts = verdicts_with(
        &diverging(),
        VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        },
    );
    assert!(check("fuel budget", &verdicts) > 0);
    let report = verdicts["diverge"]
        .report()
        .expect("exhausted method reports");
    assert!(
        report.first_failure.contains("budget exhausted"),
        "budget report should name the exhaustion, got: {}",
        report.first_failure
    );

    // Injected faults: solver degradation and forced exhaustion on one
    // method are both diagnosed (a contained panic is `CrashedInternal`
    // and intentionally carries no report — the buffer died with it).
    for kind in [
        FaultKind::SolverUnknownAfter(0),
        FaultKind::ExhaustBudget(BudgetAxis::States),
        FaultKind::ExhaustBudget(BudgetAxis::SolverFuel),
    ] {
        let config = VerifierConfig {
            faults: FaultPlan::none().inject("diverge", kind),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let verdicts = verdicts_with(&diverging(), config);
        assert!(
            check("injected fault", &verdicts) > 0,
            "{:?}: fault produced no diagnosable verdict",
            kind
        );
    }
}

// ---------------------------------------------------------------------
// Daemon sessions: the sibling-invariance contract survives the wire.
// A method-level fault injected inside the daemon, plus wire chaos on
// *other* concurrent sessions, never changes a sibling method's
// verdict — the clean session's response is bit-identical to a
// fault-free daemon run.
// ---------------------------------------------------------------------

#[test]
fn daemon_sessions_preserve_sibling_invariance() {
    use daenerysd::chaos::WireFaultPlan;
    use daenerysd::client::{Client, RetryPolicy};
    use daenerysd::protocol::{Request, Response};
    use daenerysd::server::{MetricsSnapshot, Server, ServerConfig};
    use std::sync::atomic::Ordering;

    quiet_injected_panics();

    const TRIO: &str = "field val: Int
         method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
         { c.val := 1 }
         method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
         { c.val := 1; c.val := c.val + 1 }
         method c(c: Ref) requires acc(c.val) ensures acc(c.val)
         { c.val := c.val + 0 }";
    const NOISE: &str = "field val: Int
method noisy(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 9 { c.val := 9 }";

    fn serve(
        faults: FaultPlan,
    ) -> (
        std::net::SocketAddr,
        std::sync::Arc<std::sync::atomic::AtomicBool>,
        std::thread::JoinHandle<MetricsSnapshot>,
    ) {
        let defaults = ServerConfig::default();
        let config = ServerConfig {
            read_poll_ms: 5,
            frame_deadline_ms: 250,
            base: daenerys::idf::exec::VerifierConfig {
                faults,
                retry_unknown: false,
                ..defaults.base
            },
            ..defaults
        };
        let server = Server::bind(config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let flag = server.shutdown_flag();
        (addr, flag, std::thread::spawn(move || server.run()))
    }

    fn wire_verdicts(resp: &Response) -> BTreeMap<String, (String, String)> {
        match resp {
            Response::Ok { verdicts, .. } => verdicts
                .iter()
                .map(|(name, v)| (name.clone(), (v.kind.clone(), v.detail.clone())))
                .collect(),
            other => panic!("expected an ok response, got id {}", other.id()),
        }
    }

    let quick_retry = RetryPolicy {
        max_attempts: 6,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        seed: 4,
    };

    // Fault-free reference run over the wire.
    let (addr, flag, handle) = serve(FaultPlan::none());
    let clean = Client::new(addr).with_retry(quick_retry);
    let (resp, _) = clean
        .request_with_retry(&Request::new(1, "clean", TRIO))
        .expect("reference request");
    let reference = wire_verdicts(&resp);
    flag.store(true, Ordering::SeqCst);
    assert_eq!(handle.join().expect("server").leaked_sessions, 0);
    assert_eq!(reference["a"].0, "verified");
    assert_eq!(reference["c"].0, "verified");

    // Chaos run: method `b` panics inside the daemon, while a sibling
    // tenant hammers the same daemon through the full wire-fault
    // matrix.
    let (addr, flag, handle) = serve(FaultPlan::none().inject("b", FaultKind::PanicAtState(1)));
    let noisy = Client::new(addr)
        .with_faults(WireFaultPlan::full(5))
        .with_retry(quick_retry);
    let noise_thread = std::thread::spawn(move || {
        for id in 10..18u64 {
            // Outcome irrelevant: this lane exists to stress the
            // daemon's framing and admission while the clean session
            // runs.
            let _ = noisy.request_with_retry(&Request::new(id, "noisy", NOISE));
        }
    });
    let clean = Client::new(addr).with_retry(quick_retry);
    let (resp, _) = clean
        .request_with_retry(&Request::new(2, "clean", TRIO))
        .expect("chaos-run request");
    let under_chaos = wire_verdicts(&resp);
    noise_thread.join().expect("noise lane");
    flag.store(true, Ordering::SeqCst);
    let snap = handle.join().expect("server");
    assert_eq!(
        snap.leaked_sessions, 0,
        "daemon leaked sessions: {:?}",
        snap
    );

    assert_eq!(
        under_chaos["b"].0, "crashed",
        "the injected panic should degrade b: {:?}",
        under_chaos
    );
    for sibling in ["a", "c"] {
        assert_eq!(
            under_chaos[sibling], reference[sibling],
            "sibling {} changed across the wire under chaos",
            sibling
        );
    }
}
