//! Integration: the base logic across crates — algebra resources inside
//! logic worlds, kernel derivations checked against the semantic model.

use daenerys::logic::proof::{self, destab, heap, modal, update};
use daenerys::logic::{
    check_stable, entails, equivalent, stabilize_fast, Assert, CameraKind, GhostName, GhostVal,
    Term, UniverseSpec,
};
use daenerys_algebra::{DFrac, Excl, Q};
use daenerys_heaplang::{Loc, Val};

#[test]
fn end_to_end_destabilized_reasoning() {
    // The full story on one location: own half, read the value as a
    // heap-dependent fact, stabilize it, give the permission away, and
    // observe the stabilized fact survives while the naked one dies.
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));
    let half = Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1));
    let read = Assert::read_eq(l.clone(), Term::int(1));

    // 1. Derive the read from the permission (kernel) and double-check
    //    semantically.
    let d = heap::points_to_read(l.clone(), DFrac::own(Q::HALF), Term::int(1)).unwrap();
    assert!(entails(d.lhs(), d.rhs(), &uni, 2).is_ok());

    // 2. The naked read is unstable; the permission-conjoined read is
    //    stable; the stabilized read is stable by construction.
    assert!(check_stable(&read, &uni, 2).is_err());
    assert!(check_stable(&Assert::sep(half.clone(), read.clone()), &uni, 2).is_ok());
    assert!(check_stable(&Assert::stabilize(read.clone()), &uni, 2).is_ok());

    // 3. The kernel's stable-read rule gives both the fact and the
    //    permission — as a ∧, never a ∗ (see the kernel's docs).
    let d2 = destab::points_to_stable_read(l.clone(), DFrac::own(Q::HALF), Term::int(1)).unwrap();
    assert!(entails(d2.lhs(), d2.rhs(), &uni, 2).is_ok());

    // 4. The fast stabilizer agrees with the semantic modality under
    //    the permission.
    let fast = stabilize_fast(&read);
    assert!(entails(&fast, &Assert::stabilize(read.clone()), &uni, 2).is_ok());
    let with_perm_fast = Assert::sep(half.clone(), fast);
    let with_perm_sem = Assert::sep(half, Assert::stabilize(read));
    assert!(equivalent(&with_perm_fast, &with_perm_sem, &uni, 2));
}

#[test]
fn kernel_composition_chains() {
    // A ten-step derivation whose end-to-end statement is then verified
    // semantically in one shot.
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));
    let full = Assert::points_to(l.clone(), Term::int(1));
    let half = Assert::points_to_frac(l.clone(), Q::HALF, Term::int(1));

    // full ⊢ half ∗ half  (split)
    let split = heap::points_to_split(l.clone(), Q::HALF, Q::HALF, Term::int(1)).unwrap();
    // half ∗ half ⊢ half ∗ (half ∗ ⊤)   (frame the sep_true_intro)
    let widen = proof::sep_mono(
        &proof::refl(half.clone()),
        &proof::sep_true_intro(half.clone()),
    );
    let chain = proof::trans(&split, &widen).unwrap();
    assert!(entails(chain.lhs(), chain.rhs(), &uni, 1).is_ok());
    assert!(chain.steps() >= 4);

    // Later and persistence compose.
    let lat = modal::later_mono(&proof::true_intro(full.clone()));
    assert!(entails(lat.lhs(), lat.rhs(), &uni, 3).is_ok());

    // Löb induction through the kernel: (⊤ ∧ ▷⊤) ⊢ ⊤ gives ⊤ ⊢ ⊤.
    let prem = proof::true_intro(Assert::and(Assert::truth(), Assert::later(Assert::truth())));
    let loeb = modal::loeb(&prem).unwrap();
    assert!(entails(loeb.lhs(), loeb.rhs(), &uni, 3).is_ok());
}

#[test]
fn ghost_state_updates_across_crates() {
    let uni = UniverseSpec::with_ghost(CameraKind::ExclVal).build();
    let g = GhostName(0);
    let a = GhostVal::ExclVal(Excl::new(Val::int(0)));
    let b = GhostVal::ExclVal(Excl::new(Val::int(1)));

    // Kernel rule and semantic check agree on exclusive updates.
    let d = update::ghost_update(g, a.clone(), b.clone()).unwrap();
    assert!(entails(d.lhs(), d.rhs(), &uni, 1).is_ok());

    // Updating and framing: requires the frame stable — a points-to is.
    let frame = Assert::points_to(Term::loc(Loc(0)), Term::int(1));
    let framed = update::bupd_frame(frame, Assert::Own(g, b)).unwrap();
    assert!(entails(framed.lhs(), framed.rhs(), &uni, 1).is_ok());
}

#[test]
fn deviations_from_stable_iris_hold_semantically() {
    // The destabilized logic *rejects* several classical principles;
    // pin them down semantically so regressions are caught.
    let uni = UniverseSpec::tiny().build();
    let l = Term::loc(Loc(0));

    // 1. Affinity fails: P ∗ ⊤ ⊬ P for introspective P.
    let perm = Assert::PermEq(l.clone(), Q::HALF);
    assert!(entails(&Assert::sep(perm.clone(), Assert::truth()), &perm, &uni, 1).is_err());

    // 2. □-elimination fails in general (□emp ⊬ emp).
    assert!(entails(&Assert::persistently(Assert::Emp), &Assert::Emp, &uni, 1).is_err());

    // 3. Monotonicity fails: the full chunk does not entail the exact
    //    half-introspection.
    let full = Assert::points_to(l.clone(), Term::int(1));
    assert!(entails(&full, &perm, &uni, 1).is_err());

    // 4. But all three are restored on their syntactic fragments (the
    //    kernel's side conditions): e.g. □ of a discarded chunk
    //    eliminates fine.
    let disc = Assert::PointsTo(l, DFrac::discarded(), Term::int(1));
    let d = modal::persistently_elim_persistent(disc).unwrap();
    assert!(entails(d.lhs(), d.rhs(), &uni, 1).is_ok());
}
