#!/usr/bin/env bash
# CLI smoke: drive every `daenerys` subcommand over the F1 corpus as
# files, then stage the watch-mode incremental gate — cold-verify a
# generated 1k-method corpus into a fresh store, apply a leaf-body
# edit, and require `daenerys watch --once` to re-verify EXACTLY the
# generator's ground-truth cone (1 method) through the warm store,
# under the wall-clock ceiling. Also pins the exit-code contract:
# positive cases exit 0, negative cases exit 1 with a rendered
# failure report, usage errors exit 2.
#
# Artifacts: the per-method static cost report (text + JSON) over the
# diverging workload, under $OUT_DIR.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=${1:-target/cli-smoke}
F1_DIR="$OUT_DIR/f1"
STORE_DIR="$OUT_DIR/store"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

cargo build --release -p daenerys-cli -p daenerys-bench
DAENERYS=./target/release/daenerys
CORPUS_GEN=./target/release/corpus_gen

# --- F1 corpus as files -------------------------------------------------
"$CORPUS_GEN" --f1-dir "$F1_DIR"

# check + explain + cost must succeed over every file, positive and
# negative alike (lints and cost are static; neither runs the solver).
"$DAENERYS" check "$F1_DIR"/pos/*.idf "$F1_DIR"/neg/*.idf --no-color > "$OUT_DIR/check.txt"
"$DAENERYS" explain "$F1_DIR"/pos/*.idf --no-color > "$OUT_DIR/explain.txt"
"$DAENERYS" cost "$F1_DIR"/pos/*.idf "$F1_DIR"/neg/*.idf --no-color > "$OUT_DIR/cost.txt"

# verify: every positive case passes (exit 0)...
"$DAENERYS" verify "$F1_DIR"/pos/*.idf --no-color > "$OUT_DIR/verify_pos.txt"
# ...and every negative case is rejected with a rendered report.
for f in "$F1_DIR"/neg/*.idf; do
    STATUS=0
    "$DAENERYS" verify "$f" --no-color > "$OUT_DIR/verify_neg.txt" || STATUS=$?
    [ "$STATUS" -eq 1 ] || {
        echo "negative case $f exited $STATUS, want 1"
        cat "$OUT_DIR/verify_neg.txt"; exit 1;
    }
    grep -q 'first failure:' "$OUT_DIR/verify_neg.txt" || {
        echo "negative case $f rendered no failure report"
        cat "$OUT_DIR/verify_neg.txt"; exit 1;
    }
done

# Usage errors exit 2, not 1.
STATUS=0
"$DAENERYS" frobnicate 2>/dev/null || STATUS=$?
[ "$STATUS" -eq 2 ] || { echo "usage error exited $STATUS, want 2"; exit 1; }

# --- cost report artifact ----------------------------------------------
# The diverging workload is where the static model earns its keep:
# predicted fuel must blow up with k.
"$DAENERYS" cost "$F1_DIR/pos/diverging_6.idf" --no-color > "$OUT_DIR/COST_diverging.txt"
"$DAENERYS" cost "$F1_DIR/pos/diverging_6.idf" --json > "$OUT_DIR/COST_diverging.json"
grep -q '"summary"' "$OUT_DIR/COST_diverging.json"
grep -q 'predicted static cost' "$OUT_DIR/COST_diverging.txt"

# --- watch-mode incremental gate ---------------------------------------
# Cold-verify the generated 1k-method corpus, then apply the scripted
# leaf-body edit and require the warm watch pass to re-verify exactly
# the generator's ground-truth cone under the wall-clock ceiling. The
# ceiling only binds on the release binary built above.
CORPUS="$OUT_DIR/corpus.idf"
"$CORPUS_GEN" --out "$CORPUS" --methods 1000 --depth 10 --seed 7
"$DAENERYS" verify "$CORPUS" --cache-dir "$STORE_DIR" --no-color \
    > "$OUT_DIR/watch_cold.txt"
EXPECT=$("$CORPUS_GEN" --out "$CORPUS" --methods 1000 --depth 10 --seed 7 \
    --edit leaf-body --print-expected 2>/dev/null)
"$DAENERYS" watch "$CORPUS" --once --cache-dir "$STORE_DIR" --no-color \
    --expect-reverified "$EXPECT" --max-wall-ms 100 \
    > "$OUT_DIR/watch_warm.txt"
grep -q "re-verified $EXPECT," "$OUT_DIR/watch_warm.txt"
grep -q 'dirty cone:' "$OUT_DIR/watch_warm.txt"

# A byte-identical rewrite must not fire anything: the warm pass over
# the unchanged corpus re-verifies 0.
"$DAENERYS" watch "$CORPUS" --once --cache-dir "$STORE_DIR" --no-color \
    --expect-reverified 0 --max-wall-ms 100 > "$OUT_DIR/watch_noop.txt"

echo "cli smoke PASSED (leaf-body cone = $EXPECT method)"
