#!/usr/bin/env bash
# Regenerates BENCH_verifier.json: release-build the workspace, run the
# F1 verifier benchmark, and leave the JSON at the repo root — plus a
# phase-attribution profile (PROFILE_verifier.txt) next to it.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p daenerys-bench
cargo run --release -q -p daenerys-bench --bin tables -- --f1 --json "$@"
cargo run --release -q -p daenerys-bench --bin tables -- --profile > /dev/null

echo "baseline written to $(pwd)/BENCH_verifier.json"
echo "profile  written to $(pwd)/PROFILE_verifier.txt"
