#!/usr/bin/env bash
# Regenerates the F1 verifier baseline: release-build the workspace,
# run the benchmark, and leave BENCH_verifier.json plus a
# phase-attribution profile (PROFILE_verifier.txt) under target/bench/.
# To refresh the committed baseline, copy target/bench/BENCH_verifier.json
# over the repo-root copy and commit it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=target/bench
mkdir -p "$OUT_DIR"

cargo build --release -p daenerys-bench
cargo run --release -q -p daenerys-bench --bin tables -- \
    --f1 --json --out-dir "$OUT_DIR" "$@"
cargo run --release -q -p daenerys-bench --bin tables -- \
    --profile --out-dir "$OUT_DIR" > /dev/null

echo "baseline written to $(pwd)/$OUT_DIR/BENCH_verifier.json"
echo "profile  written to $(pwd)/$OUT_DIR/PROFILE_verifier.txt"
