#!/usr/bin/env bash
# Regenerates BENCH_verifier.json: release-build the workspace, run the
# F1 verifier benchmark, and leave the JSON at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p daenerys-bench
cargo run --release -q -p daenerys-bench --bin tables -- --f1 --json "$@"

echo "baseline written to $(pwd)/BENCH_verifier.json"
