#!/usr/bin/env bash
# Regenerates the F1 verifier baseline: release-build the workspace,
# run the benchmark, and leave BENCH_verifier.json plus a
# phase-attribution profile (PROFILE_verifier.txt) under target/bench/.
# To refresh the committed baseline, copy target/bench/BENCH_verifier.json
# over the repo-root copy and commit it.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=target/bench
IVC_DIR=$OUT_DIR/ivc
mkdir -p "$OUT_DIR"
rm -rf "$IVC_DIR"

cargo build --release -p daenerys-bench
# Incremental warm-rerun sweep: a cold pass populates the per-case
# verdict stores, then the measured pass restores from them, so the
# baseline's "incremental" section and per-case methods_reverified
# report the warm restore path instead of null.
cargo run --release -q -p daenerys-bench --bin tables -- \
    --f1 --cache-dir "$IVC_DIR" --repeat 1 --out-dir "$OUT_DIR" > /dev/null
cargo run --release -q -p daenerys-bench --bin tables -- \
    --f1 --json --cache-dir "$IVC_DIR" --out-dir "$OUT_DIR" "$@"
cargo run --release -q -p daenerys-bench --bin tables -- \
    --profile --out-dir "$OUT_DIR" > /dev/null

# Monorepo-scale edit-replay sweep (DESIGN.md §15): generated 10k-method
# DAG, cold → warm → scripted edits, every phase gated against the
# generator's ground truth, warm store load gated at 50 ms.
cargo run --release -q -p daenerys-bench --bin store_replay -- \
    --methods 10000 --depth 20 --max-load-ms 50 \
    --out "$OUT_DIR/BENCH_incremental.json"

echo "baseline written to $(pwd)/$OUT_DIR/BENCH_verifier.json"
echo "profile  written to $(pwd)/$OUT_DIR/PROFILE_verifier.txt"
echo "replay   written to $(pwd)/$OUT_DIR/BENCH_incremental.json"
