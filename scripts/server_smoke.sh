#!/usr/bin/env bash
# Server smoke: start the daemon, chaos-replay the F1 corpus over it
# (full wire-fault matrix + a fault-free reference pass), SIGTERM, and
# assert a graceful drain — the daemon exits 0 on its own, reports
# zero leaked sessions, and leaves a flushed, uncorrupted verdict
# store. The replay driver enforces the bit-identical chaos gate AND
# the admission conservation invariant (its mid-run health scrapes)
# via its own exit code.
#
# The admin plane is smoked alongside: daenerys-top scrapes live
# metrics/health while the chaos replay hammers the daemon, the trace
# tail must revalidate through trace_validate, SIGUSR1 must produce a
# live snapshot line without stopping the daemon, and the final health
# scrape must conserve. Artifacts: BENCH_server.json, the daemon's
# final metrics snapshot, the mid-run daenerys-top frames, the health
# body, and the streamed trace tail.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=${1:-target/server-smoke}
STORE_DIR="$OUT_DIR/store"
mkdir -p "$OUT_DIR"
rm -rf "$STORE_DIR"

cargo build --release -p daenerysd -p daenerys-bench

LOG="$OUT_DIR/daenerysd.log"
./target/release/daenerysd \
    --cache-dir "$STORE_DIR" \
    --metrics-out "$OUT_DIR/metrics.json" > "$LOG" 2>&1 &
DAEMON_PID=$!

# Scrape the ephemeral port from the startup line.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^daenerysd listening on //p' "$LOG" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "daemon died during startup"; cat "$LOG"; exit 1;
    }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never reported an address"; cat "$LOG"; exit 1; }

# Chaos replay against the live daemon; non-zero exit = gate failure
# (a lost request, a verdict that diverged under chaos, a mid-run
# health scrape that violated the conservation ledger, ...). The admin
# plane is scraped concurrently: daenerys-top renders live frames off
# the same listener while the replay saturates it.
./target/release/daenerys-top --addr "$ADDR" --interval-ms 500 \
    --frames 8 --no-clear > "$OUT_DIR/daenerys-top.txt" 2>&1 &
TOP_PID=$!
./target/release/server_replay --addr "$ADDR" --requests 96 \
    --out "$OUT_DIR/BENCH_server.json"
TOP_STATUS=0
wait "$TOP_PID" || TOP_STATUS=$?
[ "$TOP_STATUS" -eq 0 ] || {
    echo "daenerys-top exited $TOP_STATUS under load"
    cat "$OUT_DIR/daenerys-top.txt"; exit 1;
}
grep -q 'conserved yes' "$OUT_DIR/daenerys-top.txt"
grep -q '^tenant-' "$OUT_DIR/daenerys-top.txt"

# The replay's own conservation gate ran mid-chaos; the final ledger
# must conserve too (daenerys-top --health exits non-zero otherwise).
./target/release/daenerys-top --addr "$ADDR" --health \
    > "$OUT_DIR/health.json"

# The trace tail is a stream: every tailed event must revalidate as
# JSONL through the same validator the bench traces use.
./target/release/daenerys-top --addr "$ADDR" --tail \
    > "$OUT_DIR/trace_tail.jsonl" 2> "$OUT_DIR/trace_tail.summary"
test -s "$OUT_DIR/trace_tail.jsonl"
./target/release/trace_validate "$OUT_DIR/trace_tail.jsonl"

# SIGUSR1: a live snapshot line on stdout, daemon keeps serving.
kill -USR1 "$DAEMON_PID"
SNAPSHOT_SEEN=""
for _ in $(seq 1 100); do
    if grep -q '^daenerysd snapshot {' "$LOG"; then SNAPSHOT_SEEN=1; break; fi
    sleep 0.1
done
[ -n "$SNAPSHOT_SEEN" ] || { echo "no snapshot after SIGUSR1"; cat "$LOG"; exit 1; }
./target/release/daenerys-top --addr "$ADDR" --health > /dev/null \
    || { echo "daemon stopped answering after SIGUSR1"; exit 1; }

# The BENCH server block carries the phase attribution the scrapes saw.
grep -q '"server":{' "$OUT_DIR/BENCH_server.json"
grep -q '"phases":{' "$OUT_DIR/BENCH_server.json"
grep -q '"conserved_failures":0' "$OUT_DIR/BENCH_server.json"

# Graceful drain: on SIGTERM the daemon must finish in-flight work,
# flush the store, write its snapshot, and exit 0 by itself.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
[ "$DAEMON_STATUS" -eq 0 ] || {
    echo "daemon exited $DAEMON_STATUS after SIGTERM"; cat "$LOG"; exit 1;
}

# Zero leaked sessions, store flushed and clean. Fresh stores write
# the sharded DAES1 format; accept a legacy JSONL store too so the
# smoke keeps passing against older on-disk state.
grep -q '"leaked_sessions":0' "$OUT_DIR/metrics.json"
grep -q '"store_corrupt_lines":0' "$OUT_DIR/metrics.json"
ls "$STORE_DIR"/verdicts-*.daes > /dev/null 2>&1 || test -s "$STORE_DIR/verdicts.jsonl"

echo "server smoke PASSED ($ADDR)"
cat "$OUT_DIR/metrics.json"
