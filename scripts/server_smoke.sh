#!/usr/bin/env bash
# Server smoke: start the daemon, chaos-replay the F1 corpus over it
# (full wire-fault matrix + a fault-free reference pass), SIGTERM, and
# assert a graceful drain — the daemon exits 0 on its own, reports
# zero leaked sessions, and leaves a flushed, uncorrupted verdict
# store. The replay driver enforces the bit-identical chaos gate via
# its own exit code. Artifacts: BENCH_server.json and the daemon's
# final metrics snapshot under the output directory.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=${1:-target/server-smoke}
STORE_DIR="$OUT_DIR/store"
mkdir -p "$OUT_DIR"
rm -rf "$STORE_DIR"

cargo build --release -p daenerysd -p daenerys-bench

LOG="$OUT_DIR/daenerysd.log"
./target/release/daenerysd \
    --cache-dir "$STORE_DIR" \
    --metrics-out "$OUT_DIR/metrics.json" > "$LOG" 2>&1 &
DAEMON_PID=$!

# Scrape the ephemeral port from the startup line.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^daenerysd listening on //p' "$LOG" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "daemon died during startup"; cat "$LOG"; exit 1;
    }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "daemon never reported an address"; cat "$LOG"; exit 1; }

# Chaos replay against the live daemon; non-zero exit = gate failure
# (a lost request, a verdict that diverged under chaos, ...).
./target/release/server_replay --addr "$ADDR" --requests 96 \
    --out "$OUT_DIR/BENCH_server.json"

# Graceful drain: on SIGTERM the daemon must finish in-flight work,
# flush the store, write its snapshot, and exit 0 by itself.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
[ "$DAEMON_STATUS" -eq 0 ] || {
    echo "daemon exited $DAEMON_STATUS after SIGTERM"; cat "$LOG"; exit 1;
}

# Zero leaked sessions, store flushed and clean.
grep -q '"leaked_sessions":0' "$OUT_DIR/metrics.json"
grep -q '"store_corrupt_lines":0' "$OUT_DIR/metrics.json"
test -s "$STORE_DIR/verdicts.jsonl"

echo "server smoke PASSED ($ADDR)"
cat "$OUT_DIR/metrics.json"
